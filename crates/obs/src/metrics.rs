//! Lock-free metrics: counters, gauges, and fixed-bucket histograms.
//!
//! All metric handles are `Arc`-shared wrappers over atomics: cloning a
//! handle is cheap, recording an event is one or two relaxed atomic
//! operations and never allocates. The [`Registry`] maps catalogue
//! names to handles so exporters ([`crate::prometheus_text`]) can walk
//! every metric without knowing the typed [`Metrics`] struct.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (epoch, cache length).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` counts values whose bit
/// length is `i` (power-of-two bucketing): bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds `2^(i-1) ..= 2^i - 1`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket histogram with power-of-two buckets.
///
/// Recording is one relaxed `fetch_add` on the bucket plus two on the
/// count/sum totals — no locks, no allocation. Quantile readouts
/// return the inclusive upper bound of the bucket containing the
/// requested rank, so they are deterministic and conservative (never
/// below the true quantile by more than the bucket width).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length, clamped to the last bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Point-in-time snapshot with quantile readouts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let sum = self.0.sum.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-th observation (1-based, rounded up).
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i);
                }
            }
            bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            buckets: counts,
        }
    }
}

/// Snapshot of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Per-bucket counts (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    /// An empty snapshot, shaped like a live one (all-zero buckets), so
    /// `snapshot == Default::default()` tests "never recorded".
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            p50: 0,
            p95: 0,
            p99: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

/// A registered metric of any kind.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

/// Name-keyed metric registry. Registration takes a write lock; the
/// returned handles are used directly afterwards, so the hot path
/// never touches the registry again.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    ///
    /// # Panics
    /// If `name` is registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.inner.write().expect("metrics registry");
        match map.entry(name).or_insert_with(|| Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge registered under `name`, creating it if new.
    ///
    /// # Panics
    /// If `name` is registered as a different metric kind.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut map = self.inner.write().expect("metrics registry");
        match map.entry(name).or_insert_with(|| Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram registered under `name`, creating it if new.
    ///
    /// # Panics
    /// If `name` is registered as a different metric kind.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut map = self.inner.write().expect("metrics registry");
        match map.entry(name).or_insert_with(|| Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.inner.read().expect("metrics registry").get(name).cloned()
    }

    /// All registered metrics, sorted by name.
    pub fn collect(&self) -> Vec<(&'static str, Metric)> {
        self.inner
            .read()
            .expect("metrics registry")
            .iter()
            .map(|(name, metric)| (*name, metric.clone()))
            .collect()
    }
}

/// Hit/miss/evict/carry counters plus a length gauge for an epoch-keyed
/// cache (the plan cache and the browse answer cache share this shape).
#[derive(Clone, Debug)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Entries evicted by the LRU capacity policy.
    pub evictions: Counter,
    /// Entries carried across a generation roll.
    pub carried: Counter,
    /// Current entry count.
    pub len: Gauge,
}

impl CacheCounters {
    /// Registers the five cache metrics under `<prefix>.{hits,…}`.
    fn register(
        registry: &Registry,
        hits: &'static str,
        misses: &'static str,
        evictions: &'static str,
        carried: &'static str,
        len: &'static str,
    ) -> Self {
        CacheCounters {
            hits: registry.counter(hits),
            misses: registry.counter(misses),
            evictions: registry.counter(evictions),
            carried: registry.counter(carried),
            len: registry.gauge(len),
        }
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            carried: self.carried.get(),
            len: self.len.get(),
        }
    }
}

/// Snapshot of one cache's counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU capacity policy.
    pub evictions: u64,
    /// Entries carried across a generation roll.
    pub carried: u64,
    /// Entry count at snapshot time.
    pub len: u64,
}

/// The well-known loosedb metrics, registered once per [`Metrics::new`]
/// under the catalogue names documented in DESIGN.md §11.
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,

    // -- store / durability --
    /// WAL frames appended (`store.wal.appends`).
    pub wal_appends: Counter,
    /// WAL bytes appended (`store.wal.append_bytes`).
    pub wal_append_bytes: Counter,
    /// WAL fsyncs issued (`store.wal.fsyncs`).
    pub wal_fsyncs: Counter,
    /// WAL fsync latency in nanoseconds (`store.wal.fsync_nanos`).
    pub wal_fsync_ns: Histogram,
    /// Checkpoints taken (`store.wal.checkpoints`).
    pub checkpoints: Counter,
    /// Checkpoint latency in nanoseconds (`store.wal.checkpoint_nanos`).
    pub checkpoint_ns: Histogram,
    /// WAL operations replayed at recovery (`store.wal.recovered_ops`).
    pub wal_recovered_ops: Counter,

    // -- engine / closure --
    /// Full closure computations (`engine.closure.computes`).
    pub closure_computes: Counter,
    /// Full-compute latency in nanoseconds (`engine.closure.compute_nanos`).
    pub closure_compute_ns: Histogram,
    /// Incremental closure extensions (`engine.closure.extends`).
    pub closure_extends: Counter,
    /// Extend latency in nanoseconds (`engine.closure.extend_nanos`).
    pub closure_extend_ns: Histogram,
    /// Incremental closure retractions (`engine.closure.retracts`).
    pub closure_retracts: Counter,
    /// Retraction latency in nanoseconds (`engine.closure.retract_nanos`).
    pub closure_retract_ns: Histogram,
    /// Support decrements applied by delete waves
    /// (`engine.closure.retract.support_decrements`).
    pub closure_retract_decrements: Counter,
    /// Facts over-deleted by delete waves
    /// (`engine.closure.retract.over_deleted`).
    pub closure_retract_deleted: Counter,
    /// Over-deleted facts rederived from the stable set
    /// (`engine.closure.retract.rederived`).
    pub closure_retract_rederived: Counter,
    /// Rederivation waves run (`engine.closure.retract.waves`).
    pub closure_retract_waves: Counter,
    /// Facts in the latest closure (`engine.closure.facts`).
    pub closure_facts: Gauge,

    // -- engine / generations --
    /// Generations published (`engine.publish.count`).
    pub publishes: Counter,
    /// Publish latency in nanoseconds (`engine.publish.nanos`).
    pub publish_ns: Histogram,
    /// Relationships touched per publish delta (`engine.publish.delta_rels`).
    pub publish_delta_rels: Histogram,
    /// Current epoch (`engine.epoch`).
    pub epoch: Gauge,

    // -- query --
    /// Queries evaluated (`query.evals`).
    pub query_evals: Counter,
    /// Evaluation latency in nanoseconds (`query.eval_nanos`).
    pub query_eval_ns: Histogram,
    /// Rows per answer (`query.rows`).
    pub query_rows: Histogram,
    /// Index probes issued by views (`query.count_probes`; absorbs
    /// `FactView::count_probes`).
    pub count_probes: Counter,
    /// Conjunction groups executed set-at-a-time
    /// (`query.plan.strategy_hash`).
    pub strategy_hash: Counter,
    /// Conjunction groups executed binding-at-a-time
    /// (`query.plan.strategy_nested`).
    pub strategy_nested: Counter,
    /// Parallel partitions fanned out by hash-join steps
    /// (`query.join.partitions`).
    pub join_partitions: Counter,
    /// Plan-cache counters (`query.plan_cache.*`; absorbs `PlanCacheStats`).
    pub plan_cache: CacheCounters,

    // -- replication --
    /// Shipped frames applied by a replica (`repl.frames_applied`).
    pub repl_frames_applied: Counter,
    /// Frames rejected at the checksum (`repl.frames_rejected`).
    pub repl_frames_rejected: Counter,
    /// Corrupt-frame re-fetch attempts (`repl.retries`).
    pub repl_retries: Counter,
    /// Bootstraps from a leader snapshot, initial or after falling
    /// behind segment retirement (`repl.bootstraps`).
    pub repl_bootstraps: Counter,
    /// Poll rounds executed by a replica (`repl.polls`).
    pub repl_polls: Counter,
    /// Bytes of leader WAL not yet applied, current segment
    /// (`repl.lag_bytes`).
    pub repl_lag_bytes: Gauge,
    /// Latency of one replica apply+publish batch in nanoseconds
    /// (`repl.apply_nanos`).
    pub repl_apply_ns: Histogram,

    // -- sharding --
    /// Shards behind a sharded router (`shard.count`; 0 = unsharded).
    pub shard_count: Gauge,
    /// Writes routed to a single owner shard (`shard.route.owner`).
    pub shard_route_owner: Counter,
    /// Writes broadcast to every shard — structural facts, class-like
    /// sources, broadcast-active relationships (`shard.route.broadcast`).
    pub shard_route_broadcast: Counter,
    /// Base facts re-broadcast when an entity or relationship was
    /// promoted into the broadcast set (`shard.route.rebroadcast_facts`).
    pub shard_route_rebroadcast: Counter,
    /// Removals fanned out to every shard (`shard.route.remove_fanout`).
    pub shard_route_removals: Counter,
    /// Scatter-gather query evaluations (`shard.scatter.queries`).
    pub shard_scatter_queries: Counter,
    /// Queries served by the collocated per-shard fast path
    /// (`shard.scatter.collocated`).
    pub shard_scatter_collocated: Counter,
    /// Per-shard scan/eval tasks fanned out (`shard.scatter.tasks`).
    pub shard_scatter_tasks: Counter,
    /// Rows gathered per scatter union (`shard.scatter.gather_rows`).
    pub shard_gather_rows: Histogram,
    /// Router-observed write latency across all touched shards,
    /// nanoseconds (`shard.publish.nanos`).
    pub shard_publish_ns: Histogram,

    // -- serving --
    /// Connections currently admitted (`serve.connections`).
    pub serve_connections: Gauge,
    /// Connections accepted since start (`serve.accepted`).
    pub serve_accepted: Counter,
    /// Live sessions in the registry (`serve.sessions`).
    pub serve_sessions: Gauge,
    /// Requests handled across all transports (`serve.requests`).
    pub serve_requests: Counter,
    /// End-to-end request handling latency in nanoseconds
    /// (`serve.request_nanos`).
    pub serve_request_ns: Histogram,
    /// Payload bytes received (`serve.bytes_in`).
    pub serve_bytes_in: Counter,
    /// Payload bytes sent (`serve.bytes_out`).
    pub serve_bytes_out: Counter,
    /// Malformed frames / transport violations observed
    /// (`serve.protocol_errors`).
    pub serve_protocol_errors: Counter,
    /// Requests delayed by a tenant rate quota (`serve.throttled`).
    pub serve_throttled: Counter,
    /// Time spent blocked on tenant quotas, nanoseconds
    /// (`serve.throttle_nanos`).
    pub serve_throttle_ns: Histogram,
    /// Queries refused by a tenant `max_rows` budget
    /// (`serve.rows_rejected`).
    pub serve_rows_rejected: Counter,
    /// Sessions evicted after sitting idle past the configured horizon
    /// (`serve.idle_evictions`).
    pub serve_idle_evictions: Counter,
    /// Requests served over the HTTP fallback (`serve.http_requests`).
    pub serve_http_requests: Counter,
    /// Graceful shutdowns completed, checkpoint included
    /// (`serve.shutdowns`).
    pub serve_shutdowns: Counter,

    // -- browse --
    /// Answer-cache counters (`browse.query_cache.*`; absorbs the
    /// session `CacheStats`).
    pub query_cache: CacheCounters,
    /// Navigation tables built (`browse.nav.builds`).
    pub nav_builds: Counter,
    /// Navigation-table build latency in nanoseconds (`browse.nav.build_nanos`).
    pub nav_build_ns: Histogram,
    /// Probe invocations (`browse.probe.runs`).
    pub probe_runs: Counter,
    /// Retraction waves executed (`browse.probe.waves`).
    pub probe_waves: Counter,
    /// Retraction attempts across all waves (`browse.probe.attempts`).
    pub probe_attempts: Counter,
    /// Attempts per wave (`browse.probe.wave_size`).
    pub probe_wave_size: Histogram,
    /// Probes rescued by retraction (`browse.probe.retraction_successes`).
    pub probe_successes: Counter,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates a registry populated with the well-known metrics.
    pub fn new() -> Self {
        let registry = Registry::new();
        Metrics {
            wal_appends: registry.counter("store.wal.appends"),
            wal_append_bytes: registry.counter("store.wal.append_bytes"),
            wal_fsyncs: registry.counter("store.wal.fsyncs"),
            wal_fsync_ns: registry.histogram("store.wal.fsync_nanos"),
            checkpoints: registry.counter("store.wal.checkpoints"),
            checkpoint_ns: registry.histogram("store.wal.checkpoint_nanos"),
            wal_recovered_ops: registry.counter("store.wal.recovered_ops"),
            closure_computes: registry.counter("engine.closure.computes"),
            closure_compute_ns: registry.histogram("engine.closure.compute_nanos"),
            closure_extends: registry.counter("engine.closure.extends"),
            closure_extend_ns: registry.histogram("engine.closure.extend_nanos"),
            closure_retracts: registry.counter("engine.closure.retracts"),
            closure_retract_ns: registry.histogram("engine.closure.retract_nanos"),
            closure_retract_decrements: registry
                .counter("engine.closure.retract.support_decrements"),
            closure_retract_deleted: registry.counter("engine.closure.retract.over_deleted"),
            closure_retract_rederived: registry.counter("engine.closure.retract.rederived"),
            closure_retract_waves: registry.counter("engine.closure.retract.waves"),
            closure_facts: registry.gauge("engine.closure.facts"),
            publishes: registry.counter("engine.publish.count"),
            publish_ns: registry.histogram("engine.publish.nanos"),
            publish_delta_rels: registry.histogram("engine.publish.delta_rels"),
            epoch: registry.gauge("engine.epoch"),
            query_evals: registry.counter("query.evals"),
            query_eval_ns: registry.histogram("query.eval_nanos"),
            query_rows: registry.histogram("query.rows"),
            count_probes: registry.counter("query.count_probes"),
            strategy_hash: registry.counter("query.plan.strategy_hash"),
            strategy_nested: registry.counter("query.plan.strategy_nested"),
            join_partitions: registry.counter("query.join.partitions"),
            plan_cache: CacheCounters::register(
                &registry,
                "query.plan_cache.hits",
                "query.plan_cache.misses",
                "query.plan_cache.evictions",
                "query.plan_cache.carried",
                "query.plan_cache.len",
            ),
            repl_frames_applied: registry.counter("repl.frames_applied"),
            repl_frames_rejected: registry.counter("repl.frames_rejected"),
            repl_retries: registry.counter("repl.retries"),
            repl_bootstraps: registry.counter("repl.bootstraps"),
            repl_polls: registry.counter("repl.polls"),
            repl_lag_bytes: registry.gauge("repl.lag_bytes"),
            repl_apply_ns: registry.histogram("repl.apply_nanos"),
            shard_count: registry.gauge("shard.count"),
            shard_route_owner: registry.counter("shard.route.owner"),
            shard_route_broadcast: registry.counter("shard.route.broadcast"),
            shard_route_rebroadcast: registry.counter("shard.route.rebroadcast_facts"),
            shard_route_removals: registry.counter("shard.route.remove_fanout"),
            shard_scatter_queries: registry.counter("shard.scatter.queries"),
            shard_scatter_collocated: registry.counter("shard.scatter.collocated"),
            shard_scatter_tasks: registry.counter("shard.scatter.tasks"),
            shard_gather_rows: registry.histogram("shard.scatter.gather_rows"),
            shard_publish_ns: registry.histogram("shard.publish.nanos"),
            serve_connections: registry.gauge("serve.connections"),
            serve_accepted: registry.counter("serve.accepted"),
            serve_sessions: registry.gauge("serve.sessions"),
            serve_requests: registry.counter("serve.requests"),
            serve_request_ns: registry.histogram("serve.request_nanos"),
            serve_bytes_in: registry.counter("serve.bytes_in"),
            serve_bytes_out: registry.counter("serve.bytes_out"),
            serve_protocol_errors: registry.counter("serve.protocol_errors"),
            serve_throttled: registry.counter("serve.throttled"),
            serve_throttle_ns: registry.histogram("serve.throttle_nanos"),
            serve_rows_rejected: registry.counter("serve.rows_rejected"),
            serve_idle_evictions: registry.counter("serve.idle_evictions"),
            serve_http_requests: registry.counter("serve.http_requests"),
            serve_shutdowns: registry.counter("serve.shutdowns"),
            query_cache: CacheCounters::register(
                &registry,
                "browse.query_cache.hits",
                "browse.query_cache.misses",
                "browse.query_cache.evictions",
                "browse.query_cache.carried",
                "browse.query_cache.len",
            ),
            nav_builds: registry.counter("browse.nav.builds"),
            nav_build_ns: registry.histogram("browse.nav.build_nanos"),
            probe_runs: registry.counter("browse.probe.runs"),
            probe_waves: registry.counter("browse.probe.waves"),
            probe_attempts: registry.counter("browse.probe.attempts"),
            probe_wave_size: registry.histogram("browse.probe.wave_size"),
            probe_successes: registry.counter("browse.probe.retraction_successes"),
            registry,
        }
    }

    /// The underlying name-keyed registry (for exporters and ad-hoc
    /// metrics).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Typed point-in-time snapshot of every well-known metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            wal: WalSnapshot {
                appends: self.wal_appends.get(),
                append_bytes: self.wal_append_bytes.get(),
                fsyncs: self.wal_fsyncs.get(),
                fsync_ns: self.wal_fsync_ns.snapshot(),
                checkpoints: self.checkpoints.get(),
                checkpoint_ns: self.checkpoint_ns.snapshot(),
                recovered_ops: self.wal_recovered_ops.get(),
            },
            closure: ClosureSnapshot {
                computes: self.closure_computes.get(),
                compute_ns: self.closure_compute_ns.snapshot(),
                extends: self.closure_extends.get(),
                extend_ns: self.closure_extend_ns.snapshot(),
                retracts: self.closure_retracts.get(),
                retract_ns: self.closure_retract_ns.snapshot(),
                retract_decrements: self.closure_retract_decrements.get(),
                retract_deleted: self.closure_retract_deleted.get(),
                retract_rederived: self.closure_retract_rederived.get(),
                retract_waves: self.closure_retract_waves.get(),
                facts: self.closure_facts.get(),
            },
            publish: PublishSnapshot {
                publishes: self.publishes.get(),
                publish_ns: self.publish_ns.snapshot(),
                delta_rels: self.publish_delta_rels.snapshot(),
                epoch: self.epoch.get(),
            },
            query: QuerySnapshot {
                evals: self.query_evals.get(),
                eval_ns: self.query_eval_ns.snapshot(),
                rows: self.query_rows.snapshot(),
                count_probes: self.count_probes.get(),
                strategy_hash: self.strategy_hash.get(),
                strategy_nested: self.strategy_nested.get(),
                join_partitions: self.join_partitions.get(),
                plan_cache: self.plan_cache.snapshot(),
            },
            repl: ReplicationSnapshot {
                frames_applied: self.repl_frames_applied.get(),
                frames_rejected: self.repl_frames_rejected.get(),
                retries: self.repl_retries.get(),
                bootstraps: self.repl_bootstraps.get(),
                polls: self.repl_polls.get(),
                lag_bytes: self.repl_lag_bytes.get(),
                apply_ns: self.repl_apply_ns.snapshot(),
            },
            shard: ShardSnapshot {
                count: self.shard_count.get(),
                route_owner: self.shard_route_owner.get(),
                route_broadcast: self.shard_route_broadcast.get(),
                route_rebroadcast: self.shard_route_rebroadcast.get(),
                route_removals: self.shard_route_removals.get(),
                scatter_queries: self.shard_scatter_queries.get(),
                scatter_collocated: self.shard_scatter_collocated.get(),
                scatter_tasks: self.shard_scatter_tasks.get(),
                gather_rows: self.shard_gather_rows.snapshot(),
                publish_ns: self.shard_publish_ns.snapshot(),
            },
            serve: ServeSnapshot {
                connections: self.serve_connections.get(),
                accepted: self.serve_accepted.get(),
                sessions: self.serve_sessions.get(),
                requests: self.serve_requests.get(),
                request_ns: self.serve_request_ns.snapshot(),
                bytes_in: self.serve_bytes_in.get(),
                bytes_out: self.serve_bytes_out.get(),
                protocol_errors: self.serve_protocol_errors.get(),
                throttled: self.serve_throttled.get(),
                throttle_ns: self.serve_throttle_ns.snapshot(),
                rows_rejected: self.serve_rows_rejected.get(),
                idle_evictions: self.serve_idle_evictions.get(),
                http_requests: self.serve_http_requests.get(),
                shutdowns: self.serve_shutdowns.get(),
            },
            browse: BrowseSnapshot {
                query_cache: self.query_cache.snapshot(),
                nav_builds: self.nav_builds.get(),
                nav_build_ns: self.nav_build_ns.snapshot(),
                probe_runs: self.probe_runs.get(),
                probe_waves: self.probe_waves.get(),
                probe_attempts: self.probe_attempts.get(),
                probe_wave_size: self.probe_wave_size.snapshot(),
                probe_successes: self.probe_successes.get(),
            },
        }
    }
}

/// Typed snapshot of every well-known metric ([`Metrics::snapshot`]).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Durability metrics.
    pub wal: WalSnapshot,
    /// Closure metrics.
    pub closure: ClosureSnapshot,
    /// Generation-publish metrics.
    pub publish: PublishSnapshot,
    /// Query metrics.
    pub query: QuerySnapshot,
    /// Replication metrics.
    pub repl: ReplicationSnapshot,
    /// Sharded-router metrics.
    pub shard: ShardSnapshot,
    /// Network-serving metrics.
    pub serve: ServeSnapshot,
    /// Browsing metrics.
    pub browse: BrowseSnapshot,
}

/// Network-serving (loosedb-serve) metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ServeSnapshot {
    /// Connections currently admitted.
    pub connections: u64,
    /// Connections accepted since start.
    pub accepted: u64,
    /// Live sessions in the registry.
    pub sessions: u64,
    /// Requests handled across all transports.
    pub requests: u64,
    /// End-to-end request handling latency.
    pub request_ns: HistogramSnapshot,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Malformed frames / transport violations observed.
    pub protocol_errors: u64,
    /// Requests delayed by a tenant rate quota.
    pub throttled: u64,
    /// Time spent blocked on tenant quotas.
    pub throttle_ns: HistogramSnapshot,
    /// Queries refused by a tenant `max_rows` budget.
    pub rows_rejected: u64,
    /// Sessions evicted after sitting idle past the configured horizon.
    pub idle_evictions: u64,
    /// Requests served over the HTTP fallback.
    pub http_requests: u64,
    /// Graceful shutdowns completed, checkpoint included.
    pub shutdowns: u64,
}

/// Sharded-router (routing / scatter-gather) metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ShardSnapshot {
    /// Shards behind the router (0 = unsharded).
    pub count: u64,
    /// Writes routed to a single owner shard.
    pub route_owner: u64,
    /// Writes broadcast to every shard.
    pub route_broadcast: u64,
    /// Base facts re-broadcast after a promotion.
    pub route_rebroadcast: u64,
    /// Removals fanned out to every shard.
    pub route_removals: u64,
    /// Scatter-gather query evaluations.
    pub scatter_queries: u64,
    /// Queries served by the collocated per-shard fast path.
    pub scatter_collocated: u64,
    /// Per-shard scan/eval tasks fanned out.
    pub scatter_tasks: u64,
    /// Rows gathered per scatter union.
    pub gather_rows: HistogramSnapshot,
    /// Router-observed write latency across all touched shards.
    pub publish_ns: HistogramSnapshot,
}

/// Replication (WAL shipping / replica replay) metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ReplicationSnapshot {
    /// Shipped frames applied.
    pub frames_applied: u64,
    /// Frames rejected at the checksum.
    pub frames_rejected: u64,
    /// Corrupt-frame re-fetch attempts.
    pub retries: u64,
    /// Bootstraps from a leader snapshot.
    pub bootstraps: u64,
    /// Poll rounds executed.
    pub polls: u64,
    /// Unapplied leader-WAL bytes in the current segment.
    pub lag_bytes: u64,
    /// Apply+publish batch latency.
    pub apply_ns: HistogramSnapshot,
}

/// Durability (WAL/checkpoint) metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WalSnapshot {
    /// WAL frames appended.
    pub appends: u64,
    /// WAL bytes appended.
    pub append_bytes: u64,
    /// Fsyncs issued.
    pub fsyncs: u64,
    /// Fsync latency.
    pub fsync_ns: HistogramSnapshot,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoint latency.
    pub checkpoint_ns: HistogramSnapshot,
    /// Operations replayed at recovery.
    pub recovered_ops: u64,
}

/// Closure compute/extend metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ClosureSnapshot {
    /// Full recomputations.
    pub computes: u64,
    /// Full-compute latency.
    pub compute_ns: HistogramSnapshot,
    /// Incremental extensions.
    pub extends: u64,
    /// Extend latency.
    pub extend_ns: HistogramSnapshot,
    /// Incremental retractions.
    pub retracts: u64,
    /// Retraction latency.
    pub retract_ns: HistogramSnapshot,
    /// Support decrements applied by delete waves.
    pub retract_decrements: u64,
    /// Facts over-deleted by delete waves.
    pub retract_deleted: u64,
    /// Over-deleted facts rederived from the stable set.
    pub retract_rederived: u64,
    /// Rederivation waves run.
    pub retract_waves: u64,
    /// Facts in the latest closure.
    pub facts: u64,
}

/// Generation-publish metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PublishSnapshot {
    /// Generations published.
    pub publishes: u64,
    /// Publish latency.
    pub publish_ns: HistogramSnapshot,
    /// Relationships per publish delta.
    pub delta_rels: HistogramSnapshot,
    /// Current epoch.
    pub epoch: u64,
}

/// Query-evaluation metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct QuerySnapshot {
    /// Queries evaluated.
    pub evals: u64,
    /// Evaluation latency.
    pub eval_ns: HistogramSnapshot,
    /// Rows per answer.
    pub rows: HistogramSnapshot,
    /// Index probes issued by views.
    pub count_probes: u64,
    /// Conjunction groups executed set-at-a-time.
    pub strategy_hash: u64,
    /// Conjunction groups executed binding-at-a-time.
    pub strategy_nested: u64,
    /// Parallel partitions fanned out by hash-join steps.
    pub join_partitions: u64,
    /// Plan-cache counters.
    pub plan_cache: CacheSnapshot,
}

/// Browsing (navigation/probe) metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BrowseSnapshot {
    /// Answer-cache counters.
    pub query_cache: CacheSnapshot,
    /// Navigation tables built.
    pub nav_builds: u64,
    /// Navigation-table build latency.
    pub nav_build_ns: HistogramSnapshot,
    /// Probe invocations.
    pub probe_runs: u64,
    /// Retraction waves executed.
    pub probe_waves: u64,
    /// Retraction attempts across all waves.
    pub probe_attempts: u64,
    /// Attempts per wave.
    pub probe_wave_size: HistogramSnapshot,
    /// Probes rescued by retraction.
    pub probe_successes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(17);
        assert_eq!(g.get(), 17);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles_are_deterministic() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(100); // bucket 7 (64..127)
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 201);
        // ranks: p50 → rank 2 → value 1's bucket (upper bound 1);
        // p95/p99 → rank 4 → 100's bucket (upper bound 127).
        assert_eq!(s.p50, 1);
        assert_eq!(s.p95, 127);
        assert_eq!(s.p99, 127);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[7], 2);
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, u64::MAX);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.collect().len(), 1);
        assert!(matches!(r.get("x"), Some(Metric::Counter(_))));
        assert!(r.get("y").is_none());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_conflicts() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn metrics_snapshot_reflects_handles() {
        let m = Metrics::new();
        m.wal_appends.add(3);
        m.epoch.set(9);
        m.plan_cache.hits.inc();
        let s = m.snapshot();
        assert_eq!(s.wal.appends, 3);
        assert_eq!(s.publish.epoch, 9);
        assert_eq!(s.query.plan_cache.hits, 1);
        assert_eq!(s.browse.query_cache, CacheSnapshot::default());
        // The same counters are visible through the registry.
        let Some(Metric::Counter(c)) = m.registry().get("store.wal.appends") else {
            panic!("wal.appends not registered");
        };
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        m.count_probes.inc();
                        m.query_rows.record(5);
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.query.count_probes, 80_000);
        assert_eq!(s.query.rows.count, 80_000);
        assert_eq!(s.query.rows.sum, 400_000);
    }
}
