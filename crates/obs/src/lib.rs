//! Observability layer for loosedb: a lock-free metrics registry, a
//! Prometheus text exporter, and feature-gated structured tracing
//! spans.
//!
//! The paper reasons qualitatively about exactly the costs this crate
//! makes visible at runtime — closure materialization, composition
//! blow-up, retraction waves (Motro §3, §5) — and EXPERIMENTS.md
//! measures them offline. This crate is the live counterpart:
//!
//! - **Metrics** ([`Metrics`], [`Registry`]) are always compiled in:
//!   every handle is an `Arc`-shared atomic, recording is wait-free
//!   and allocation-free, and the typed [`MetricsSnapshot`] is the
//!   stable read surface (`SharedDatabase::metrics_snapshot()`).
//! - **Spans** ([`trace`], [`span!`]) compile to no-ops unless the
//!   `trace` feature is on (lib crates expose it as `obs`), and even
//!   then cost one relaxed load until capture is enabled.
//! - **Export**: [`prometheus_text`] renders a [`Registry`] in the
//!   Prometheus exposition format; serving it is the caller's problem.
//!
//! See DESIGN.md §11 for the metric name catalogue and span hierarchy.

#![warn(missing_docs)]

mod metrics;
mod prometheus;
pub mod trace;

pub use metrics::{
    bucket_upper_bound, BrowseSnapshot, CacheCounters, CacheSnapshot, ClosureSnapshot, Counter,
    Gauge, Histogram, HistogramSnapshot, Metric, Metrics, MetricsSnapshot, PublishSnapshot,
    QuerySnapshot, Registry, ReplicationSnapshot, ShardSnapshot, WalSnapshot, HISTOGRAM_BUCKETS,
};
pub use prometheus::prometheus_text;

/// Opens a timed span with optional `key = value` fields and returns a
/// guard that reports the span when dropped:
///
/// ```ignore
/// let mut span = loosedb_obs::span!("engine.publish", epoch = 3u64);
/// // … work …
/// span.record("delta_rels", 17u64);
/// ```
///
/// With the `trace` feature off this expands to a zero-sized no-op
/// guard and the field expressions are never evaluated — keep them
/// side-effect free.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        if $crate::trace::capturing() {
            $crate::trace::SpanGuard::enter(
                $crate::trace::new_span($name)$(.with(stringify!($key), $value))*
            )
        } else {
            $crate::trace::SpanGuard::noop()
        }
    }};
}

/// Opens a timed span (no-op: the `trace` feature is off).
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_variables, unreachable_code, clippy::overly_complex_bool_expr)]
        if false {
            $(let _ = &$value;)*
        }
        $crate::trace::SpanGuard::noop()
    }};
}

#[cfg(all(test, feature = "trace"))]
mod trace_tests {
    #[test]
    fn span_macro_captures_when_enabled() {
        crate::trace::set_capture(true);
        {
            let mut span = crate::span!("test.outer", epoch = 4u64);
            span.record("rows", 2u64);
        }
        let spans = crate::trace::drain();
        crate::trace::set_capture(false);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.outer");
        assert_eq!(spans[0].fields.len(), 2);
        let rendered = crate::trace::render_span(&spans[0]);
        assert!(rendered.contains("epoch=4"), "{rendered}");
        assert!(rendered.contains("rows=2"), "{rendered}");
    }

    #[test]
    fn span_macro_skips_when_capture_off() {
        crate::trace::set_capture(false);
        drop(crate::span!("test.skipped"));
        assert!(crate::trace::drain().is_empty());
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod noop_tests {
    #[test]
    fn span_macro_is_a_noop() {
        let mut span = crate::span!("test.noop", ignored = 1u64);
        span.record("also_ignored", 2u64);
        assert!(!crate::trace::capturing());
        assert!(crate::trace::drain().is_empty());
        // The guard is zero-sized with the feature off.
        assert_eq!(std::mem::size_of::<crate::trace::SpanGuard>(), 0);
    }
}
