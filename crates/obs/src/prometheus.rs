//! Prometheus text-format export (exposition format 0.0.4). No HTTP
//! server — callers scrape [`prometheus_text`] however they serve it.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, Metric, Registry};

/// Mangles a catalogue name (`store.wal.appends`) into a Prometheus
/// metric name (`loosedb_store_wal_appends`).
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("loosedb_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders every metric in `registry` in the Prometheus text format:
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="…"}` series plus `_sum`/`_count`.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, metric) in registry.collect() {
        let pname = mangle(name);
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {}", g.get());
            }
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for (i, &count) in snap.buckets.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    cumulative += count;
                    let _ = writeln!(
                        out,
                        "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(i)
                    );
                }
                let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", snap.count);
                let _ = writeln!(out, "{pname}_sum {}", snap.sum);
                let _ = writeln!(out, "{pname}_count {}", snap.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_covers_all_kinds() {
        let r = Registry::new();
        r.counter("a.count").add(2);
        r.gauge("b.gauge").set(7);
        let h = r.histogram("c.hist");
        h.record(3);
        h.record(100);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE loosedb_a_count counter"), "{text}");
        assert!(text.contains("loosedb_a_count 2"), "{text}");
        assert!(text.contains("loosedb_b_gauge 7"), "{text}");
        assert!(text.contains("# TYPE loosedb_c_hist histogram"), "{text}");
        assert!(text.contains("loosedb_c_hist_bucket{le=\"3\"} 1"), "{text}");
        assert!(text.contains("loosedb_c_hist_bucket{le=\"127\"} 2"), "{text}");
        assert!(text.contains("loosedb_c_hist_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("loosedb_c_hist_sum 103"), "{text}");
        assert!(text.contains("loosedb_c_hist_count 2"), "{text}");
    }
}
