//! Structured tracing spans, feature-gated behind `trace`.
//!
//! With the feature on, this module wraps the vendored `tracing` shim:
//! spans carry typed fields, measure wall-clock duration, and land in
//! a bounded global buffer when capture is enabled. With the feature
//! off every function here is a no-op and [`SpanGuard`] is a zero-sized
//! type, so `obs::span!` call sites compile to nothing.
//!
//! Capture is off by default even with the feature compiled in; turn
//! it on with [`set_capture`] (the REPL `spans on` command does this).

#[cfg(feature = "trace")]
mod imp {
    pub use tracing::{SpanRecord, Value as FieldValue};

    /// Enables or disables span capture globally.
    pub fn set_capture(on: bool) {
        tracing::collector::set_capture(on);
    }

    /// Whether spans are currently captured (the hot-path check).
    #[inline]
    pub fn capturing() -> bool {
        tracing::collector::capturing()
    }

    /// Removes and returns all captured spans, oldest first.
    pub fn drain() -> Vec<SpanRecord> {
        tracing::collector::drain()
    }

    /// Starts building a span (used by the `span!` macro).
    pub fn new_span(name: &'static str) -> tracing::Span {
        tracing::Span::new(name)
    }

    /// RAII guard for an active span; reports on drop.
    #[derive(Debug)]
    pub struct SpanGuard(Option<tracing::EnteredSpan>);

    impl SpanGuard {
        /// A guard that records nothing.
        pub fn noop() -> Self {
            SpanGuard(None)
        }

        /// Enters `span` (used by the `span!` macro).
        pub fn enter(span: tracing::Span) -> Self {
            SpanGuard(Some(span.enter()))
        }

        /// Records an additional field on the active span.
        #[inline]
        pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
            if let Some(entered) = self.0.as_mut() {
                entered.record(key, value);
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    /// A typed span-field value (mirror of the `trace`-enabled type so
    /// callers compile identically in both modes).
    #[derive(Debug, Clone, PartialEq)]
    pub enum FieldValue {
        /// Unsigned integer field.
        U64(u64),
        /// Signed integer field.
        I64(i64),
        /// Floating-point field.
        F64(f64),
        /// Boolean field.
        Bool(bool),
        /// String field.
        Str(String),
    }

    impl std::fmt::Display for FieldValue {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                FieldValue::U64(v) => write!(f, "{v}"),
                FieldValue::I64(v) => write!(f, "{v}"),
                FieldValue::F64(v) => write!(f, "{v}"),
                FieldValue::Bool(v) => write!(f, "{v}"),
                FieldValue::Str(v) => write!(f, "{v}"),
            }
        }
    }

    impl From<u64> for FieldValue {
        fn from(v: u64) -> Self {
            FieldValue::U64(v)
        }
    }
    impl From<u32> for FieldValue {
        fn from(v: u32) -> Self {
            FieldValue::U64(v as u64)
        }
    }
    impl From<usize> for FieldValue {
        fn from(v: usize) -> Self {
            FieldValue::U64(v as u64)
        }
    }
    impl From<i64> for FieldValue {
        fn from(v: i64) -> Self {
            FieldValue::I64(v)
        }
    }
    impl From<f64> for FieldValue {
        fn from(v: f64) -> Self {
            FieldValue::F64(v)
        }
    }
    impl From<bool> for FieldValue {
        fn from(v: bool) -> Self {
            FieldValue::Bool(v)
        }
    }
    impl From<&str> for FieldValue {
        fn from(v: &str) -> Self {
            FieldValue::Str(v.to_string())
        }
    }
    impl From<String> for FieldValue {
        fn from(v: String) -> Self {
            FieldValue::Str(v)
        }
    }

    /// A finished span (never produced with the feature off).
    #[derive(Debug, Clone)]
    pub struct SpanRecord {
        /// Static span name.
        pub name: &'static str,
        /// Enclosing span, if any.
        pub parent: Option<&'static str>,
        /// Recorded fields.
        pub fields: Vec<(&'static str, FieldValue)>,
        /// Wall-clock duration in nanoseconds.
        pub nanos: u64,
    }

    /// No-op: spans are compiled out.
    pub fn set_capture(_on: bool) {}

    /// Always false with the feature off.
    #[inline]
    pub fn capturing() -> bool {
        false
    }

    /// Always empty with the feature off.
    pub fn drain() -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Zero-sized no-op span guard.
    #[derive(Debug)]
    pub struct SpanGuard;

    impl SpanGuard {
        /// A guard that records nothing.
        pub fn noop() -> Self {
            SpanGuard
        }

        /// No-op.
        #[inline]
        pub fn record(&mut self, _key: &'static str, _value: impl Into<FieldValue>) {}
    }
}

pub use imp::*;

/// Renders a drained span for terminal display:
/// `name{k=v, …} 12.3µs ← parent`.
pub fn render_span(record: &SpanRecord) -> String {
    let fields: Vec<String> = record.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let nanos = record.nanos;
    let took = if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{:.2}ms", nanos as f64 / 1e6)
    };
    let parent = match record.parent {
        Some(p) => format!(" ← {p}"),
        None => String::new(),
    };
    format!("{}{{{}}} {}{}", record.name, fields.join(", "), took, parent)
}
