//! The `loosedb-serve` binary: serves a world over the binary protocol
//! and HTTP from the command line.
//!
//! ```text
//! loosedb-serve [--addr HOST:PORT] [--world music|probing|university|company|empty]
//!               [--journal DIR] [--shards N] [--max-connections N]
//!               [--idle-ms N] [--max-rows N] [--rate OPS] [--burst N]
//! ```
//!
//! `--journal DIR` opens (or creates) a durable journal and serves it
//! through a shared mirror; `--shards N` partitions the world across N
//! in-process shards. Without either, the world is served from one
//! shared in-memory database. SIGINT/SIGTERM trigger a graceful
//! shutdown: in-flight requests finish, the journal is checkpointed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use loosedb_datagen::{company, music_world, probing_world, university};
use loosedb_engine::{Database, DurableDatabase, ShardedDatabase, SharedDatabase, SyncPolicy};
use loosedb_serve::{Backend, ServeConfig, Server, TenantQuota};
use loosedb_store::io::{RealIo, StorageIo};

static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // The workspace vendors no libc crate; the two libc calls needed are
    // declared directly. Flagging an AtomicBool is all the handler does,
    // which is async-signal-safe.
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: loosedb-serve [--addr HOST:PORT] [--world NAME] [--journal DIR] \
         [--shards N] [--max-connections N] [--idle-ms N] [--max-rows N] \
         [--rate OPS] [--burst N]"
    );
    std::process::exit(2);
}

fn world(name: &str) -> Database {
    match name {
        "music" => music_world(),
        "probing" => probing_world(),
        "university" => university(&Default::default()),
        "company" => company(&Default::default()),
        "empty" => Database::new(),
        other => {
            eprintln!("unknown world {other:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:5433".to_string();
    let mut world_name = "music".to_string();
    let mut journal_dir: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut config = ServeConfig { addr: addr.clone(), ..ServeConfig::default() };
    let mut quota = TenantQuota::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = val(),
            "--world" => world_name = val(),
            "--journal" => journal_dir = Some(val()),
            "--shards" => shards = val().parse().ok().or_else(|| usage()),
            "--max-connections" => {
                config.max_connections = val().parse().unwrap_or_else(|_| usage())
            }
            "--idle-ms" => {
                config.idle_timeout =
                    Duration::from_millis(val().parse().unwrap_or_else(|_| usage()))
            }
            "--max-rows" => quota.max_rows = val().parse().unwrap_or_else(|_| usage()),
            "--rate" => quota.ops_per_sec = val().parse().unwrap_or_else(|_| usage()),
            "--burst" => quota.burst = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    config.addr = addr;
    config.default_quota = quota;

    let backend = match (journal_dir, shards) {
        (Some(dir), None) => {
            let io: Box<dyn StorageIo> = Box::new(RealIo);
            let journal = DurableDatabase::open_with(io, &dir, SyncPolicy::EveryN(64))
                .unwrap_or_else(|e| {
                    eprintln!("cannot open journal {dir}: {e}");
                    std::process::exit(1);
                });
            let recovered = journal.database_ref().base_len();
            let backend = Backend::durable(journal).unwrap_or_else(|e| {
                eprintln!("cannot build serving mirror: {e}");
                std::process::exit(1);
            });
            if recovered == 0 {
                // A fresh journal: seed it with the requested world.
                let db = world(&world_name);
                let (text, _skipped) = db.export_facts();
                if let Backend::Durable { journal, serving } = &backend {
                    let mut journal = journal.lock();
                    let result = serving.write(|d| d.import_facts(&text));
                    if let Err(e) =
                        result.map_err(|e| e.to_string()).and_then(|r| r.map_err(|e| e.to_string()))
                    {
                        eprintln!("cannot seed world: {e}");
                        std::process::exit(1);
                    }
                    if let Err(e) = journal.database().import_facts(&text) {
                        eprintln!("cannot seed journal: {e}");
                        std::process::exit(1);
                    }
                    if let Err(e) = journal.checkpoint() {
                        eprintln!("cannot checkpoint seeded journal: {e}");
                        std::process::exit(1);
                    }
                }
                eprintln!("seeded journal with the {world_name} world");
            } else {
                eprintln!("recovered {recovered} base fact(s) from {dir}");
            }
            backend
        }
        (None, Some(n)) => {
            let db = world(&world_name);
            let sharded = ShardedDatabase::from_store(n, db.store()).unwrap_or_else(|e| {
                eprintln!("cannot shard: {e}");
                std::process::exit(1);
            });
            Backend::sharded(Arc::new(sharded))
        }
        (None, None) => {
            let db = world(&world_name);
            let shared = SharedDatabase::new(db).unwrap_or_else(|e| {
                eprintln!("cannot build shared database: {e}");
                std::process::exit(1);
            });
            Backend::shared(Arc::new(shared))
        }
        (Some(_), Some(_)) => {
            eprintln!("--journal and --shards are mutually exclusive");
            std::process::exit(2);
        }
    };

    install_signal_handlers();
    let mut server = Server::start(backend, config).unwrap_or_else(|e| {
        eprintln!("cannot bind: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "loosedb-serve listening on {} (binary protocol + HTTP /metrics /healthz /query)",
        server.local_addr()
    );
    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("shutting down: draining sessions, checkpointing…");
    server.shutdown();
    eprintln!("bye");
}
