//! The loosedb wire protocol: small length-prefixed binary frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic   0x4C53 ("LS", little-endian on the wire)
//! 2       1     version currently 1
//! 3       1     opcode  message discriminator (requests < 0x80 ≤ responses)
//! 4       4     len     payload length in bytes, little-endian
//! 8       len   payload opcode-specific, see [`Request`] / [`Response`]
//! ```
//!
//! Payload primitives are little-endian fixed-width integers and
//! UTF-8 strings prefixed by a `u32` byte length; sequences are a `u32`
//! count followed by the items. Decoding is *strict*: every frame must
//! consume its payload exactly, lengths are validated against
//! [`MAX_PAYLOAD`] **before** any allocation (a frame advertising 4 GiB
//! is refused by header inspection alone), and every malformed input
//! yields a typed [`ProtocolError`] — never a panic. The adversarial
//! decode proptests and the checked-in corpus under `tests/corpus/`
//! hold the decoder to that contract.

use std::fmt;
use std::io::{Read, Write};

/// Frame magic: "LS" (loosedb serve).
pub const MAGIC: u16 = 0x4C53;

/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;

/// Frame header length in bytes.
pub const HEADER_LEN: usize = 8;

/// Hard ceiling on a frame payload. Anything larger is refused at the
/// header, before any buffer is allocated — the 4 GiB-length attack
/// costs the server eight bytes of reading.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Everything that can go wrong turning bytes into a message (or a
/// stream into a frame). Every variant is a *typed* refusal: the
/// decoder never panics on adversarial input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame did not start with [`MAGIC`].
    BadMagic(u16),
    /// The frame's version byte is not one this build speaks.
    UnsupportedVersion(u8),
    /// The opcode byte names no known message (or a response opcode
    /// arrived where a request was required, and vice versa).
    UnknownOpcode(u8),
    /// The header advertised a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Advertised payload length.
        len: u32,
        /// The ceiling it violated.
        limit: u32,
    },
    /// The payload ended before the field being decoded.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The payload was longer than the message it encoded.
    TrailingBytes(usize),
    /// A field held a value outside its domain (e.g. an unknown error
    /// code or a boolean that is neither 0 nor 1).
    BadValue(&'static str),
    /// The underlying transport failed (connection reset, timeout,
    /// EOF mid-frame). Carries the I/O error kind.
    Io(std::io::ErrorKind),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            ProtocolError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::Oversized { len, limit } => {
                write!(f, "frame advertises {len} payload bytes (limit {limit})")
            }
            ProtocolError::Truncated => write!(f, "payload truncated"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            ProtocolError::BadValue(what) => write!(f, "field out of domain: {what}"),
            ProtocolError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e.kind())
    }
}

/// Why a request was refused ([`Response::Fail`]). Codes are stable
/// wire values; [`ErrorCode::decode`] rejects unknown ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The query/probe text did not parse.
    Parse = 1,
    /// A name did not resolve to an interned entity.
    UnknownEntity = 2,
    /// The answer exceeded the tenant's `max_rows` budget.
    TooManyRows = 3,
    /// A checked publish was rejected by integrity enforcement.
    Integrity = 4,
    /// The request itself was malformed at the protocol level.
    Malformed = 5,
    /// The server is draining for shutdown.
    ShuttingDown = 6,
    /// The first frame on a connection must be `Hello`.
    HandshakeRequired = 7,
    /// Evaluation failed for an engine-internal reason.
    Internal = 8,
}

impl ErrorCode {
    /// Decodes a wire value.
    pub fn decode(v: u16) -> Result<Self, ProtocolError> {
        Ok(match v {
            1 => ErrorCode::Parse,
            2 => ErrorCode::UnknownEntity,
            3 => ErrorCode::TooManyRows,
            4 => ErrorCode::Integrity,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::HandshakeRequired,
            8 => ErrorCode::Internal,
            _ => return Err(ProtocolError::BadValue("error code")),
        })
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Opens the session: names the tenant whose quotas apply. Must be
    /// the first frame on every connection.
    Hello {
        /// Tenant name ("" selects the default quota).
        tenant: String,
    },
    /// Evaluates a standard query (§2.7 syntax).
    Query {
        /// Query source text.
        text: String,
    },
    /// Renders a navigation table for a template; `"*"` marks a free
    /// position.
    Navigate {
        /// Source position.
        s: String,
        /// Relationship position.
        r: String,
        /// Target position.
        t: String,
    },
    /// Evaluates a query with automatic retraction (§5 probing).
    Probe {
        /// Probe source text.
        text: String,
    },
    /// Publishes a batch of facts in one generation.
    Publish {
        /// Enforce integrity (the `try_add` path) instead of unchecked
        /// insertion.
        checked: bool,
        /// `(source, relationship, target)` triples, as display text.
        facts: Vec<(String, String, String)>,
    },
    /// Retracts one base fact.
    Retract {
        /// Source name.
        s: String,
        /// Relationship name.
        r: String,
        /// Target name.
        t: String,
    },
    /// Fetches the Prometheus text exposition.
    Metrics,
    /// Ends the session politely.
    Bye,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// Server-assigned session id.
        session: u64,
        /// Epoch of the generation the session starts on (sum across
        /// shards for a sharded backend).
        epoch: u64,
    },
    /// A query answer. A proposition answers with no columns and — when
    /// true — a single empty row.
    Rows {
        /// Epoch the answer was computed against.
        epoch: u64,
        /// Column display names.
        names: Vec<String>,
        /// Row values, rendered.
        rows: Vec<Vec<String>>,
    },
    /// A rendered table or menu (navigation, probe reports).
    Text {
        /// The rendered text.
        text: String,
    },
    /// A write was applied (or was a no-op duplicate).
    Done {
        /// Epoch after the write.
        epoch: u64,
        /// Facts newly applied by this request.
        applied: u64,
    },
    /// The Prometheus exposition.
    Metrics {
        /// Prometheus text format 0.0.4.
        text: String,
    },
    /// The request was refused.
    Fail {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Session closed.
    Bye,
}

// Request opcodes (< 0x80).
const OP_HELLO: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_NAVIGATE: u8 = 0x03;
const OP_PROBE: u8 = 0x04;
const OP_PUBLISH: u8 = 0x05;
const OP_RETRACT: u8 = 0x06;
const OP_METRICS: u8 = 0x07;
const OP_BYE: u8 = 0x08;

// Response opcodes (≥ 0x80).
const OP_WELCOME: u8 = 0x81;
const OP_ROWS: u8 = 0x82;
const OP_TEXT: u8 = 0x83;
const OP_DONE: u8 = 0x84;
const OP_METRICS_TEXT: u8 = 0x85;
const OP_FAIL: u8 = 0x86;
const OP_BYE_R: u8 = 0x87;

/// A bounds-checked payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn bool(&mut self) -> Result<bool, ProtocolError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtocolError::BadValue("boolean")),
        }
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    /// Reads a sequence count, refusing counts that cannot possibly fit
    /// in the remaining payload (each element needs at least
    /// `min_element` bytes) — an adversarial count of `u32::MAX` must
    /// not reserve memory.
    fn count(&mut self, min_element: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_element.max(1)) > self.remaining() {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    fn strings(&mut self) -> Result<Vec<String>, ProtocolError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.string()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// A payload writer.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn strings(&mut self, items: &[String]) {
        self.u32(items.len() as u32);
        for s in items {
            self.string(s);
        }
    }
}

/// Assembles a full frame from an opcode and its payload.
fn frame(opcode: u8, payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(opcode);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

impl Request {
    /// Encodes this request as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        let op = match self {
            Request::Hello { tenant } => {
                w.string(tenant);
                OP_HELLO
            }
            Request::Query { text } => {
                w.string(text);
                OP_QUERY
            }
            Request::Navigate { s, r, t } => {
                w.string(s);
                w.string(r);
                w.string(t);
                OP_NAVIGATE
            }
            Request::Probe { text } => {
                w.string(text);
                OP_PROBE
            }
            Request::Publish { checked, facts } => {
                w.bool(*checked);
                w.u32(facts.len() as u32);
                for (s, r, t) in facts {
                    w.string(s);
                    w.string(r);
                    w.string(t);
                }
                OP_PUBLISH
            }
            Request::Retract { s, r, t } => {
                w.string(s);
                w.string(r);
                w.string(t);
                OP_RETRACT
            }
            Request::Metrics => OP_METRICS,
            Request::Bye => OP_BYE,
        };
        frame(op, w.buf)
    }

    /// Decodes a request payload for `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(payload);
        let msg = match opcode {
            OP_HELLO => Request::Hello { tenant: r.string()? },
            OP_QUERY => Request::Query { text: r.string()? },
            OP_NAVIGATE => Request::Navigate { s: r.string()?, r: r.string()?, t: r.string()? },
            OP_PROBE => Request::Probe { text: r.string()? },
            OP_PUBLISH => {
                let checked = r.bool()?;
                let n = r.count(12)?;
                let mut facts = Vec::with_capacity(n);
                for _ in 0..n {
                    facts.push((r.string()?, r.string()?, r.string()?));
                }
                Request::Publish { checked, facts }
            }
            OP_RETRACT => Request::Retract { s: r.string()?, r: r.string()?, t: r.string()? },
            OP_METRICS => Request::Metrics,
            OP_BYE => Request::Bye,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl Response {
    /// Encodes this response as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        let op = match self {
            Response::Welcome { session, epoch } => {
                w.u64(*session);
                w.u64(*epoch);
                OP_WELCOME
            }
            Response::Rows { epoch, names, rows } => {
                w.u64(*epoch);
                w.strings(names);
                w.u32(rows.len() as u32);
                for row in rows {
                    w.strings(row);
                }
                OP_ROWS
            }
            Response::Text { text } => {
                w.string(text);
                OP_TEXT
            }
            Response::Done { epoch, applied } => {
                w.u64(*epoch);
                w.u64(*applied);
                OP_DONE
            }
            Response::Metrics { text } => {
                w.string(text);
                OP_METRICS_TEXT
            }
            Response::Fail { code, message } => {
                w.u16(*code as u16);
                w.string(message);
                OP_FAIL
            }
            Response::Bye => OP_BYE_R,
        };
        frame(op, w.buf)
    }

    /// Decodes a response payload for `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(payload);
        let msg = match opcode {
            OP_WELCOME => Response::Welcome { session: r.u64()?, epoch: r.u64()? },
            OP_ROWS => {
                let epoch = r.u64()?;
                let names = r.strings()?;
                let n = r.count(4)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(r.strings()?);
                }
                Response::Rows { epoch, names, rows }
            }
            OP_TEXT => Response::Text { text: r.string()? },
            OP_DONE => Response::Done { epoch: r.u64()?, applied: r.u64()? },
            OP_METRICS_TEXT => Response::Metrics { text: r.string()? },
            OP_FAIL => Response::Fail { code: ErrorCode::decode(r.u16()?)?, message: r.string()? },
            OP_BYE_R => Response::Bye,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// A parsed frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Message discriminator.
    pub opcode: u8,
    /// Payload length.
    pub len: u32,
}

/// Validates the 8 header bytes. This is the only inspection a frame
/// gets before its advertised length is trusted, so the length ceiling
/// lives here.
pub fn decode_header(bytes: &[u8; HEADER_LEN]) -> Result<Header, ProtocolError> {
    let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    if bytes[2] != VERSION {
        return Err(ProtocolError::UnsupportedVersion(bytes[2]));
    }
    let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len, limit: MAX_PAYLOAD });
    }
    Ok(Header { opcode: bytes[3], len })
}

/// Decodes one complete frame from a byte buffer: header, payload,
/// request body. Used by the decode fuzz tests; the streaming path is
/// [`read_request`].
pub fn decode_request_frame(bytes: &[u8]) -> Result<Request, ProtocolError> {
    let (header, payload) = split_frame(bytes)?;
    Request::decode(header.opcode, payload)
}

/// [`decode_request_frame`] for responses.
pub fn decode_response_frame(bytes: &[u8]) -> Result<Response, ProtocolError> {
    let (header, payload) = split_frame(bytes)?;
    Response::decode(header.opcode, payload)
}

fn split_frame(bytes: &[u8]) -> Result<(Header, &[u8]), ProtocolError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated);
    }
    let header = decode_header(bytes[..HEADER_LEN].try_into().expect("header"))?;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < header.len as usize {
        return Err(ProtocolError::Truncated);
    }
    if payload.len() > header.len as usize {
        return Err(ProtocolError::TrailingBytes(payload.len() - header.len as usize));
    }
    Ok((header, payload))
}

/// Reads one frame's opcode and payload from a stream. EOF before the
/// first header byte reports `Io(UnexpectedEof)` like any other
/// truncation — callers that want to treat clean EOF specially should
/// probe the stream themselves.
fn read_frame(stream: &mut impl Read) -> Result<(u8, Vec<u8>), ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    let header = decode_header(&header)?;
    let mut payload = vec![0u8; header.len as usize];
    stream.read_exact(&mut payload)?;
    Ok((header.opcode, payload))
}

/// Reads and decodes one request from a stream.
pub fn read_request(stream: &mut impl Read) -> Result<Request, ProtocolError> {
    let (opcode, payload) = read_frame(stream)?;
    Request::decode(opcode, &payload)
}

/// Reads and decodes one response from a stream.
pub fn read_response(stream: &mut impl Read) -> Result<Response, ProtocolError> {
    let (opcode, payload) = read_frame(stream)?;
    Response::decode(opcode, &payload)
}

/// Writes one already-encoded frame to a stream.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> Result<(), ProtocolError> {
    stream.write_all(frame)?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let messages = [
            Request::Hello { tenant: "acme".into() },
            Request::Query { text: "(?x, EARNS, ?y)".into() },
            Request::Navigate { s: "JOHN".into(), r: "*".into(), t: "*".into() },
            Request::Probe { text: "(JOHN, ADORES, ?x)".into() },
            Request::Publish { checked: true, facts: vec![("A".into(), "R".into(), "B".into())] },
            Request::Retract { s: "A".into(), r: "R".into(), t: "B".into() },
            Request::Metrics,
            Request::Bye,
        ];
        for msg in messages {
            let bytes = msg.encode();
            assert_eq!(decode_request_frame(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn responses_round_trip() {
        let messages = [
            Response::Welcome { session: 7, epoch: 42 },
            Response::Rows {
                epoch: 3,
                names: vec!["?x".into()],
                rows: vec![vec!["JOHN".into()], vec!["MARY".into()]],
            },
            Response::Rows { epoch: 0, names: vec![], rows: vec![vec![]] },
            Response::Text { text: "a table".into() },
            Response::Done { epoch: 9, applied: 2 },
            Response::Metrics { text: "# TYPE x counter\nx 1\n".into() },
            Response::Fail { code: ErrorCode::TooManyRows, message: "limit 10".into() },
            Response::Bye,
        ];
        for msg in messages {
            let bytes = msg.encode();
            assert_eq!(decode_response_frame(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn four_gib_length_is_refused_at_the_header() {
        let mut bytes = Request::Query { text: "x".into() }.encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_request_frame(&bytes),
            Err(ProtocolError::Oversized { len: u32::MAX, limit: MAX_PAYLOAD })
        );
    }

    #[test]
    fn truncation_oversized_counts_and_trailing_bytes_are_typed() {
        let good =
            Request::Publish { checked: false, facts: vec![("A".into(), "R".into(), "B".into())] }
                .encode();
        // Chop mid-payload: the header still promises more bytes.
        assert_eq!(decode_request_frame(&good[..good.len() - 2]), Err(ProtocolError::Truncated));
        // A count field claiming more elements than bytes remain.
        let mut huge = good.clone();
        let count_at = HEADER_LEN + 1; // after the `checked` bool
        huge[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request_frame(&huge), Err(ProtocolError::Truncated));
        // Payload longer than the message consumes.
        let mut padded = good.clone();
        padded.push(0);
        let len_fixed = (padded.len() - HEADER_LEN) as u32;
        padded[4..8].copy_from_slice(&len_fixed.to_le_bytes());
        assert_eq!(decode_request_frame(&padded), Err(ProtocolError::TrailingBytes(1)));
    }

    #[test]
    fn wrong_magic_version_opcode_are_typed() {
        let good = Request::Bye.encode();
        let mut bad = good.clone();
        bad[0] = 0xFF;
        assert!(matches!(decode_request_frame(&bad), Err(ProtocolError::BadMagic(_))));
        let mut bad = good.clone();
        bad[2] = 99;
        assert_eq!(decode_request_frame(&bad), Err(ProtocolError::UnsupportedVersion(99)));
        let mut bad = good.clone();
        bad[3] = 0x7F;
        assert_eq!(decode_request_frame(&bad), Err(ProtocolError::UnknownOpcode(0x7F)));
        // A response opcode is not a request.
        let welcome = Response::Welcome { session: 1, epoch: 1 }.encode();
        assert_eq!(decode_request_frame(&welcome), Err(ProtocolError::UnknownOpcode(OP_WELCOME)));
    }

    #[test]
    fn invalid_utf8_and_booleans_are_typed() {
        let mut bytes = Request::Query { text: "ab".into() }.encode();
        let n = bytes.len();
        bytes[n - 1] = 0xFF; // break the last UTF-8 byte
        assert_eq!(decode_request_frame(&bytes), Err(ProtocolError::BadUtf8));
        let mut bytes = Request::Publish { checked: false, facts: vec![] }.encode();
        bytes[HEADER_LEN] = 2; // boolean out of domain
        assert_eq!(decode_request_frame(&bytes), Err(ProtocolError::BadValue("boolean")));
    }

    #[test]
    fn streaming_read_matches_buffer_decode() {
        let msg = Request::Query { text: "(?x, isa, ?y)".into() };
        let mut stream = std::io::Cursor::new(msg.encode());
        assert_eq!(read_request(&mut stream).unwrap(), msg);
        // EOF mid-frame is an Io truncation, not a panic.
        let bytes = msg.encode();
        let mut torn = std::io::Cursor::new(bytes[..bytes.len() - 3].to_vec());
        assert_eq!(
            read_request(&mut torn),
            Err(ProtocolError::Io(std::io::ErrorKind::UnexpectedEof))
        );
    }
}
