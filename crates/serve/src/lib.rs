//! The network serving layer: many clients, one loosely structured
//! database.
//!
//! Everything below this crate is a library a single process embeds;
//! this crate turns it into a *service*. A [`Server`] fronts one
//! [`Backend`] — an in-memory [`loosedb_engine::SharedDatabase`], a
//! WAL-journaled [`loosedb_engine::DurableDatabase`] served through a
//! shared mirror, or a partitioned
//! [`loosedb_engine::ShardedDatabase`] — and exposes the full browsing
//! surface of the paper (navigate §4, query §2.7, probe §5, publish and
//! retract §6.1) over two faces:
//!
//! * a length-prefixed **binary protocol** ([`protocol`]) for sessions:
//!   a `Hello` handshake names the tenant, then each connection holds a
//!   real browse-layer session whose answer and plan caches stay warm
//!   across requests, exactly as embedded;
//! * a minimal **HTTP/JSON fallback** for scrapes and one-shot tools:
//!   `GET /metrics` (Prometheus text), `GET /healthz`, `POST /query`.
//!
//! Operational behavior is deliberately boring: admission control caps
//! handler threads and queues the excess in the listen backlog
//! (backpressure, not drops); per-tenant token buckets park over-rate
//! requests ([`quota`]); idle sessions are evicted; malformed or
//! adversarial frames are refused with typed errors before any
//! allocation trusts an attacker-supplied length; and shutdown drains
//! in-flight requests, then checkpoints whatever the backend journals.
//! Every step is observable through the `serve.*` registry metrics.
//!
//! [`client`] is the matching blocking client library; the
//! `loosedb-serve` binary wires a backend to a listener from the
//! command line.

pub mod client;
mod http;
pub mod protocol;
pub mod quota;
pub mod server;

pub use client::{Client, ClientError, RowsResult, WriteResult};
pub use protocol::{ErrorCode, ProtocolError, Request, Response};
pub use quota::{TenantQuota, TokenBucket};
pub use server::{Backend, ServeConfig, Server, SessionKind};
