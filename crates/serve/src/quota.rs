//! Per-tenant admission quotas: answer-size budgets and a blocking
//! token-bucket rate limit.
//!
//! The serving layer never *drops* an over-quota request — it applies
//! backpressure. A tenant that exhausts its bucket has its next request
//! parked in [`TokenBucket::acquire`] until a token refills, which in
//! turn stalls that tenant's connection (one request is in flight per
//! connection) without costing any other tenant a thread.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The quota a tenant operates under.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantQuota {
    /// Largest answer (rows) a single query may produce; enforced by the
    /// evaluator's `max_rows` budget, so an oversized answer is cut off
    /// *during* evaluation, not after materializing.
    pub max_rows: usize,
    /// Sustained request rate (tokens per second). `f64::INFINITY`
    /// disables rate limiting.
    pub ops_per_sec: f64,
    /// Bucket capacity: how many requests may burst ahead of the
    /// sustained rate.
    pub burst: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { max_rows: 1_000_000, ops_per_sec: f64::INFINITY, burst: 64 }
    }
}

struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// A thread-safe token bucket. `rate` tokens accrue per second up to
/// `burst`; [`TokenBucket::acquire`] takes one token, sleeping on a
/// condvar until one accrues. Fairness comes from the condvar's FIFO-ish
/// wakeup plus the refill notify; under heavy contention tenants make
/// progress at the configured rate, which is the contract — backpressure,
/// not starvation-free scheduling.
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
    refilled: Condvar,
}

impl TokenBucket {
    /// Creates a full bucket for a quota.
    pub fn new(quota: &TenantQuota) -> Self {
        let burst = f64::from(quota.burst.max(1));
        TokenBucket {
            rate: quota.ops_per_sec,
            burst,
            state: Mutex::new(BucketState { tokens: burst, last_refill: Instant::now() }),
            refilled: Condvar::new(),
        }
    }

    fn refill(&self, state: &mut BucketState) {
        let now = Instant::now();
        let accrued = now.duration_since(state.last_refill).as_secs_f64() * self.rate;
        if accrued > 0.0 {
            state.tokens = (state.tokens + accrued).min(self.burst);
            state.last_refill = now;
        }
    }

    /// Takes one token, blocking until one is available. Returns how long
    /// the caller was parked (zero when a token was ready).
    pub fn acquire(&self) -> Duration {
        if self.rate.is_infinite() {
            return Duration::ZERO;
        }
        let started = Instant::now();
        let mut state = self.state.lock().unwrap();
        loop {
            self.refill(&mut state);
            if state.tokens >= 1.0 {
                state.tokens -= 1.0;
                return started.elapsed();
            }
            // Sleep until the next token is due (capped so a clock hiccup
            // can't park a request for long), then re-check.
            let deficit = 1.0 - state.tokens;
            let wait = Duration::from_secs_f64((deficit / self.rate).min(0.25));
            state = self.refilled.wait_timeout(state, wait).unwrap().0;
        }
    }

    /// Takes one token only if one is available right now.
    pub fn try_acquire(&self) -> bool {
        if self.rate.is_infinite() {
            return true;
        }
        let mut state = self.state.lock().unwrap();
        self.refill(&mut state);
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_quota_never_blocks() {
        let bucket = TokenBucket::new(&TenantQuota::default());
        for _ in 0..10_000 {
            assert_eq!(bucket.acquire(), Duration::ZERO);
        }
    }

    #[test]
    fn burst_then_backpressure() {
        let quota = TenantQuota { max_rows: 100, ops_per_sec: 50.0, burst: 3 };
        let bucket = TokenBucket::new(&quota);
        // The burst drains without waiting…
        for _ in 0..3 {
            assert!(bucket.try_acquire());
        }
        // …then the very next acquire has to wait for a refill
        // (50 ops/s ⇒ ~20ms per token).
        let waited = bucket.acquire();
        assert!(waited >= Duration::from_millis(5), "waited {waited:?}");
    }

    #[test]
    fn tokens_refill_at_the_configured_rate() {
        let quota = TenantQuota { max_rows: 100, ops_per_sec: 1000.0, burst: 1 };
        let bucket = TokenBucket::new(&quota);
        assert!(bucket.try_acquire());
        assert!(!bucket.try_acquire(), "bucket of 1 must be empty");
        std::thread::sleep(Duration::from_millis(5));
        assert!(bucket.try_acquire(), "1000/s must refill within 5ms");
    }
}
