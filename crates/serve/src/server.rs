//! The multi-session server: admission control, per-connection session
//! loops, per-tenant quotas, idle eviction and graceful shutdown.
//!
//! # Architecture
//!
//! [`Server::start`] binds a listener and spawns one *acceptor* thread;
//! each accepted connection gets a handler thread of its own (the
//! engine's evaluation paths are synchronous and CPU-bound, so a thread
//! per connection is the honest model — there is nothing to multiplex).
//! Admission control happens **before** `accept`: when
//! [`ServeConfig::max_connections`] handlers are live the acceptor stops
//! accepting, excess connections queue in the listener backlog, and
//! clients feel latency instead of connection resets — backpressure, not
//! drops.
//!
//! The first bytes of a connection are sniffed: the binary protocol's
//! magic routes to the framed session loop, anything else to the
//! minimal HTTP responder ([`crate::http`], serving `/metrics`,
//! `/healthz` and `POST /query`).
//!
//! A binary session starts with a `Hello` handshake naming the tenant,
//! then holds a [`SharedSession`]/[`ShardedSession`] — with its
//! generation-keyed query cache and plan cache — for the connection's
//! lifetime, so repeated queries from one client hit warm caches exactly
//! as they would embedded. Reads poll with a short timeout: a silent
//! connection costs one wakeup per tick, an idle one past
//! [`ServeConfig::idle_timeout`] is evicted, and a half-sent frame
//! (slow-loris) is held in the frame buffer until the same idle clock
//! evicts it.
//!
//! Shutdown ([`Server::shutdown`]) flips one flag: the acceptor exits,
//! each handler finishes the request in flight, answers `Bye` and
//! returns, and once every thread is joined the backend is checkpointed
//! (journal-backed backends rotate their WAL into a fresh snapshot).

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use loosedb_browse::{SessionError, ShardedSession, SharedSession};
use loosedb_engine::{
    persist, ClosureError, DurableDatabase, DurableError, ShardedDatabase, SharedDatabase,
    TransactionError,
};
use loosedb_obs::Metrics;
use loosedb_query::EvalError;
use loosedb_store::io::StorageIo;
use loosedb_store::{EntityValue, Fact};
use parking_lot::Mutex;

use crate::http;
use crate::protocol::{
    decode_header, ErrorCode, Header, ProtocolError, Request, Response, HEADER_LEN, MAGIC,
};
use crate::quota::{TenantQuota, TokenBucket};

/// How often a blocked read wakes up to check the idle clock and the
/// stop flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Handler threads allowed at once; further connections wait in the
    /// listener backlog.
    pub max_connections: usize,
    /// A session silent this long is evicted.
    pub idle_timeout: Duration,
    /// Quota for tenants without an explicit entry.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides, keyed by the `Hello` tenant name.
    pub tenants: HashMap<String, TenantQuota>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 1024,
            idle_timeout: Duration::from_secs(60),
            default_quota: TenantQuota::default(),
            tenants: HashMap::new(),
        }
    }
}

/// The database a server fronts.
pub enum Backend {
    /// An in-process shared database (no durability).
    Shared(Arc<SharedDatabase>),
    /// A journaled database served through an in-memory shared mirror:
    /// writes go journal-first (WAL append, then the serving mirror
    /// publishes), reads never touch the journal lock.
    Durable {
        /// The journal: WAL, snapshots, checkpoints.
        journal: Box<Mutex<DurableDatabase<Box<dyn StorageIo>>>>,
        /// The serving mirror every session reads from.
        serving: Arc<SharedDatabase>,
    },
    /// A hash-partitioned database; sessions run scatter-gather reads.
    Sharded(Arc<ShardedDatabase>),
}

/// One connection's session: the same browse-layer object an embedded
/// caller would hold, so per-session answer and plan caches behave
/// identically served and embedded.
pub enum SessionKind {
    /// Session over a [`SharedDatabase`] (also the durable mirror).
    Shared(SharedSession),
    /// Scatter-gather session over a [`ShardedDatabase`].
    Sharded(ShardedSession),
}

/// A write refusal, mapped onto the wire error codes.
struct WriteErr {
    code: ErrorCode,
    message: String,
}

impl WriteErr {
    fn internal(e: impl std::fmt::Display) -> Self {
        WriteErr { code: ErrorCode::Internal, message: e.to_string() }
    }
}

impl From<TransactionError> for WriteErr {
    fn from(e: TransactionError) -> Self {
        WriteErr { code: ErrorCode::Integrity, message: e.to_string() }
    }
}

impl From<DurableError> for WriteErr {
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Transaction(t) => t.into(),
            other => WriteErr::internal(other),
        }
    }
}

impl Backend {
    /// Fronts an already-shared database.
    pub fn shared(db: Arc<SharedDatabase>) -> Self {
        Backend::Shared(db)
    }

    /// Fronts a sharded database.
    pub fn sharded(db: Arc<ShardedDatabase>) -> Self {
        Backend::Sharded(db)
    }

    /// Fronts a journaled database. The serving mirror is rebuilt from
    /// the journal's recovered image (an encode/decode round-trip, the
    /// same idiom replica promotion uses), after which journal and
    /// mirror apply every write in the same order and stay aligned —
    /// including their interners, so fact ids resolve identically in
    /// both.
    pub fn durable(
        journal: DurableDatabase<Box<dyn StorageIo>>,
    ) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        let image = persist::encode(journal.database_ref()).to_vec();
        let db = persist::decode(&image[..])?;
        let serving = Arc::new(SharedDatabase::new(db)?);
        Ok(Backend::Durable { journal: Box::new(Mutex::new(journal)), serving })
    }

    /// The metrics registry observations land in (the serving side's, for
    /// a durable backend).
    pub fn metrics(&self) -> &Arc<Metrics> {
        match self {
            Backend::Shared(db) => db.metrics(),
            Backend::Durable { serving, .. } => serving.metrics(),
            Backend::Sharded(db) => db.metrics(),
        }
    }

    /// The current epoch (summed across shards for a sharded backend, so
    /// it is monotone under every backend).
    pub fn epoch(&self) -> u64 {
        match self {
            Backend::Shared(db) => db.epoch(),
            Backend::Durable { serving, .. } => serving.epoch(),
            Backend::Sharded(db) => db.epochs().iter().sum(),
        }
    }

    pub(crate) fn new_session(&self, max_rows: usize) -> SessionKind {
        match self {
            Backend::Shared(db) => {
                let mut s = SharedSession::new(Arc::clone(db));
                s.probe_opts.eval.max_rows = max_rows;
                SessionKind::Shared(s)
            }
            Backend::Durable { serving, .. } => {
                let mut s = SharedSession::new(Arc::clone(serving));
                s.probe_opts.eval.max_rows = max_rows;
                SessionKind::Shared(s)
            }
            Backend::Sharded(db) => {
                let mut s = ShardedSession::new(Arc::clone(db));
                s.probe_opts.eval.max_rows = max_rows;
                SessionKind::Sharded(s)
            }
        }
    }

    /// Applies a batch of facts as writes. `checked` routes through the
    /// transactional path (integrity enforcement); unchecked facts land
    /// as one atomic generation where the backend supports it. Returns
    /// `(epoch after, facts newly applied)`.
    fn publish(
        &self,
        checked: bool,
        facts: &[(String, String, String)],
    ) -> Result<(u64, u64), WriteErr> {
        let applied = match self {
            Backend::Shared(db) => {
                if checked {
                    let mut n = 0;
                    for (s, r, t) in facts {
                        db.try_insert(value(s), value(r), value(t))?;
                        n += 1;
                    }
                    n
                } else {
                    // `add_incremental` keeps the closure warm, so the
                    // publish swap stays O(delta) — a plain `add` would
                    // mark the closure dirty and the publish would
                    // recompute the world on every served write.
                    db.write(|d| {
                        let before = d.base_len();
                        for (s, r, t) in facts {
                            d.add_incremental(value(s), value(r), value(t))?;
                        }
                        Ok::<u64, ClosureError>((d.base_len() - before) as u64)
                    })
                    .map_err(WriteErr::internal)?
                    .map_err(WriteErr::internal)?
                }
            }
            Backend::Durable { journal, serving } => {
                // Journal-first: every fact is WAL-appended (and, for the
                // checked path, integrity-validated against the journal's
                // own closure) before the serving mirror publishes it.
                let mut journal = journal.lock();
                let mut accepted = Vec::with_capacity(facts.len());
                for (s, r, t) in facts {
                    if checked {
                        journal.try_add(value(s), value(r), value(t))?;
                    } else {
                        journal.add(value(s), value(r), value(t)).map_err(WriteErr::internal)?;
                    }
                    accepted.push((s, r, t));
                }
                serving
                    .write(|d| {
                        let before = d.base_len();
                        for (s, r, t) in accepted {
                            d.add_incremental(value(s), value(r), value(t))?;
                        }
                        Ok::<u64, ClosureError>((d.base_len() - before) as u64)
                    })
                    .map_err(WriteErr::internal)?
                    .map_err(WriteErr::internal)?
            }
            Backend::Sharded(db) => {
                let mut n = 0;
                for (s, r, t) in facts {
                    if checked {
                        db.try_insert(value(s), value(r), value(t)).map_err(|e| WriteErr {
                            code: ErrorCode::Integrity,
                            message: e.to_string(),
                        })?;
                    } else {
                        db.insert(value(s), value(r), value(t)).map_err(WriteErr::internal)?;
                    }
                    n += 1;
                }
                n
            }
        };
        Ok((self.epoch(), applied))
    }

    /// Retracts one base fact by display names. A name no entity carries
    /// means the fact cannot exist: `applied` is 0, not an error.
    fn retract(&self, s: &str, r: &str, t: &str) -> Result<(u64, u64), WriteErr> {
        let fact = match self.resolve_fact(s, r, t) {
            Some(f) => f,
            None => return Ok((self.epoch(), 0)),
        };
        let removed = match self {
            Backend::Shared(db) => db.remove(&fact).map_err(WriteErr::internal)?,
            Backend::Durable { journal, serving } => {
                let on_disk = journal.lock().remove(&fact).map_err(WriteErr::internal)?;
                let in_memory = serving.remove(&fact).map_err(WriteErr::internal)?;
                on_disk || in_memory
            }
            Backend::Sharded(db) => db.remove(&fact).map_err(WriteErr::internal)?,
        };
        Ok((self.epoch(), u64::from(removed)))
    }

    fn resolve_fact(&self, s: &str, r: &str, t: &str) -> Option<Fact> {
        let lookup = |v: &EntityValue| match self {
            Backend::Shared(db) => db.snapshot().lookup(v),
            Backend::Durable { serving, .. } => serving.snapshot().lookup(v),
            Backend::Sharded(db) => db.snapshot().lookup(v),
        };
        Some(Fact::new(lookup(&value(s))?, lookup(&value(r))?, lookup(&value(t))?))
    }

    /// Flushes and snapshots whatever the backend journals (no-op for a
    /// purely in-memory backend).
    fn checkpoint(&self) -> Result<(), WriteErr> {
        match self {
            Backend::Shared(_) => Ok(()),
            Backend::Durable { journal, .. } => {
                journal.lock().checkpoint().map(|_| ()).map_err(WriteErr::internal)
            }
            Backend::Sharded(db) => db.checkpoint().map(|_| ()).map_err(WriteErr::internal),
        }
    }
}

/// Parses a display name into an [`EntityValue`]: integers and floats
/// stay numeric, everything else is a symbol (the REPL's convention).
pub(crate) fn value(text: &str) -> EntityValue {
    if let Ok(i) = text.parse::<i64>() {
        i.into()
    } else if let Ok(f) = text.parse::<f64>() {
        EntityValue::float(f)
    } else {
        EntityValue::symbol(text)
    }
}

/// Shared server state: everything the acceptor, the handlers and the
/// shutdown path need to agree on.
pub(crate) struct Inner {
    pub(crate) backend: Backend,
    pub(crate) config: ServeConfig,
    stop: AtomicBool,
    /// Live handler count, gating admission (std mutex: the vendored
    /// `parking_lot` carries no condvar).
    active: StdMutex<usize>,
    admitted: Condvar,
    next_session: AtomicU64,
    /// Live session count (the `serve.sessions` gauge mirrors it; the
    /// gauge alone has no atomic increment).
    sessions: AtomicU64,
    /// One token bucket per tenant, created on first handshake.
    buckets: Mutex<HashMap<String, Arc<TokenBucket>>>,
}

impl Inner {
    pub(crate) fn metrics(&self) -> &Arc<Metrics> {
        self.backend.metrics()
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.config.tenants.get(tenant).copied().unwrap_or(self.config.default_quota)
    }

    fn session_started(&self) {
        let now = self.sessions.fetch_add(1, Ordering::AcqRel) + 1;
        self.metrics().serve_sessions.set(now);
    }

    fn session_ended(&self) {
        let before = self.sessions.fetch_sub(1, Ordering::AcqRel);
        self.metrics().serve_sessions.set(before.saturating_sub(1));
    }

    pub(crate) fn bucket_for(&self, tenant: &str) -> Arc<TokenBucket> {
        let mut buckets = self.buckets.lock();
        match buckets.get(tenant) {
            Some(b) => Arc::clone(b),
            None => {
                let bucket = Arc::new(TokenBucket::new(&self.quota_for(tenant)));
                buckets.insert(tenant.to_string(), Arc::clone(&bucket));
                bucket
            }
        }
    }
}

/// A running server. Dropping it shuts it down gracefully.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the acceptor and returns immediately.
    pub fn start(backend: Backend, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            backend,
            config,
            stop: AtomicBool::new(false),
            active: StdMutex::new(0),
            admitted: Condvar::new(),
            next_session: AtomicU64::new(1),
            sessions: AtomicU64::new(0),
            buckets: Mutex::new(HashMap::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("loosedb-serve-accept".into())
                .spawn(move || accept_loop(listener, inner, handlers))?
        };
        Ok(Server { inner, local_addr, acceptor: Some(acceptor), handlers })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The metrics registry the server reports into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        self.inner.metrics()
    }

    /// Handler threads currently live.
    pub fn active_connections(&self) -> usize {
        *self.inner.active.lock().unwrap()
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish, join all threads, checkpoint the backend. Idempotent.
    pub fn shutdown(&mut self) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.admitted.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock());
        for h in handlers {
            let _ = h.join();
        }
        if self.inner.backend.checkpoint().is_ok() {
            self.inner.metrics().serve_shutdowns.inc();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<Inner>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if inner.stopping() {
            return;
        }
        // Admission gate: block (briefly, re-checking stop) until a
        // handler slot frees up. Connections beyond the gate queue in
        // the kernel's listen backlog — clients wait, nothing is
        // dropped.
        {
            let mut active = inner.active.lock().unwrap();
            while *active >= inner.config.max_connections && !inner.stopping() {
                active = inner.admitted.wait_timeout(active, POLL_TICK).unwrap().0;
            }
            if inner.stopping() {
                return;
            }
            *active += 1;
            inner.metrics().serve_connections.set(*active as u64);
        }
        let stream = loop {
            if inner.stopping() {
                release_slot(&inner);
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => break stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        };
        inner.metrics().serve_accepted.inc();
        let handler = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new().name("loosedb-serve-conn".into()).spawn(move || {
                handle_connection(&inner, stream);
                release_slot(&inner);
            })
        };
        match handler {
            Ok(h) => {
                let mut handlers = handlers.lock();
                // Reap finished handles so a long-lived server with many
                // short connections doesn't accumulate them.
                if handlers.len() >= 256 {
                    handlers.retain(|h| !h.is_finished());
                }
                handlers.push(h);
            }
            Err(_) => release_slot(&inner),
        }
    }
}

fn release_slot(inner: &Inner) {
    let mut active = inner.active.lock().unwrap();
    *active = active.saturating_sub(1);
    inner.metrics().serve_connections.set(*active as u64);
    inner.admitted.notify_one();
}

/// Sniffs the first two bytes and routes the connection: the binary
/// magic to the framed session loop, everything else to HTTP.
fn handle_connection(inner: &Inner, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let deadline = Instant::now() + inner.config.idle_timeout;
    let mut first = [0u8; 2];
    loop {
        if inner.stopping() || Instant::now() > deadline {
            return;
        }
        match stream.peek(&mut first) {
            Ok(n) if n >= 2 => break,
            Ok(0) => return, // closed before a single byte
            Ok(_) => std::thread::sleep(Duration::from_millis(1)),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
    if u16::from_le_bytes(first) == MAGIC {
        binary_session(inner, stream);
    } else {
        http::handle(inner, stream);
    }
}

/// Incrementally reassembles frames from a polled socket, keeping
/// partial frames buffered across read timeouts (a slow-loris client
/// neither breaks framing nor ties up anything but its own buffer).
struct FrameReader {
    buf: Vec<u8>,
}

enum ReadEvent {
    /// A complete frame: opcode and payload.
    Frame(u8, Vec<u8>),
    /// Nothing new this tick.
    Idle,
    /// Peer closed; `torn` if it hung up mid-frame.
    Closed { torn: bool },
    /// The byte stream is not a valid frame; the connection is beyond
    /// recovery (framing is lost) and must close.
    Malformed(ProtocolError),
}

impl FrameReader {
    fn new() -> Self {
        FrameReader { buf: Vec::new() }
    }

    fn header(&self) -> Option<Result<Header, ProtocolError>> {
        if self.buf.len() < HEADER_LEN {
            return None;
        }
        Some(decode_header(self.buf[..HEADER_LEN].try_into().expect("header")))
    }

    fn take_frame(&mut self) -> Option<ReadEvent> {
        let header = match self.header()? {
            Ok(h) => h,
            Err(e) => return Some(ReadEvent::Malformed(e)),
        };
        let total = HEADER_LEN + header.len as usize;
        if self.buf.len() < total {
            return None;
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Some(ReadEvent::Frame(header.opcode, payload))
    }

    fn poll(&mut self, stream: &mut TcpStream, metrics: &Metrics) -> ReadEvent {
        if let Some(event) = self.take_frame() {
            return event;
        }
        let mut tmp = [0u8; 8192];
        match stream.read(&mut tmp) {
            Ok(0) => ReadEvent::Closed { torn: !self.buf.is_empty() },
            Ok(n) => {
                metrics.serve_bytes_in.add(n as u64);
                self.buf.extend_from_slice(&tmp[..n]);
                self.take_frame().unwrap_or(ReadEvent::Idle)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                ReadEvent::Idle
            }
            Err(_) => ReadEvent::Closed { torn: true },
        }
    }
}

fn send(stream: &mut TcpStream, metrics: &Metrics, response: &Response) -> bool {
    let frame = response.encode();
    metrics.serve_bytes_out.add(frame.len() as u64);
    crate::protocol::write_frame(stream, &frame).is_ok()
}

/// The framed session loop: handshake, then one request at a time until
/// `Bye`, disconnect, idle eviction or shutdown.
fn binary_session(inner: &Inner, mut stream: TcpStream) {
    let metrics = Arc::clone(inner.metrics());
    let mut reader = FrameReader::new();
    let mut last_activity = Instant::now();

    // Handshake: the first frame must be Hello.
    let tenant = loop {
        if inner.stopping() {
            let _ = send(
                &mut stream,
                &metrics,
                &Response::Fail {
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                },
            );
            return;
        }
        if last_activity.elapsed() > inner.config.idle_timeout {
            metrics.serve_idle_evictions.inc();
            return;
        }
        match reader.poll(&mut stream, &metrics) {
            ReadEvent::Idle => continue,
            ReadEvent::Closed { torn } => {
                if torn {
                    metrics.serve_protocol_errors.inc();
                }
                return;
            }
            ReadEvent::Malformed(e) => {
                metrics.serve_protocol_errors.inc();
                let _ = send(
                    &mut stream,
                    &metrics,
                    &Response::Fail { code: ErrorCode::Malformed, message: e.to_string() },
                );
                return;
            }
            ReadEvent::Frame(opcode, payload) => match Request::decode(opcode, &payload) {
                Ok(Request::Hello { tenant }) => break tenant,
                Ok(_) => {
                    metrics.serve_protocol_errors.inc();
                    let _ = send(
                        &mut stream,
                        &metrics,
                        &Response::Fail {
                            code: ErrorCode::HandshakeRequired,
                            message: "first frame must be Hello".into(),
                        },
                    );
                    return;
                }
                Err(_) => {
                    metrics.serve_protocol_errors.inc();
                    return;
                }
            },
        }
    };

    let quota = inner.quota_for(&tenant);
    let bucket = inner.bucket_for(&tenant);
    let session_id = inner.next_session.fetch_add(1, Ordering::Relaxed);
    let mut session = inner.backend.new_session(quota.max_rows);
    inner.session_started();
    if !send(
        &mut stream,
        &metrics,
        &Response::Welcome { session: session_id, epoch: inner.backend.epoch() },
    ) {
        inner.session_ended();
        return;
    }
    last_activity = Instant::now();

    loop {
        if last_activity.elapsed() > inner.config.idle_timeout {
            metrics.serve_idle_evictions.inc();
            break;
        }
        let event = reader.poll(&mut stream, &metrics);
        match event {
            ReadEvent::Idle => {
                // Drain-then-leave on shutdown: any fully buffered frame
                // was already returned by poll; an idle tick under the
                // stop flag means nothing is in flight.
                if inner.stopping() {
                    let _ = send(&mut stream, &metrics, &Response::Bye);
                    break;
                }
            }
            ReadEvent::Closed { torn } => {
                if torn {
                    metrics.serve_protocol_errors.inc();
                }
                break;
            }
            ReadEvent::Malformed(e) => {
                metrics.serve_protocol_errors.inc();
                // Framing is lost: report why, then close — the stream
                // cannot be resynchronized.
                let _ = send(
                    &mut stream,
                    &metrics,
                    &Response::Fail { code: ErrorCode::Malformed, message: e.to_string() },
                );
                break;
            }
            ReadEvent::Frame(opcode, payload) => {
                last_activity = Instant::now();
                let request = match Request::decode(opcode, &payload) {
                    Ok(r) => r,
                    Err(_) => {
                        metrics.serve_protocol_errors.inc();
                        break;
                    }
                };
                if matches!(request, Request::Bye) {
                    let _ = send(&mut stream, &metrics, &Response::Bye);
                    break;
                }
                // Rate quota: park until the tenant's bucket refills
                // (backpressure — the connection stalls, nothing drops).
                let waited = bucket.acquire();
                if !waited.is_zero() {
                    metrics.serve_throttled.inc();
                    metrics.serve_throttle_ns.record_duration(waited);
                }
                let started = Instant::now();
                let response = dispatch(inner, &mut session, &request, &metrics);
                metrics.serve_requests.inc();
                metrics.serve_request_ns.record_duration(started.elapsed());
                if !send(&mut stream, &metrics, &response) {
                    break;
                }
            }
        }
    }
    inner.session_ended();
}

fn session_fail(metrics: &Metrics, e: &SessionError) -> Response {
    let (code, message) = match e {
        SessionError::Parse(p) => (ErrorCode::Parse, p.to_string()),
        SessionError::UnknownEntity(name) => {
            (ErrorCode::UnknownEntity, format!("unknown entity {name:?}"))
        }
        SessionError::Eval(EvalError::ResultTooLarge { limit, produced }) => {
            metrics.serve_rows_rejected.inc();
            (
                ErrorCode::TooManyRows,
                format!("answer exceeded the tenant budget of {limit} rows ({produced} produced)"),
            )
        }
        other => (ErrorCode::Internal, other.to_string()),
    };
    Response::Fail { code, message }
}

pub(crate) fn dispatch(
    inner: &Inner,
    session: &mut SessionKind,
    request: &Request,
    metrics: &Metrics,
) -> Response {
    match request {
        Request::Hello { .. } => Response::Fail {
            code: ErrorCode::Malformed,
            message: "session already established".into(),
        },
        Request::Bye => Response::Bye, // handled by the caller; kept total
        Request::Query { text } => match session {
            SessionKind::Shared(s) => match s.query(text) {
                Ok(answer) => Response::Rows {
                    epoch: s.epoch(),
                    names: answer.names.clone(),
                    rows: s.render_answer(&answer),
                },
                Err(e) => session_fail(metrics, &e),
            },
            SessionKind::Sharded(s) => match s.query(text) {
                Ok(answer) => Response::Rows {
                    epoch: s.epochs().iter().sum(),
                    names: answer.names.clone(),
                    rows: s.render_answer(&answer),
                },
                Err(e) => session_fail(metrics, &e),
            },
        },
        Request::Navigate { s, r, t } => {
            let table = match session {
                SessionKind::Shared(ses) => ses.navigate_parts(s, r, t),
                SessionKind::Sharded(ses) => ses.navigate_parts(s, r, t),
            };
            match table {
                Ok(table) => Response::Text { text: table.to_string() },
                Err(e) => session_fail(metrics, &e),
            }
        }
        Request::Probe { text } => match session {
            SessionKind::Shared(s) => match s.probe(text) {
                Ok(report) => Response::Text { text: s.render_probe(&report) },
                Err(e) => session_fail(metrics, &e),
            },
            SessionKind::Sharded(s) => match s.probe(text) {
                Ok(report) => Response::Text { text: s.render_probe(&report) },
                Err(e) => session_fail(metrics, &e),
            },
        },
        Request::Publish { checked, facts } => {
            if inner.stopping() {
                return Response::Fail {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; writes are refused".into(),
                };
            }
            match inner.backend.publish(*checked, facts) {
                Ok((epoch, applied)) => Response::Done { epoch, applied },
                Err(e) => Response::Fail { code: e.code, message: e.message },
            }
        }
        Request::Retract { s, r, t } => {
            if inner.stopping() {
                return Response::Fail {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; writes are refused".into(),
                };
            }
            match inner.backend.retract(s, r, t) {
                Ok((epoch, applied)) => Response::Done { epoch, applied },
                Err(e) => Response::Fail { code: e.code, message: e.message },
            }
        }
        Request::Metrics => {
            Response::Metrics { text: loosedb_obs::prometheus_text(metrics.registry()) }
        }
    }
}
