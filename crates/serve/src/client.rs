//! A blocking client for the binary protocol: the library the REPL's
//! `connect` mode, the load tests and E24 drive the server with.
//!
//! One [`Client`] is one server session — the handshake happens in
//! [`Client::connect`], and every call sends one request frame and
//! blocks for its response. Clients are cheap (a socket and two
//! integers); open one per thread for concurrency.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_response, write_frame, ErrorCode, ProtocolError, Request, Response};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The wire broke: transport error or malformed frame.
    Protocol(ProtocolError),
    /// The server answered `Fail`.
    Refused {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response kind the request cannot
    /// produce (a server bug, or a non-loosedb endpoint).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Refused { code, message } => write!(f, "refused ({code:?}): {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::from(e))
    }
}

/// A query answer as it crosses the wire: rendered rows, not entity ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowsResult {
    /// Epoch the answer was computed against.
    pub epoch: u64,
    /// Column display names.
    pub names: Vec<String>,
    /// Rendered rows.
    pub rows: Vec<Vec<String>>,
}

/// The result of a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteResult {
    /// Epoch after the write.
    pub epoch: u64,
    /// Facts newly applied.
    pub applied: u64,
}

/// A connected session.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    session: u64,
    epoch: u64,
}

impl Client {
    /// Connects and performs the `Hello` handshake as `tenant` (`""` for
    /// the default quota).
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client { writer, reader, session: 0, epoch: 0 };
        match client.call(&Request::Hello { tenant: tenant.into() })? {
            Response::Welcome { session, epoch } => {
                client.session = session;
                client.epoch = epoch;
                Ok(client)
            }
            Response::Fail { code, message } => Err(ClientError::Refused { code, message }),
            _ => Err(ClientError::Unexpected("handshake")),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The last epoch the server reported to this client.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One request, one response.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.encode())?;
        let response = read_response(&mut self.reader)?;
        match &response {
            Response::Rows { epoch, .. } | Response::Done { epoch, .. } => self.epoch = *epoch,
            Response::Welcome { epoch, .. } => self.epoch = *epoch,
            _ => {}
        }
        Ok(response)
    }

    fn refused(response: Response, wanted: &'static str) -> ClientError {
        match response {
            Response::Fail { code, message } => ClientError::Refused { code, message },
            _ => ClientError::Unexpected(wanted),
        }
    }

    /// Evaluates a standard query.
    pub fn query(&mut self, text: &str) -> Result<RowsResult, ClientError> {
        match self.call(&Request::Query { text: text.into() })? {
            Response::Rows { epoch, names, rows } => Ok(RowsResult { epoch, names, rows }),
            other => Err(Self::refused(other, "rows")),
        }
    }

    /// Renders a navigation table for a template (`"*"` = free).
    pub fn navigate(&mut self, s: &str, r: &str, t: &str) -> Result<String, ClientError> {
        let request = Request::Navigate { s: s.into(), r: r.into(), t: t.into() };
        match self.call(&request)? {
            Response::Text { text } => Ok(text),
            other => Err(Self::refused(other, "text")),
        }
    }

    /// Probes a query (§5), returning the rendered report.
    pub fn probe(&mut self, text: &str) -> Result<String, ClientError> {
        match self.call(&Request::Probe { text: text.into() })? {
            Response::Text { text } => Ok(text),
            other => Err(Self::refused(other, "text")),
        }
    }

    /// Publishes a batch of facts; `checked` enforces integrity.
    pub fn publish(
        &mut self,
        checked: bool,
        facts: Vec<(String, String, String)>,
    ) -> Result<WriteResult, ClientError> {
        match self.call(&Request::Publish { checked, facts })? {
            Response::Done { epoch, applied } => Ok(WriteResult { epoch, applied }),
            other => Err(Self::refused(other, "done")),
        }
    }

    /// Retracts one base fact by display names.
    pub fn retract(&mut self, s: &str, r: &str, t: &str) -> Result<WriteResult, ClientError> {
        let request = Request::Retract { s: s.into(), r: r.into(), t: t.into() };
        match self.call(&request)? {
            Response::Done { epoch, applied } => Ok(WriteResult { epoch, applied }),
            other => Err(Self::refused(other, "done")),
        }
    }

    /// Fetches the server's Prometheus exposition.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(Self::refused(other, "metrics")),
        }
    }

    /// Ends the session politely (the server also handles abrupt
    /// disconnects; `bye` just parts on good terms).
    pub fn bye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Bye)? {
            Response::Bye => Ok(()),
            other => Err(Self::refused(other, "bye")),
        }
    }
}
