//! A deliberately small HTTP/1.1 responder: the fallback face of the
//! server for clients that don't speak the binary protocol, and the
//! scrape surface for Prometheus.
//!
//! Routes:
//!
//! * `GET /metrics` — the registry in Prometheus text format 0.0.4.
//! * `GET /healthz` — `ok` while the server is up, `draining` once
//!   shutdown has begun (load balancers stop routing before the listener
//!   goes away).
//! * `POST /query` — body `{"query": "...", "tenant": "..."}` (tenant
//!   optional); answers `{"epoch": N, "names": [...], "rows": [[...]]}`
//!   or `{"error": {"code": "...", "message": "..."}}`.
//!
//! One request per connection (`Connection: close`): the HTTP face is
//! for scrapes and smoke tests, not for throughput — sustained clients
//! use the binary protocol, which keeps a session (and its caches)
//! alive across requests.
//!
//! Hand-rolled on purpose: the workspace vendors no HTTP stack, and the
//! subset needed here — one request line, a handful of headers, a
//! `Content-Length` body — is small enough that a dependency would cost
//! more than these ~100 lines. Limits are enforced while reading
//! (header block ≤ 16 KiB, body ≤ 1 MiB), so an adversarial client
//! cannot balloon memory through the HTTP face either.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::protocol::{ErrorCode, Request, Response};
use crate::server::Inner;

/// Largest accepted header block.
const MAX_HEAD: usize = 16 * 1024;

/// Largest accepted request body.
const MAX_BODY: usize = 1024 * 1024;

/// Handles one HTTP connection end to end.
pub(crate) fn handle(inner: &Inner, mut stream: TcpStream) {
    let metrics = inner.metrics();
    metrics.serve_http_requests.inc();
    let deadline = Instant::now() + inner.config.idle_timeout;

    // Read the head (request line + headers) up to the blank line.
    let mut raw = Vec::new();
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&raw) {
            break pos;
        }
        if raw.len() > MAX_HEAD {
            respond(&mut stream, inner, 431, "text/plain", "header block too large\n");
            return;
        }
        if inner.stopping() || Instant::now() > deadline {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => {
                metrics.serve_bytes_in.add(n as u64);
                raw.extend_from_slice(&tmp[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    };

    let Ok(head) = std::str::from_utf8(&raw[..head_end]) else {
        metrics.serve_protocol_errors.inc();
        respond(&mut stream, inner, 400, "text/plain", "malformed request\n");
        return;
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        metrics.serve_protocol_errors.inc();
        respond(&mut stream, inner, 400, "text/plain", "malformed request line\n");
        return;
    };
    let content_length: usize = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        respond(&mut stream, inner, 413, "text/plain", "body too large\n");
        return;
    }

    // The body: whatever followed the blank line, then the wire.
    let mut body = raw[head_end + 4..].to_vec();
    while body.len() < content_length {
        if inner.stopping() || Instant::now() > deadline {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => {
                metrics.serve_bytes_in.add(n as u64);
                body.extend_from_slice(&tmp[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }

    match (method, path) {
        ("GET", "/metrics") => {
            let text = loosedb_obs::prometheus_text(metrics.registry());
            respond(&mut stream, inner, 200, "text/plain; version=0.0.4", &text);
        }
        ("GET", "/healthz") => {
            let body = if inner.stopping() { "draining\n" } else { "ok\n" };
            respond(
                &mut stream,
                inner,
                if inner.stopping() { 503 } else { 200 },
                "text/plain",
                body,
            );
        }
        ("POST", "/query") => {
            let Ok(body) = std::str::from_utf8(&body) else {
                respond(&mut stream, inner, 400, "text/plain", "body is not UTF-8\n");
                return;
            };
            let Some(query) = json_string_field(body, "query") else {
                respond(&mut stream, inner, 400, "application/json",
                    "{\"error\":{\"code\":\"malformed\",\"message\":\"missing \\\"query\\\" field\"}}\n");
                return;
            };
            let tenant = json_string_field(body, "tenant").unwrap_or_default();
            run_query(inner, &mut stream, &tenant, &query);
        }
        _ => respond(&mut stream, inner, 404, "text/plain", "not found\n"),
    }
}

/// Runs one query through a throwaway session under the tenant's quota
/// and answers JSON.
fn run_query(inner: &Inner, stream: &mut TcpStream, tenant: &str, query: &str) {
    let metrics = std::sync::Arc::clone(inner.metrics());
    let quota = inner.config.tenants.get(tenant).copied().unwrap_or(inner.config.default_quota);
    let waited = inner.bucket_for(tenant).acquire();
    if !waited.is_zero() {
        metrics.serve_throttled.inc();
        metrics.serve_throttle_ns.record_duration(waited);
    }
    let mut session = inner.backend.new_session(quota.max_rows);
    let started = Instant::now();
    let response = crate::server::dispatch(
        inner,
        &mut session,
        &Request::Query { text: query.into() },
        &metrics,
    );
    metrics.serve_requests.inc();
    metrics.serve_request_ns.record_duration(started.elapsed());
    match response {
        Response::Rows { epoch, names, rows } => {
            let mut out = String::with_capacity(256);
            out.push_str(&format!("{{\"epoch\":{epoch},\"names\":["));
            for (i, n) in names.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(n));
            }
            out.push_str("],\"rows\":[");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, cell) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(cell));
                }
                out.push(']');
            }
            out.push_str("]}\n");
            respond(stream, inner, 200, "application/json", &out);
        }
        Response::Fail { code, message } => {
            let status = match code {
                ErrorCode::Parse | ErrorCode::UnknownEntity | ErrorCode::Malformed => 400,
                ErrorCode::TooManyRows => 422,
                ErrorCode::ShuttingDown => 503,
                _ => 500,
            };
            let body = format!(
                "{{\"error\":{{\"code\":{},\"message\":{}}}}}\n",
                json_string(&format!("{code:?}")),
                json_string(&message),
            );
            respond(stream, inner, status, "application/json", &body);
        }
        _ => respond(stream, inner, 500, "text/plain", "unexpected response\n"),
    }
}

fn respond(stream: &mut TcpStream, inner: &Inner, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    inner.metrics().serve_bytes_out.add((head.len() + body.len()) as u64);
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Position of the `\r\n\r\n` separating head from body.
fn find_blank_line(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Extracts a top-level string field from a JSON object without a JSON
/// stack: scan for `"key"`, a colon, then decode one JSON string.
/// Handles the escapes a query text can contain; nested objects with a
/// same-named field would confuse it, which the two fixed single-level
/// bodies this server accepts never have.
fn json_string_field(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let mut chars = rest.strip_prefix('"')?.chars();
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000C}'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Encodes a Rust string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_extraction_round_trips_escapes() {
        let body = r#"{"tenant": "acme", "query": "Q(?x) := (?x, \"EARNS\", ?y)\n"}"#;
        assert_eq!(json_string_field(body, "tenant").as_deref(), Some("acme"));
        assert_eq!(
            json_string_field(body, "query").as_deref(),
            Some("Q(?x) := (?x, \"EARNS\", ?y)\n")
        );
        assert_eq!(json_string_field(body, "missing"), None);
        assert_eq!(json_string_field(r#"{"q": "A"}"#, "q").as_deref(), Some("A"));
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
