//! Malicious and broken clients must cost the server a counter, never
//! its health: mid-frame disconnects, slow-loris trickles, attacker
//! length fields and quota-exhausted tenants each leave a visible
//! `/metrics` delta while other sessions keep working.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use loosedb_datagen::music_world;
use loosedb_engine::SharedDatabase;
use loosedb_serve::protocol::{read_response, write_frame, Request, Response};
use loosedb_serve::{Backend, Client, ErrorCode, ServeConfig, Server, TenantQuota};

fn start(configure: impl FnOnce(&mut ServeConfig)) -> Server {
    let shared = Arc::new(SharedDatabase::new(music_world()).expect("closure"));
    let mut config = ServeConfig::default();
    configure(&mut config);
    Server::start(Backend::shared(shared), config).expect("bind")
}

/// Scrapes one counter off the HTTP `/metrics` face — the same numbers
/// an operator's Prometheus would see.
fn scrape(addr: std::net::SocketAddr, name: &str) -> u64 {
    let mut stream = TcpStream::connect(addr).expect("connect for scrape");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read scrape");
    assert!(body.starts_with("HTTP/1.1 200"), "metrics scrape failed: {body}");
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} not exported:\n{body}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not integral"))
}

/// Polls a scrape until the predicate holds (metrics lag the event by a
/// handler tick or two).
fn wait_for_metric(addr: std::net::SocketAddr, name: &str, predicate: impl Fn(u64) -> bool) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let v = scrape(addr, name);
        if predicate(v) {
            return v;
        }
        assert!(Instant::now() < deadline, "{name} stuck at {v}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A client that hangs up halfway through a frame is a protocol error,
/// not a wedge: the handler notices the torn stream and the slot frees.
#[test]
fn mid_frame_disconnect_is_counted_and_released() {
    let mut server = start(|_| {});
    let addr = server.local_addr();
    let before = scrape(addr, "loosedb_serve_protocol_errors");

    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, &Request::Hello { tenant: String::new() }.encode()).expect("hello");
    assert!(matches!(read_response(&mut stream).expect("welcome"), Response::Welcome { .. }));
    // Send half a Query frame, then vanish.
    let frame = Request::Query { text: "(JOHN, LIKES, ?what)".into() }.encode();
    stream.write_all(&frame[..frame.len() / 2]).expect("half frame");
    drop(stream);

    wait_for_metric(addr, "loosedb_serve_protocol_errors", |v| v > before);
    // The server still serves: a well-behaved client connects and queries.
    let mut client = Client::connect(addr, "").expect("connect after abuse");
    assert!(!client.query("(JOHN, LIKES, ?what)").expect("query").rows.is_empty());
    server.shutdown();
}

/// A slow-loris client trickling bytes below the frame rate is evicted
/// by the idle clock; its half-frame buffer never grows past the bytes
/// it actually sent.
#[test]
fn slow_loris_is_evicted_by_the_idle_clock() {
    let mut server = start(|c| c.idle_timeout = Duration::from_millis(300));
    let addr = server.local_addr();
    let before = scrape(addr, "loosedb_serve_idle_evictions");

    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, &Request::Hello { tenant: String::new() }.encode()).expect("hello");
    assert!(matches!(read_response(&mut stream).expect("welcome"), Response::Welcome { .. }));
    // Trickle a frame header one byte at a time, slower than the idle
    // clock: complete frames are what reset it, so this never does.
    let frame = Request::Metrics.encode();
    for byte in frame.iter().take(6) {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            break; // evicted mid-trickle: exactly the point
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    wait_for_metric(addr, "loosedb_serve_idle_evictions", |v| v > before);
    server.shutdown();
}

/// A header claiming a 4 GiB payload is refused at the header — a typed
/// `Malformed` failure and a closed connection, with no allocation
/// trusting the attacker's length.
#[test]
fn four_gib_length_field_is_refused_before_allocation() {
    let mut server = start(|_| {});
    let addr = server.local_addr();
    let before = scrape(addr, "loosedb_serve_protocol_errors");

    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, &Request::Hello { tenant: String::new() }.encode()).expect("hello");
    assert!(matches!(read_response(&mut stream).expect("welcome"), Response::Welcome { .. }));
    let mut header = Request::Metrics.encode()[..8].to_vec();
    header[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&header).expect("attack header");
    match read_response(&mut stream).expect("refusal") {
        Response::Fail { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Fail, got {other:?}"),
    }
    // The connection is closed behind the refusal…
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty(), "no further frames after a framing loss");
    // …and the error is visible to operators.
    wait_for_metric(addr, "loosedb_serve_protocol_errors", |v| v > before);
    server.shutdown();
}

/// A frame that is not a Hello before the handshake is refused with
/// `HandshakeRequired`.
#[test]
fn handshake_is_mandatory() {
    let mut server = start(|_| {});
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, &Request::Metrics.encode()).expect("premature request");
    match read_response(&mut stream).expect("refusal") {
        Response::Fail { code, .. } => assert_eq!(code, ErrorCode::HandshakeRequired),
        other => panic!("expected Fail, got {other:?}"),
    }
    server.shutdown();
}

/// An over-rate tenant is *slowed*, never dropped: every request still
/// answers, the throttle counters rise, and the default tenant is not
/// taxed for its neighbor's appetite.
#[test]
fn quota_exhausted_tenant_backpressures_without_drops() {
    let mut server = start(|c| {
        c.tenants.insert(
            "greedy".into(),
            TenantQuota { max_rows: 1_000_000, ops_per_sec: 50.0, burst: 2 },
        );
    });
    let addr = server.local_addr();
    let before = scrape(addr, "loosedb_serve_throttled");

    let mut greedy = Client::connect(addr, "greedy").expect("connect greedy");
    let started = Instant::now();
    for _ in 0..8 {
        // Burst 2 at 50 ops/s: requests 3.. must each wait ~20ms. All
        // of them succeed.
        assert!(!greedy.query("(JOHN, LIKES, ?what)").expect("query").rows.is_empty());
    }
    let elapsed = started.elapsed();
    assert!(elapsed >= Duration::from_millis(60), "no backpressure felt: {elapsed:?}");
    let throttled = wait_for_metric(addr, "loosedb_serve_throttled", |v| v > before);
    assert!(throttled - before >= 3, "throttle counter barely moved: {throttled}");

    // An untaxed tenant on the same server is not slowed.
    let mut polite = Client::connect(addr, "").expect("connect default");
    let started = Instant::now();
    for _ in 0..8 {
        polite.query("(JOHN, LIKES, ?what)").expect("query");
    }
    assert!(started.elapsed() < Duration::from_millis(500), "default tenant was taxed");
    server.shutdown();
}

/// Tenants past the answer-size budget get a typed `TooManyRows`
/// refusal (cut off during evaluation), and the rejection is counted.
#[test]
fn row_budget_is_enforced_per_tenant() {
    let mut server = start(|c| {
        c.tenants.insert(
            "tiny".into(),
            TenantQuota { max_rows: 1, ops_per_sec: f64::INFINITY, burst: 8 },
        );
    });
    let addr = server.local_addr();
    let before = scrape(addr, "loosedb_serve_rows_rejected");

    let mut tiny = Client::connect(addr, "tiny").expect("connect tiny");
    let err = tiny.query("(JOHN, LIKES, ?what)").expect_err("budget of 1 must refuse");
    match err {
        loosedb_serve::ClientError::Refused { code, .. } => {
            assert_eq!(code, ErrorCode::TooManyRows)
        }
        other => panic!("expected refusal, got {other}"),
    }
    wait_for_metric(addr, "loosedb_serve_rows_rejected", |v| v > before);

    // The same query is fine under the default budget.
    let mut roomy = Client::connect(addr, "").expect("connect default");
    assert!(!roomy.query("(JOHN, LIKES, ?what)").expect("query").rows.is_empty());
    server.shutdown();
}

/// Non-protocol bytes route to the HTTP face and get an HTTP error, not
/// a hung connection.
#[test]
fn garbage_bytes_get_an_http_answer() {
    let mut server = start(|_| {});
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"EHLO gibberish\r\n\r\n").expect("garbage");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    assert!(reply.starts_with("HTTP/1.1 404"), "unexpected reply: {reply}");
    server.shutdown();
}
