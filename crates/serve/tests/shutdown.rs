//! Graceful shutdown under write pressure: stopping a journal-backed
//! server while publishes are in flight must drain cleanly, checkpoint,
//! and leave a state a restarted server recovers exactly — every
//! acknowledged write present, nothing invented — even through a
//! simulated power cut right after the shutdown returns.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use loosedb_engine::{DurableDatabase, SyncPolicy};
use loosedb_serve::{Backend, Client, ClientError, ErrorCode, ServeConfig, Server};
use loosedb_store::io::{MemIo, StorageIo};

const WRITERS: usize = 4;

fn open_journal(io: &Arc<MemIo>) -> DurableDatabase<Box<dyn StorageIo>> {
    let boxed: Box<dyn StorageIo> = Box::new(Arc::clone(io));
    DurableDatabase::open_with(boxed, "db", SyncPolicy::EveryN(8)).expect("open journal")
}

#[test]
fn shutdown_under_write_pressure_checkpoints_and_recovers() {
    let io = Arc::new(MemIo::new());

    // Seed a small world through the journal, then serve it.
    let mut journal = open_journal(&io);
    journal.add("JOHN", "isa", "EMPLOYEE").expect("seed");
    journal.add("JOHN", "LIKES", "MOZART").expect("seed");
    let backend = Backend::durable(journal).expect("mirror");
    let mut server = Server::start(backend, ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let metrics = Arc::clone(server.metrics());

    // Writers hammer publishes until the server turns them away. Facts
    // the server *acknowledged* (a `Done` with `applied == 1`) form the
    // oracle: each must survive recovery.
    let acked: Arc<Mutex<BTreeSet<(usize, usize)>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let stop_writers = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let acked = Arc::clone(&acked);
            let stop_writers = Arc::clone(&stop_writers);
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr, "") {
                    Ok(c) => c,
                    Err(_) => return, // raced the shutdown entirely
                };
                for i in 0.. {
                    if stop_writers.load(Ordering::Relaxed) && i > 0 {
                        break;
                    }
                    let fact = (format!("WRITER-{t}"), "PUBLISHED".into(), format!("ITEM-{t}-{i}"));
                    match client.publish(false, vec![fact]) {
                        Ok(done) => {
                            assert_eq!(done.applied, 1);
                            acked.lock().unwrap().insert((t, i));
                        }
                        // The drain in action: refused with a typed
                        // ShuttingDown, answered `Bye`, or the socket
                        // closed — all are orderly ends, none lose an
                        // *acknowledged* write.
                        Err(ClientError::Refused { code, .. }) => {
                            assert_eq!(code, ErrorCode::ShuttingDown);
                            break;
                        }
                        Err(_) => break,
                    }
                }
            })
        })
        .collect();

    // Let the mix build up real in-flight traffic, then pull the plug.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    assert_eq!(server.active_connections(), 0, "handlers must be drained");
    assert_eq!(metrics.serve_shutdowns.get(), 1, "exactly one clean shutdown");
    stop_writers.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer thread");
    }
    let acked = Arc::try_unwrap(acked).expect("writers joined").into_inner().unwrap();
    assert!(!acked.is_empty(), "the mix never landed a write; the test proved nothing");

    // Power cut after shutdown: the checkpoint was fsynced, so dropping
    // every unsynced byte (the crash-sweep pessimism) must lose nothing.
    io.crash();

    // Recover. A clean shutdown means the snapshot carries everything:
    // no WAL tail to replay.
    let recovered = open_journal(&io);
    assert!(recovered.recovery().snapshot_loaded, "checkpoint snapshot must load");
    assert_eq!(recovered.recovery().wal_ops_applied, 0, "clean checkpoint leaves no WAL tail");
    assert!(!recovered.recovery().wal_tail_truncated, "no torn WAL after graceful shutdown");

    // Serve the recovered journal and compare against the oracle.
    let backend = Backend::durable(recovered).expect("mirror after recovery");
    let mut server = Server::start(backend, ServeConfig::default()).expect("rebind");
    let mut client = Client::connect(server.local_addr(), "").expect("connect recovered");

    let seed = client.query("(JOHN, LIKES, ?what)").expect("seed survives");
    assert_eq!(seed.rows, vec![vec!["MOZART".to_string()]]);

    let survived: BTreeSet<Vec<String>> = client
        .query("(?who, PUBLISHED, ?item)")
        .expect("published facts query")
        .rows
        .into_iter()
        .collect();
    for &(t, i) in &acked {
        let row = vec![format!("WRITER-{t}"), format!("ITEM-{t}-{i}")];
        assert!(survived.contains(&row), "acknowledged write WRITER-{t}/ITEM-{t}-{i} lost");
    }
    // Nothing invented either: every surviving fact is one a writer sent
    // (acknowledged, or journaled just before the drain refused its ack).
    for row in &survived {
        assert!(row[0].starts_with("WRITER-"), "unexpected fact {row:?}");
        assert!(row[1].starts_with("ITEM-"), "unexpected fact {row:?}");
    }
    server.shutdown();
}

/// Shutdown is idempotent and a server with no traffic checkpoints too.
#[test]
fn quiet_shutdown_is_idempotent() {
    let io = Arc::new(MemIo::new());
    let mut journal = open_journal(&io);
    journal.add("A", "isa", "B").expect("seed");
    let backend = Backend::durable(journal).expect("mirror");
    let mut server = Server::start(backend, ServeConfig::default()).expect("bind");
    let metrics = Arc::clone(server.metrics());
    server.shutdown();
    server.shutdown(); // second call is a no-op
    assert_eq!(metrics.serve_shutdowns.get(), 1);

    io.crash();
    let recovered = open_journal(&io);
    assert!(recovered.recovery().snapshot_loaded);
    assert_eq!(recovered.database_ref().base_len(), 1);
}
