//! Wire-protocol properties: every value round-trips through its frame,
//! and no byte sequence — random, mutated or from the checked-in fuzz
//! corpus — can make the decoder panic or allocate past its limits.
//!
//! The corpus under `tests/corpus/` is the regression side of the same
//! coin: frames that once mattered (valid exemplars of every opcode plus
//! adversarial shapes) are kept on disk and re-decoded on every run.
//! `bad_*.bin` must fail cleanly; `req_*.bin` / `resp_*.bin` must decode
//! to exactly the value they were written from. Regenerate with
//! `cargo test -p loosedb-serve --test protocol_proptest -- --ignored`.

use proptest::prelude::*;

use loosedb_serve::protocol::{
    decode_header, decode_request_frame, decode_response_frame, ErrorCode, Request, Response,
    HEADER_LEN, MAX_PAYLOAD,
};

/// Text exercising the full escape surface: spaces, punctuation a query
/// uses, quotes, backslashes and newlines.
const TEXT: &str = r#"[a-zA-Z0-9 #?:=(),."\\_-]{0,48}"#;

fn arb_error_code(tag: u8) -> ErrorCode {
    match tag % 8 {
        0 => ErrorCode::Parse,
        1 => ErrorCode::UnknownEntity,
        2 => ErrorCode::TooManyRows,
        3 => ErrorCode::Integrity,
        4 => ErrorCode::Malformed,
        5 => ErrorCode::ShuttingDown,
        6 => ErrorCode::HandshakeRequired,
        _ => ErrorCode::Internal,
    }
}

fn arb_request(tag: u8, a: String, b: String, c: String, flag: bool, n: u64) -> Request {
    match tag % 8 {
        0 => Request::Hello { tenant: a },
        1 => Request::Query { text: a },
        2 => Request::Navigate { s: a, r: b, t: c },
        3 => Request::Probe { text: a },
        4 => {
            let facts = (0..(n % 5)).map(|i| (format!("{a}{i}"), b.clone(), c.clone())).collect();
            Request::Publish { checked: flag, facts }
        }
        5 => Request::Retract { s: a, r: b, t: c },
        6 => Request::Metrics,
        _ => Request::Bye,
    }
}

fn arb_response(tag: u8, a: String, b: String, flag: bool, n: u64) -> Response {
    match tag % 7 {
        0 => Response::Welcome { session: n, epoch: n.wrapping_mul(3) },
        1 => {
            let names = vec![a.clone(), b.clone()];
            let rows = (0..(n % 4)).map(|i| vec![format!("{a}{i}"), b.clone()]).collect();
            Response::Rows { epoch: n, names, rows }
        }
        2 => Response::Text { text: a },
        3 => Response::Done { epoch: n, applied: u64::from(flag) },
        4 => Response::Metrics { text: a },
        5 => Response::Fail { code: arb_error_code(tag.wrapping_mul(31)), message: b },
        _ => Response::Bye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for every request shape.
    #[test]
    fn request_round_trips(
        tag in any::<u8>(),
        a in TEXT,
        b in TEXT,
        c in TEXT,
        flag in any::<bool>(),
        n in 0u64..1000,
    ) {
        let request = arb_request(tag, a, b, c, flag, n);
        let frame = request.encode();
        prop_assert_eq!(decode_request_frame(&frame), Ok(request));
    }

    /// encode → decode is the identity for every response shape.
    #[test]
    fn response_round_trips(
        tag in any::<u8>(),
        a in TEXT,
        b in TEXT,
        flag in any::<bool>(),
        n in 0u64..1000,
    ) {
        let response = arb_response(tag, a, b, flag, n);
        let frame = response.encode();
        prop_assert_eq!(decode_response_frame(&frame), Ok(response));
    }

    /// Arbitrary bytes never panic either decoder — they decode or they
    /// return a typed error.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_request_frame(&bytes);
        let _ = decode_response_frame(&bytes);
        if bytes.len() >= HEADER_LEN {
            let head: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
            let _ = decode_header(&head);
        }
    }

    /// Any single-byte mutation of a valid frame decodes or errs cleanly;
    /// mutations that leave the frame intact must still round-trip.
    #[test]
    fn mutated_frames_never_panic(
        tag in any::<u8>(),
        a in TEXT,
        b in TEXT,
        c in TEXT,
        n in 0u64..100,
        pos in 0usize..4096,
        xor in 1u8..255,
    ) {
        let mut frame = arb_request(tag, a, b, c, false, n).encode();
        let pos = pos % frame.len();
        frame[pos] ^= xor;
        let _ = decode_request_frame(&frame);
    }

    /// Every strict prefix of a valid frame is an error, never a panic
    /// and never a bogus success.
    #[test]
    fn truncations_are_errors(
        tag in any::<u8>(),
        a in TEXT,
        b in TEXT,
        c in TEXT,
        n in 0u64..100,
        cut in 0usize..4096,
    ) {
        let frame = arb_request(tag, a, b, c, true, n).encode();
        let cut = cut % frame.len();
        prop_assert!(decode_request_frame(&frame[..cut]).is_err());
    }

    /// A length field past `MAX_PAYLOAD` is refused at the header — the
    /// decoder must not trust it enough to allocate.
    #[test]
    fn oversized_lengths_are_refused(extra in 0u32..u32::MAX - MAX_PAYLOAD) {
        let mut frame = Request::Metrics.encode();
        let len = (MAX_PAYLOAD + 1).saturating_add(extra % (u32::MAX - MAX_PAYLOAD));
        frame[4..8].copy_from_slice(&len.to_le_bytes());
        let head: [u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();
        prop_assert!(decode_header(&head).is_err());
    }

    /// Trailing garbage after a well-formed payload is refused: frames
    /// are exact, not "at least".
    #[test]
    fn trailing_bytes_are_refused(
        a in TEXT,
        junk in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut frame = Request::Query { text: a }.encode();
        let grown = (frame.len() - HEADER_LEN + junk.len()) as u32;
        frame.extend_from_slice(&junk);
        frame[4..8].copy_from_slice(&grown.to_le_bytes());
        prop_assert!(decode_request_frame(&frame).is_err());
    }
}

// ---------------------------------------------------------------------
// The checked-in corpus.

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The valid exemplars: one request per opcode, one response per opcode.
fn corpus_requests() -> Vec<(&'static str, Request)> {
    vec![
        ("req_hello", Request::Hello { tenant: "acme".into() }),
        ("req_query", Request::Query { text: "(?who, EARNS, SALARY)".into() }),
        ("req_navigate", Request::Navigate { s: "JOHN".into(), r: "*".into(), t: "*".into() }),
        ("req_probe", Request::Probe { text: "(JOHN, EARNS, 40000)".into() }),
        (
            "req_publish",
            Request::Publish {
                checked: true,
                facts: vec![("JOHN".into(), "EARNS".into(), "40000".into())],
            },
        ),
        (
            "req_retract",
            Request::Retract { s: "JOHN".into(), r: "EARNS".into(), t: "40000".into() },
        ),
        ("req_metrics", Request::Metrics),
        ("req_bye", Request::Bye),
    ]
}

fn corpus_responses() -> Vec<(&'static str, Response)> {
    vec![
        ("resp_welcome", Response::Welcome { session: 7, epoch: 42 }),
        (
            "resp_rows",
            Response::Rows {
                epoch: 42,
                names: vec!["who".into()],
                rows: vec![vec!["JOHN".into()], vec!["EMPLOYEE".into()]],
            },
        ),
        ("resp_text", Response::Text { text: "JOHN | EARNS | SALARY".into() }),
        ("resp_done", Response::Done { epoch: 43, applied: 1 }),
        ("resp_metrics", Response::Metrics { text: "# TYPE serve_requests counter\n".into() }),
        (
            "resp_fail",
            Response::Fail { code: ErrorCode::TooManyRows, message: "budget exceeded".into() },
        ),
        ("resp_bye", Response::Bye),
    ]
}

/// The adversarial shapes, as raw bytes.
fn corpus_adversarial() -> Vec<(&'static str, Vec<u8>)> {
    let valid = Request::Query { text: "(?x, isa, ?y)".into() }.encode();
    let mut bad_magic = valid.clone();
    bad_magic[0] ^= 0xFF;
    let mut bad_version = valid.clone();
    bad_version[2] = 99;
    let mut bad_opcode = valid.clone();
    bad_opcode[3] = 0x7F;
    let mut four_gib = valid.clone();
    four_gib[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    let truncated = valid[..valid.len() / 2].to_vec();
    let mut trailing = valid.clone();
    let grown = (trailing.len() - HEADER_LEN + 4) as u32;
    trailing.extend_from_slice(b"junk");
    trailing[4..8].copy_from_slice(&grown.to_le_bytes());
    let mut bad_utf8 = Request::Query { text: "ab".into() }.encode();
    let at = bad_utf8.len() - 2;
    bad_utf8[at..].copy_from_slice(&[0xFF, 0xFE]);
    vec![
        ("bad_magic", bad_magic),
        ("bad_version", bad_version),
        ("bad_opcode", bad_opcode),
        ("bad_len_4gib", four_gib),
        ("bad_truncated", truncated),
        ("bad_trailing", trailing),
        ("bad_utf8", bad_utf8),
        ("bad_empty", Vec::new()),
        ("bad_header_only", valid[..HEADER_LEN].to_vec()),
    ]
}

/// Every corpus file decodes to exactly what it was written from (or
/// fails cleanly, for the `bad_*` shapes). Catches any accidental wire
/// format change: a frame written by yesterday's encoder must keep
/// decoding forever.
#[test]
fn corpus_is_stable() {
    let dir = corpus_dir();
    for (name, request) in corpus_requests() {
        let bytes = std::fs::read(dir.join(format!("{name}.bin")))
            .unwrap_or_else(|e| panic!("corpus file {name}.bin missing: {e}"));
        assert_eq!(decode_request_frame(&bytes), Ok(request.clone()), "{name}");
        assert_eq!(bytes, request.encode(), "{name}: encoder drifted from corpus");
    }
    for (name, response) in corpus_responses() {
        let bytes = std::fs::read(dir.join(format!("{name}.bin")))
            .unwrap_or_else(|e| panic!("corpus file {name}.bin missing: {e}"));
        assert_eq!(decode_response_frame(&bytes), Ok(response.clone()), "{name}");
        assert_eq!(bytes, response.encode(), "{name}: encoder drifted from corpus");
    }
    for (name, bytes) in corpus_adversarial() {
        let on_disk = std::fs::read(dir.join(format!("{name}.bin")))
            .unwrap_or_else(|e| panic!("corpus file {name}.bin missing: {e}"));
        assert_eq!(on_disk, bytes, "{name}: adversarial corpus drifted");
        assert!(decode_request_frame(&on_disk).is_err(), "{name} must not decode");
    }
    // Nothing unexpected lives in the corpus: every file is accounted for.
    let known: std::collections::BTreeSet<String> = corpus_requests()
        .iter()
        .map(|(n, _)| format!("{n}.bin"))
        .chain(corpus_responses().iter().map(|(n, _)| format!("{n}.bin")))
        .chain(corpus_adversarial().iter().map(|(n, _)| format!("{n}.bin")))
        .collect();
    for entry in std::fs::read_dir(&dir).expect("corpus dir") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(known.contains(&name), "unknown corpus file {name}");
    }
}

/// Regenerates the corpus in place. Ignored by default; run explicitly
/// after an intentional wire change, then commit the diff.
#[test]
#[ignore]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, request) in corpus_requests() {
        std::fs::write(dir.join(format!("{name}.bin")), request.encode()).unwrap();
    }
    for (name, response) in corpus_responses() {
        std::fs::write(dir.join(format!("{name}.bin")), response.encode()).unwrap();
    }
    for (name, bytes) in corpus_adversarial() {
        std::fs::write(dir.join(format!("{name}.bin")), bytes).unwrap();
    }
}
