//! Served and embedded must be the same database: N client threads run
//! an E16-style read/write mix over real sockets while an embedded
//! session over the *same* shared database acts as the oracle. At every
//! verification point the served answers equal the embedded ones, and
//! the per-session answer caches demonstrably warm up (the hit counters
//! rise), because a served session holds a real browse-layer session.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use loosedb_browse::SharedSession;
use loosedb_datagen::music_world;
use loosedb_engine::SharedDatabase;
use loosedb_serve::{Backend, Client, ServeConfig, Server};

const THREADS: usize = 6;
const ROUNDS: usize = 8;

fn scrape(addr: std::net::SocketAddr, name: &str) -> u64 {
    let mut stream = TcpStream::connect(addr).expect("connect for scrape");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read scrape");
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} not exported"))
        .trim()
        .parse()
        .expect("integral metric")
}

#[test]
fn served_sessions_agree_with_the_embedded_oracle() {
    let shared = Arc::new(SharedDatabase::new(music_world()).expect("closure"));
    let mut server =
        Server::start(Backend::shared(Arc::clone(&shared)), ServeConfig::default()).expect("bind");
    let addr = server.local_addr();

    let hits_before = scrape(addr, "loosedb_browse_query_cache_hits");

    // The E16-style mix: every thread interleaves repeated reads (the
    // same query, so its session cache can answer), navigation, and
    // writes of thread-unique facts.
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, &format!("tenant-{t}")).expect("connect worker");
                for round in 0..ROUNDS {
                    let rows = client.query("(JOHN, LIKES, ?what)").expect("read").rows;
                    assert!(!rows.is_empty(), "reads must see the base world");
                    let table = client.navigate("JOHN", "*", "*").expect("navigate");
                    assert!(table.contains("JOHN"));
                    let done = client
                        .publish(
                            false,
                            vec![(
                                format!("WORKER-{t}"),
                                "PRODUCED".into(),
                                format!("ITEM-{t}-{round}"),
                            )],
                        )
                        .expect("write");
                    assert_eq!(done.applied, 1, "every unique fact lands");
                    // Re-read after the write: the session must keep
                    // answering (its cache re-keys on the new epoch).
                    client.query("(JOHN, LIKES, ?what)").expect("read after write");
                }
                client.bye().expect("polite exit");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }

    // Repeated identical queries inside each served session must have
    // been answered from warm per-session caches at least part of the
    // time — the served path keeps sessions alive across requests.
    let hits_after = scrape(addr, "loosedb_browse_query_cache_hits");
    assert!(
        hits_after > hits_before,
        "served sessions never hit their answer caches ({hits_before} → {hits_after})"
    );

    // Oracle time: an embedded session over the very same shared
    // database, and a fresh served session, must agree answer for
    // answer on the final state.
    let mut oracle = SharedSession::new(Arc::clone(&shared));
    let mut served = Client::connect(addr, "oracle-check").expect("connect oracle");
    let checks = [
        "(JOHN, LIKES, ?what)".to_string(),
        "(?who, PRODUCED, ?item)".to_string(),
        "(WORKER-0, PRODUCED, ?item)".to_string(),
        format!("(WORKER-{}, PRODUCED, ?item)", THREADS - 1),
    ];
    for q in &checks {
        let embedded = oracle.query(q).expect("oracle query");
        let embedded_rows = oracle.render_answer(&embedded);
        let served_rows = served.query(q).expect("served query").rows;
        assert_eq!(served_rows, embedded_rows, "served and embedded disagree on {q}");
    }

    // Every write from every thread is present exactly once.
    let produced = served.query("(?who, PRODUCED, ?item)").expect("final count").rows;
    assert_eq!(produced.len(), THREADS * ROUNDS, "lost or duplicated writes");

    // The server-reported epoch matches the database's own.
    assert_eq!(served.epoch(), shared.epoch(), "epoch drifted between faces");
    server.shutdown();
}
