//! Shared workload builders and measurement helpers for the loosedb
//! evaluation (experiments E1–E23; see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! The paper (Motro, SIGMOD 1984) is a design paper with no evaluation
//! section; these experiments quantify the costs it reasons about
//! qualitatively. Every experiment has a Criterion bench
//! (`benches/eNN_*.rs`) for precise timing and a row in the
//! `experiments` binary (`cargo run -p loosedb-bench --release --bin
//! experiments`) that regenerates the EXPERIMENTS.md tables.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use loosedb_browse::{navigate, NavigateOptions};
use loosedb_datagen::{zipf_graph, GraphConfig};
use loosedb_engine::{Database, InferenceConfig, ShardedDatabase, SharedDatabase};
use loosedb_store::{EntityId, FactStore, Pattern};

/// Fact-count scales used by the storage experiments.
pub const STORE_SCALES: [usize; 3] = [1_000, 10_000, 100_000];

/// Builds the standard Zipf store for a target fact count.
pub fn standard_store(facts: usize) -> (FactStore, Vec<loosedb_store::EntityId>) {
    let cfg = GraphConfig {
        entities: (facts / 5).max(10),
        relationships: 20,
        facts,
        skew: 1.1,
        seed: 42,
    };
    let (store, nodes, _) = zipf_graph(&cfg);
    (store, nodes)
}

/// Builds a flat membership-heavy world that stresses the structural
/// closure rules (used by E2/E7/E13).
pub fn structural_world(people: usize, classes: usize) -> Database {
    let mut db = Database::new();
    for c in 0..classes {
        db.add(format!("CLASS-{c}"), "gen", "THING");
        db.add(format!("CLASS-{c}"), "HAS-TRAIT", format!("TRAIT-{}", c % 7));
    }
    for p in 0..people {
        db.add(format!("P{p}"), "isa", format!("CLASS-{}", p % classes.max(1)));
        db.add(format!("P{p}"), "KNOWS", format!("P{}", (p * 7 + 1) % people.max(1)));
    }
    db.add("KNOWS", "inv", "KNOWN-BY");
    db
}

/// Builds the E18 query world: the standard Zipf store as a closed
/// [`Database`] with inference disabled, so query timings measure the
/// executor rather than closure derivation.
pub fn query_world(facts: usize) -> Database {
    let (store, _) = standard_store(facts);
    let mut db = Database::from_store(store);
    *db.config_mut() = InferenceConfig::none();
    db
}

/// Source text of the E18 chain query over `atoms` conjoined atoms:
/// `Q(?xN) := exists ?x1 … ?x{N-1} . (N0, R0, ?x1) & (?x1, R1, ?x2) &
/// …` — every adjacent pair shares a variable (pure hash-join territory)
/// and the interior variables are existential, so semi-join projection
/// pushdown can drop them as the join proceeds: each intermediate
/// relation is at most one column of distinct entities. The chain is
/// anchored at the Zipf hub `N0`, the browsing pattern ("everything
/// reachable from here") — with *both* endpoints free the answer itself
/// is quadratic in the world's entity count, which measures
/// materialization, not join strategy.
pub fn chain_query_src(atoms: usize) -> String {
    assert!((1..=19).contains(&atoms), "chain uses distinct relationships R0..R18");
    let body: Vec<String> = (0..atoms)
        .map(|i| {
            let src = if i == 0 { "N0".to_string() } else { format!("?x{i}") };
            format!("({src}, R{i}, ?x{})", i + 1)
        })
        .collect();
    let mids: Vec<String> = (1..atoms).map(|i| format!("?x{i}")).collect();
    if mids.is_empty() {
        format!("Q(?x{atoms}) := {}", body.join(" & "))
    } else {
        format!("Q(?x{atoms}) := exists {} . {}", mids.join(" "), body.join(" & "))
    }
}

/// Builds the E16 serving world: the standard Zipf store behind a
/// [`SharedDatabase`], with inference disabled (matching E4's navigation
/// setup — the default config explodes via composition on this world).
pub fn shared_world(facts: usize) -> (Arc<SharedDatabase>, Vec<EntityId>) {
    let (store, nodes) = standard_store(facts);
    let mut db = Database::from_store(store);
    *db.config_mut() = InferenceConfig::none();
    let shared = Arc::new(SharedDatabase::new(db).expect("closure"));
    (shared, nodes)
}

/// Builds the E23 sharded serving world: the standard Zipf store
/// bulk-loaded across `n` source-hash shards with inference disabled
/// (matching [`shared_world`], so shard counts compare like for like).
pub fn sharded_world(facts: usize, n: usize) -> Arc<ShardedDatabase> {
    sharded_world_nodes(facts, n).0
}

/// [`sharded_world`] plus the generator's node ids. The bulk loader's
/// interner-alignment pass gives every shard the source store's ids, so
/// the returned ids are valid against any shard's snapshot.
pub fn sharded_world_nodes(facts: usize, n: usize) -> (Arc<ShardedDatabase>, Vec<EntityId>) {
    let (store, nodes) = standard_store(facts);
    let sharded = ShardedDatabase::from_store_with_setup(n, &store, |db| {
        *db.config_mut() = InferenceConfig::none();
    })
    .expect("closure");
    (Arc::new(sharded), nodes)
}

/// Source text of the E23 star query over `atoms` conjuncts, all
/// sourced at the one free variable `?x` — the collocated shape under
/// source-hash partitioning: every shard answers it from its own
/// partition alone, so the scatter layer runs it whole on each shard
/// and unions the answers. The targets are anchored at the hub
/// entities `N1`, `N2`, … (not free variables) on purpose: the *scan*
/// work still covers each shard's whole `R{i}` partition — which is
/// what sharding divides — while the output stays the intersection of
/// the anchored matches, so the row budget cannot overflow on the
/// Zipf world's quadratic hub fanouts the way a free-target star does.
pub fn star_query_src(atoms: usize) -> String {
    assert!((2..=19).contains(&atoms), "star uses distinct relationships R0..R18");
    let body: Vec<String> = (0..atoms).map(|i| format!("(?x, R{i}, N{})", i + 1)).collect();
    format!("Q(?x) := {}", body.join(" & "))
}

/// Measured outcome of one E16 reader/writer mix run ([`run_mix`]).
pub struct MixOutcome {
    /// Navigation reads completed across all reader threads.
    pub reads: u64,
    /// Writes published while the readers ran.
    pub writes: u64,
    /// Wall-clock of the measured window.
    pub elapsed: Duration,
    /// Median per-read latency across all readers.
    pub p50: Duration,
    /// 99th-percentile per-read latency across all readers.
    pub p99: Duration,
}

impl MixOutcome {
    /// Reads per second over the measured window.
    pub fn throughput(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs the E16 workload: `readers` threads navigate random entity
/// neighborhoods over generation snapshots for `duration`, while this
/// thread publishes writes paced to `write_pct` percent of total
/// operations (0 disables writing). Per-read latencies are collected on
/// every reader and merged for the percentiles.
pub fn run_mix(
    shared: &Arc<SharedDatabase>,
    nodes: &[EntityId],
    readers: usize,
    write_pct: u32,
    duration: Duration,
) -> MixOutcome {
    assert!(write_pct < 100);
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let opts = NavigateOptions::default();
    let started = Instant::now();

    let (latencies, writes) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(readers);
        for seed in 0..readers {
            let stop = &stop;
            let reads = &reads;
            let opts = &opts;
            handles.push(scope.spawn(move || {
                // Cheap xorshift so node choice costs nothing measurable.
                let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (seed as u64 + 1);
                let mut local: Vec<u64> = Vec::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let node = nodes[(state % nodes.len() as u64) as usize];
                    let t0 = Instant::now();
                    let generation = shared.snapshot();
                    let table = navigate(&generation.view(), Pattern::from_source(node), opts)
                        .expect("navigate");
                    local.push(t0.elapsed().as_nanos() as u64);
                    std::hint::black_box(table.height());
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                local
            }));
        }

        // This thread is the writer, paced so writes stay at `write_pct`
        // percent of completed operations.
        let mut writes = 0u64;
        while started.elapsed() < duration {
            let done = reads.load(Ordering::Relaxed);
            let target =
                if write_pct == 0 { 0 } else { done * write_pct as u64 / (100 - write_pct) as u64 };
            if writes < target {
                writes += 1;
                shared
                    .insert(format!("E16-W{writes}"), "E16-LINK", format!("E16-W{}", writes / 2))
                    .expect("insert");
            } else {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let latencies: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().expect("reader")).collect();
        (latencies, writes)
    });

    let elapsed = started.elapsed();
    let mut sorted = latencies;
    sorted.sort_unstable();
    let pick = |q: f64| {
        if sorted.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((sorted.len() - 1) as f64 * q) as usize;
            Duration::from_nanos(sorted[idx])
        }
    };
    MixOutcome { reads: sorted.len() as u64, writes, elapsed, p50: pick(0.5), p99: pick(0.99) }
}

/// The E16 workload re-run against a [`ShardedDatabase`]: readers take
/// a sharded snapshot per read and navigate the *owner shard's* view
/// (source-anchored reads are complete on the owner — owned facts live
/// there and broadcast facts are replicated there), while this thread
/// publishes owner-routed writes paced to `write_pct` percent of total
/// operations. Mirrors [`run_mix`] so the outcomes compare like for
/// like.
pub fn run_sharded_mix(
    db: &Arc<ShardedDatabase>,
    nodes: &[EntityId],
    readers: usize,
    write_pct: u32,
    duration: Duration,
) -> MixOutcome {
    assert!(write_pct < 100);
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let opts = NavigateOptions::default();
    let started = Instant::now();

    let (latencies, writes) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(readers);
        for seed in 0..readers {
            let stop = &stop;
            let reads = &reads;
            let opts = &opts;
            handles.push(scope.spawn(move || {
                let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (seed as u64 + 1);
                let mut local: Vec<u64> = Vec::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let node = nodes[(state % nodes.len() as u64) as usize];
                    let t0 = Instant::now();
                    let snap = db.snapshot();
                    let owner = &snap.generations()[db.shard_of(node)];
                    let table = navigate(&owner.view(), Pattern::from_source(node), opts)
                        .expect("navigate");
                    local.push(t0.elapsed().as_nanos() as u64);
                    std::hint::black_box(table.height());
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                local
            }));
        }

        let mut writes = 0u64;
        while started.elapsed() < duration {
            let done = reads.load(Ordering::Relaxed);
            let target =
                if write_pct == 0 { 0 } else { done * write_pct as u64 / (100 - write_pct) as u64 };
            if writes < target {
                writes += 1;
                db.insert(format!("E16-W{writes}"), "E16-LINK", format!("E16-W{}", writes / 2))
                    .expect("insert");
            } else {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let latencies: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().expect("reader")).collect();
        (latencies, writes)
    });

    let elapsed = started.elapsed();
    let mut sorted = latencies;
    sorted.sort_unstable();
    let pick = |q: f64| {
        if sorted.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((sorted.len() - 1) as f64 * q) as usize;
            Duration::from_nanos(sorted[idx])
        }
    };
    MixOutcome { reads: sorted.len() as u64, writes, elapsed, p50: pick(0.5), p99: pick(0.99) }
}

/// Median wall-clock of `reps` runs of `f` (with a warm-up run). Returns
/// `(median, last_output)`.
pub fn measure<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut out = f(); // warm-up
    let mut times: Vec<Duration> = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        out = f();
        times.push(start.elapsed());
    }
    times.sort();
    (times[times.len() / 2], out)
}

/// Formats a duration compactly for report tables.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A markdown table writer for the experiments binary.
pub struct Report {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        Report { columns: columns.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row (must match the column count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", self.columns.iter().map(|_| "---|").collect::<String>()));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_store_scales() {
        let (store, nodes) = standard_store(1_000);
        assert!(store.len() > 800); // duplicates dropped
        assert!(!nodes.is_empty());
    }

    #[test]
    fn structural_world_closes() {
        let mut db = structural_world(50, 5);
        let closure = db.closure().unwrap();
        assert!(closure.len() > db.base_len());
    }

    #[test]
    fn chain_query_parses_and_evaluates() {
        let mut db = query_world(1_000);
        for atoms in [1usize, 3] {
            let src = chain_query_src(atoms);
            let query = loosedb_query::parse(&src, db.store_interner_mut()).expect("parse");
            assert_eq!(query.formula.atoms().len(), atoms);
            let view = db.view().expect("closure");
            loosedb_query::eval(&query, &view).expect("eval");
        }
    }

    #[test]
    fn measure_returns_output() {
        let (_, value) = measure(3, || 40 + 2);
        assert_eq!(value, 42);
    }

    #[test]
    fn report_renders_markdown() {
        let mut r = Report::new(&["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        let text = r.render();
        assert!(text.contains("| a | b |"));
        assert!(text.contains("| 1 | 2 |"));
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
