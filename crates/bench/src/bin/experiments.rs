//! Regenerates every EXPERIMENTS.md table: one section per experiment
//! E1–E24 (DESIGN.md §3), printed as markdown.
//! E17/E18/E19/E20/E21/E22/E23/E24 additionally write their numbers to
//! `BENCH_publish.json` / `BENCH_query.json` / `BENCH_obs.json` /
//! `BENCH_repl.json` / `BENCH_retract.json` / `BENCH_parjoin.json` /
//! `BENCH_shard.json` / `BENCH_serve.json` so later PRs can track the
//! publish-cost, query-cost, instrumentation-overhead, replication-lag,
//! retraction-cost, parallel-join, sharding and serving trajectories
//! mechanically;
//! `experiments --check` validates the files against the expected
//! schema (used by CI). E19 compares builds: run it once default and
//! once with `--features obs` to measure the span layer's cost.
//!
//! Run with `cargo run -p loosedb-bench --release --bin experiments`;
//! pass experiment ids (`experiments e16 e17`) to run a subset.
//! Timings are medians of several runs via `std::time::Instant`; the
//! Criterion benches in `crates/bench/benches/` provide the
//! statistically rigorous versions of the same measurements.

use loosedb_bench::{
    chain_query_src, fmt_duration, measure, query_world, run_mix, run_sharded_mix, sharded_world,
    sharded_world_nodes, shared_world, standard_store, star_query_src, structural_world, Report,
};
use loosedb_browse::{navigate, probe, relation, NavigateOptions, ProbeOptions, SharedSession};
use loosedb_datagen::{
    company, inversion_world, synonym_world, taxonomy, university, zipf_graph, CompanyConfig,
    GraphConfig, TaxonomyConfig, UniversityConfig,
};
use loosedb_engine::{
    ClosureView, Database, DurableDatabase, FactView, InferenceConfig, RuleGroup, Strategy,
    SyncPolicy,
};
use loosedb_query::{
    eval, eval_with, parse, plan_query, AtomOrdering, EvalOptions, ExecStrategy, ParallelMode,
    PlanCache,
};
use loosedb_store::{log, snapshot, FactLog, FactStore, Pattern};

fn main() {
    let only: Vec<String> = std::env::args().skip(1).collect();
    if only.iter().any(|a| a == "--check") {
        std::process::exit(if check_bench_files() { 0 } else { 1 });
    }
    let run = |id: &str| only.is_empty() || only.iter().any(|a| a.eq_ignore_ascii_case(id));
    println!("# loosedb experiments — measured results\n");
    println!("(regenerate with `cargo run -p loosedb-bench --release --bin experiments`)\n");
    if run("e01") {
        e01();
    }
    if run("e02") {
        e02();
    }
    if run("e03") {
        e03();
    }
    if run("e04") {
        e04();
    }
    if run("e05") {
        e05();
    }
    if run("e06") {
        e06();
    }
    if run("e07") {
        e07();
    }
    if run("e08") {
        e08();
    }
    if run("e09") {
        e09();
    }
    if run("e10") {
        e10();
    }
    if run("e11") {
        e11();
    }
    if run("e12") {
        e12();
    }
    if run("e13") {
        e13();
    }
    if run("e14") {
        e14();
    }
    if run("e15") {
        e15();
    }
    if run("e16") {
        e16();
    }
    if run("e17") {
        e17();
    }
    if run("e18") {
        e18();
    }
    if run("e19") {
        e19();
    }
    if run("e20") {
        e20();
    }
    if run("e21") {
        e21();
    }
    if run("e22") {
        e22();
    }
    if run("e23") {
        e23();
    }
    if run("e24") {
        e24();
    }
}

/// Validates the machine-readable bench files against their expected
/// schema: every required key must appear, the brace nesting must
/// balance, and (for the query/parallel-join files) every timing value
/// must be a number or the literal `null` — a `null` marks a
/// nested-loop cell that overflowed `max_rows`, the same convention in
/// E18 and E22 — while every `strategy` value must name a real executor
/// (the files are hand-rolled JSON, so this is the cheap,
/// dependency-free sanity net CI runs on every push).
fn check_bench_files() -> bool {
    // (path, required keys, keys whose values must be numeric-or-null).
    let specs: [(&str, &[&str], &[&str]); 8] = [
        (
            "BENCH_serve.json",
            &[
                "\"experiment\": \"E24\"",
                "\"clients\"",
                "\"rows\"",
                "\"facts\"",
                "\"served_p50_ns\"",
                "\"served_p99_ns\"",
                "\"embedded_p50_ns\"",
                "\"embedded_p99_ns\"",
                "\"p99_ratio\"",
                "\"hot_rows\"",
                "\"throughput_qps\"",
                "\"publish_p99_ns\"",
            ],
            &["served_p99_ns", "embedded_p99_ns", "p99_ratio"],
        ),
        (
            "BENCH_shard.json",
            &[
                "\"experiment\": \"E23\"",
                "\"workers\"",
                "\"rows\"",
                "\"facts\"",
                "\"shards\"",
                "\"star_ns\"",
                "\"speedup\"",
                "\"throughput_qps\"",
                "\"gather_ns\"",
                "\"publish_p99_ns\"",
                "\"retract_p99_ns\"",
                "\"scale_rows\"",
            ],
            &["star_ns", "speedup"],
        ),
        (
            "BENCH_publish.json",
            &[
                "\"experiment\": \"E17\"",
                "\"rows\"",
                "\"facts\"",
                "\"publish_ns\"",
                "\"seed_clone_publish_ns\"",
                "\"domain_rescan_ns\"",
                "\"writes_per_sec\"",
                "\"read_p50_ns\"",
                "\"read_p99_ns\"",
            ],
            &[],
        ),
        (
            "BENCH_obs.json",
            &[
                "\"experiment\": \"E19\"",
                "\"mode\"",
                "\"rows\"",
                "\"read_p50_ns\"",
                "\"read_p99_ns\"",
                "\"hot_query_ns\"",
                "\"cold_query_ns\"",
            ],
            &[],
        ),
        (
            "BENCH_query.json",
            &[
                "\"experiment\": \"E18\"",
                "\"rows\"",
                "\"facts\"",
                "\"atoms\"",
                "\"strategy\"",
                "\"adaptive_ns\"",
                "\"hash_join_ns\"",
                "\"nested_loop_ns\"",
                "\"speedup\"",
                "\"adaptive_speedup\"",
                "\"plan\"",
                "\"cold_plan_ns\"",
                "\"cache_hit_ns\"",
                "\"hit_speedup\"",
            ],
            &["nested_loop_ns", "speedup", "adaptive_speedup"],
        ),
        (
            "BENCH_parjoin.json",
            &[
                "\"experiment\": \"E22\"",
                "\"rows\"",
                "\"facts\"",
                "\"atoms\"",
                "\"workers\"",
                "\"strategy\"",
                "\"seq_ns\"",
                "\"par_ns\"",
                "\"speedup\"",
            ],
            &["seq_ns", "par_ns", "speedup"],
        ),
        (
            "BENCH_retract.json",
            &[
                "\"experiment\": \"E21\"",
                "\"rows\"",
                "\"facts\"",
                "\"retract_const_ns\"",
                "\"retract_hub_ns\"",
                "\"hub_consequences\"",
                "\"full_recompute_ns\"",
                "\"publish_ns\"",
            ],
            &[],
        ),
        (
            "BENCH_repl.json",
            &[
                "\"experiment\": \"E20\"",
                "\"rows\"",
                "\"facts\"",
                "\"bootstrap_ns\"",
                "\"ship_p50_ns\"",
                "\"ship_p99_ns\"",
                "\"catchup_ns\"",
                "\"follower_read_p99_ns\"",
                "\"standalone_read_p99_ns\"",
            ],
            &[],
        ),
    ];
    let mut ok = true;
    for (path, keys, nullable) in specs {
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("--check: {path} is missing (run the experiments binary first)");
            ok = false;
            continue;
        };
        for key in keys {
            if !text.contains(key) {
                eprintln!("--check: {path} lacks required key {key}");
                ok = false;
            }
        }
        for key in nullable {
            ok &= values_numeric_or_null(path, &text, key);
        }
        ok &= strategy_values_valid(path, &text);
        let depth = text.chars().try_fold(0i64, |d, c| {
            let d = match c {
                '{' | '[' => d + 1,
                '}' | ']' => d - 1,
                _ => d,
            };
            (d >= 0).then_some(d)
        });
        if depth != Some(0) {
            eprintln!("--check: {path} has unbalanced braces");
            ok = false;
        }
    }
    if ok {
        println!("--check: bench files OK");
    }
    ok
}

/// Every value of `key` must be a (possibly negative) number or the
/// literal `null`. The bench files mark timed-out cells — e.g. a
/// nested-loop run that overflowed `max_rows` — with `null`, never with
/// a sentinel string, so downstream tooling can parse timings
/// unconditionally.
fn values_numeric_or_null(path: &str, text: &str, key: &str) -> bool {
    let needle = format!("\"{key}\":");
    let mut ok = true;
    for (pos, _) in text.match_indices(&needle) {
        let rest = text[pos + needle.len()..].trim_start();
        let good = rest.starts_with("null")
            || rest.starts_with('-')
            || rest.chars().next().is_some_and(|c| c.is_ascii_digit());
        if !good {
            eprintln!("--check: {path}: value of \"{key}\" must be a number or null");
            ok = false;
        }
    }
    ok
}

/// Every `strategy` value must name an executor the planner can
/// actually choose. Files without a `strategy` key pass vacuously.
fn strategy_values_valid(path: &str, text: &str) -> bool {
    let needle = "\"strategy\": \"";
    let mut ok = true;
    for (pos, _) in text.match_indices(needle) {
        let rest = &text[pos + needle.len()..];
        if !(rest.starts_with("hash\"") || rest.starts_with("nested\"")) {
            eprintln!("--check: {path}: \"strategy\" must be \"hash\" or \"nested\"");
            ok = false;
        }
    }
    ok
}

fn section(id: &str, title: &str, report: &Report, note: &str) {
    println!("## {id} — {title}\n");
    print!("{}", report.render());
    println!("\n{note}\n");
}

fn e01() {
    let mut report = Report::new(&["facts", "pattern", "indexed", "scan", "speedup"]);
    for scale in [1_000usize, 10_000, 100_000, 1_000_000] {
        let (store, nodes) = standard_store(scale);
        for (label, node) in [("hub (E,*,*)", nodes[0]), ("tail (E,*,*)", nodes[nodes.len() - 1])] {
            let (indexed, n) = measure(9, || store.matching(Pattern::from_source(node)).count());
            let (scan, _) = measure(3, || store.matching_scan(Pattern::from_source(node)).count());
            report.row(&[
                scale.to_string(),
                format!("{label} [{n} matches]"),
                fmt_duration(indexed),
                fmt_duration(scan),
                format!("{:.0}x", scan.as_secs_f64() / indexed.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    section(
        "E1",
        "indexed template matching vs full scan",
        &report,
        "Shape: the index answers in microseconds regardless of database size; \
         the heap scan grows linearly (§1's organization/retrieval trade-off).",
    );
}

fn e02() {
    let mut report = Report::new(&["rule groups", "base facts", "closure facts", "time"]);
    let configs: [(&str, InferenceConfig); 5] = [
        ("none", InferenceConfig::none()),
        ("generalization", {
            let mut c = InferenceConfig::none();
            c.include(RuleGroup::Generalization);
            c
        }),
        ("membership", {
            let mut c = InferenceConfig::none();
            c.include(RuleGroup::Membership);
            c
        }),
        ("gen+member+inv", {
            let mut c = InferenceConfig::none();
            c.include(RuleGroup::Generalization)
                .include(RuleGroup::Membership)
                .include(RuleGroup::Inversion);
            c
        }),
        ("all (default)", InferenceConfig::default()),
    ];
    for (name, config) in configs {
        let (time, (base, len)) = measure(5, || {
            let mut db = structural_world(800, 40);
            *db.config_mut() = config.clone();
            let base = db.base_len();
            let len = db.closure().expect("closure").len();
            (base, len)
        });
        report.row(&[name.to_string(), base.to_string(), len.to_string(), fmt_duration(time)]);
    }
    section(
        "E2",
        "closure cost vs enabled rule groups (§3)",
        &report,
        "Shape: each §3 group adds derived facts and time; membership dominates on \
         instance-heavy data.",
    );
}

fn e03() {
    let mut report = Report::new(&["limit(n)", "base facts", "composition facts", "closure time"]);
    for n in [1usize, 2, 3, 4, 5] {
        let (time, (base, comp)) = measure(3, || {
            let (store, _, _) = zipf_graph(&GraphConfig {
                entities: 120,
                relationships: 8,
                facts: 260,
                skew: 0.6,
                seed: 7,
            });
            let mut db = Database::from_store(store);
            if n > 1 {
                db.limit(n);
            }
            let c = db.closure().expect("closure");
            (c.stats().base_facts, c.stats().composition_facts)
        });
        report.row(&[n.to_string(), base.to_string(), comp.to_string(), fmt_duration(time)]);
    }
    section(
        "E3",
        "composition blow-up vs limit(n) (§3.7, §6.1)",
        &report,
        "Shape: super-linear growth in materialized composition facts as the chain \
         limit rises — the cost that motivates the paper's limit(n) operator.",
    );
}

fn e04() {
    let mut report = Report::new(&["entity", "degree", "neighborhood latency"]);
    let (store, nodes) = standard_store(50_000);
    let mut db = Database::from_store(store);
    *db.config_mut() = InferenceConfig::none();
    db.refresh().expect("closure");
    let view: ClosureView<'_> = db.view().expect("closure");
    for (label, node) in
        [("hub", nodes[0]), ("mid", nodes[nodes.len() / 2]), ("tail", nodes[nodes.len() - 1])]
    {
        let degree = view.matches(Pattern::from_source(node)).unwrap().len();
        let (time, _) = measure(9, || {
            navigate(&view, Pattern::from_source(node), &NavigateOptions::default())
                .expect("navigate")
                .height()
        });
        report.row(&[label.to_string(), degree.to_string(), fmt_duration(time)]);
    }
    section(
        "E4",
        "navigation latency vs entity degree (§4.1)",
        &report,
        "Shape: latency tracks the focused entity's degree; browsing stays \
         interactive even at the Zipf hub.",
    );
}

fn e05() {
    let mut report = Report::new(&[
        "taxonomy (depth x branching)",
        "wave-1 retractions",
        "first-success wave",
        "pure target climb",
        "probe time",
    ]);
    for (depth, branching) in [(2usize, 2usize), (3, 3), (4, 3), (5, 2), (6, 2)] {
        let (time, (retr, first_wave)) = measure(3, || {
            let mut t =
                taxonomy(&TaxonomyConfig { depth, branching, dag_probability: 0.0, seed: 5 });
            let root_name = t.db.display(t.root());
            let leaf_name = t.db.display(t.leaves()[0]);
            t.db.add("JOHN", "WANTS", root_name.as_str());
            let src = format!("(JOHN, WANTS, {leaf_name})");
            let query = parse(&src, t.db.store_interner_mut()).unwrap();
            let view = t.db.view().unwrap();
            let report = probe(&query, &view, &ProbeOptions::default());
            (report.waves[0].attempts.len(), report.waves.len())
        });
        // The pure climb along the target position needs exactly `depth`
        // generalization steps (the datum sits at the root; verified by
        // evaluating (JOHN, WANTS, level-k) per level in the tests).
        report.row(&[
            format!("{depth} x {branching}"),
            retr.to_string(),
            first_wave.to_string(),
            depth.to_string(),
            fmt_duration(time),
        ]);
    }
    section(
        "E5",
        "retraction-set size and waves-to-success vs taxonomy shape (§5)",
        &report,
        "Shape — and an emergent finding: the pure climb along the target position \
         needs exactly `depth` broadening steps, but the first success plateaus at \
         wave 3 for any depth: once the source degenerates to `BOT` and the \
         relationship to `TOP`, the retraction (BOT, TOP, x) — 'anything related \
         to x in any way' — succeeds as soon as x has any incident fact. The \
         broadness lattice has a short escape hatch through the hierarchy bounds; \
         the §5.2 deletion rule exists precisely because such degenerate successes \
         are 'weak restrictions' a user will usually discard from the menu.",
    );
}

fn e06() {
    let mut report = Report::new(&["students", "greedy (planned)", "syntactic", "speedup"]);
    for students in [100usize, 300, 1000] {
        let mut db = university(&UniversityConfig {
            students,
            courses: 20,
            instructors: 8,
            enrollments_per_student: 3,
            seed: 1,
        });
        let src = "Q(?s) := exists ?e ?g . (?e, ENROLL-GRADE, ?g) \
                   & (?e, ENROLL-STUDENT, ?s) & (?g, =, A) & (?e, ENROLL-COURSE, CRS-0)";
        let query = parse(src, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let opts =
            |ordering| EvalOptions { ordering, max_rows: 10_000_000, ..EvalOptions::default() };
        let (greedy, n1) =
            measure(5, || eval_with(&query, &view, opts(AtomOrdering::Greedy)).unwrap().len());
        let (syntactic, n2) =
            measure(3, || eval_with(&query, &view, opts(AtomOrdering::Syntactic)).unwrap().len());
        assert_eq!(n1, n2);
        report.row(&[
            students.to_string(),
            fmt_duration(greedy),
            fmt_duration(syntactic),
            format!("{:.1}x", syntactic.as_secs_f64() / greedy.as_secs_f64().max(1e-9)),
        ]);
    }
    section(
        "E6",
        "selectivity-ordered planning vs syntactic atom order (§2.7)",
        &report,
        "Shape: the planner's advantage grows with database size — it binds the \
         selective ENROLL-COURSE atom first instead of enumerating all grades.",
    );
}

fn e07() {
    let mut report =
        Report::new(&["people", "semi-naive", "naive", "naive dup-derivations", "speedup"]);
    for people in [200usize, 600, 1200] {
        let (semi, _) = measure(3, || {
            let mut db = structural_world(people, 30);
            db.set_strategy(Strategy::SemiNaive);
            db.closure().expect("closure").len()
        });
        let (naive, dups) = measure(3, || {
            let mut db = structural_world(people, 30);
            db.set_strategy(Strategy::Naive);
            let c = db.closure().expect("closure");
            c.stats().duplicate_derivations
        });
        report.row(&[
            people.to_string(),
            fmt_duration(semi),
            fmt_duration(naive),
            dups.to_string(),
            format!("{:.1}x", naive.as_secs_f64() / semi.as_secs_f64().max(1e-9)),
        ]);
    }
    section(
        "E7",
        "semi-naive vs naive forward chaining (ablation)",
        &report,
        "Shape: semi-naive wins and the gap widens with size; the duplicate-derivation \
         column shows the naive strategy's wasted work.",
    );
}

fn e08() {
    let mut report = Report::new(&["employees", "constraints", "5 checked inserts", "per insert"]);
    for employees in [50usize, 100, 200] {
        for with_constraints in [false, true] {
            let (time, _) = measure(3, || {
                let mut db = company(&CompanyConfig {
                    employees,
                    departments: 8,
                    with_constraints,
                    seed: 3,
                });
                db.refresh().expect("closure");
                for i in 0..5 {
                    let _ = db.try_add(format!("NEW-{i}"), "LOVES", "EMP-0");
                }
            });
            report.row(&[
                employees.to_string(),
                if with_constraints { "yes" } else { "no" }.to_string(),
                fmt_duration(time),
                fmt_duration(time / 5),
            ]);
        }
    }
    section(
        "E8",
        "integrity-checked insert cost (§2.5)",
        &report,
        "Shape: with incremental maintenance (E15) a checked insert pays only the \
         new fact's consequence cone plus the consistency re-scan; constraints \
         multiply the cost through the user-rule join. This is the paper's \
         organization/consistency price.",
    );
}

fn e09() {
    let mut report = Report::new(&["students", "relation() operator", "hand-written query"]);
    for students in [100usize, 400] {
        let mut db = university(&UniversityConfig {
            students,
            courses: 15,
            instructors: 6,
            enrollments_per_student: 3,
            seed: 2,
        });
        let enrollment = db.lookup_symbol("ENROLLMENT").unwrap();
        let stu_rel = db.lookup_symbol("ENROLL-STUDENT").unwrap();
        let student = db.lookup_symbol("STUDENT").unwrap();
        let grade_rel = db.lookup_symbol("ENROLL-GRADE").unwrap();
        let grade = db.lookup_symbol("GRADE").unwrap();
        let query = parse(
            "Q(?e, ?s, ?g) := (?e, isa, ENROLLMENT) & (?e, ENROLL-STUDENT, ?s) \
             & (?e, ENROLL-GRADE, ?g) & (?s, isa, STUDENT) & (?g, isa, GRADE)",
            db.store_interner_mut(),
        )
        .unwrap();
        let view = db.view().unwrap();
        let (op_time, rows) = measure(5, || {
            relation(&view, enrollment, &[(stu_rel, student), (grade_rel, grade)])
                .expect("relation")
                .rows
                .len()
        });
        let (q_time, answers) = measure(5, || eval(&query, &view).expect("eval").len());
        assert_eq!(rows, answers);
        report.row(&[students.to_string(), fmt_duration(op_time), fmt_duration(q_time)]);
    }
    section(
        "E9",
        "relation() operator vs equivalent query (§6.1)",
        &report,
        "Shape: identical results; the operator's per-instance index probes edge out \
         the generic evaluator.",
    );
}

fn e10() {
    let mut report = Report::new(&[
        "synonym density",
        "base facts",
        "closure facts",
        "closure time",
        "alias recall",
    ]);
    for density in [0.0f64, 0.1, 0.3] {
        let (time, (base, len, recall)) = measure(3, || {
            let mut db = synonym_world(1_000, density, 7);
            let base = db.base_len();
            let len = db.closure().expect("closure").len();
            // Recall: how many alias-side EARNS lookups succeed.
            let earns = db.lookup_symbol("EARNS").unwrap();
            let mut hits = 0;
            let mut aliases = 0;
            for i in 0..1_000 {
                if let Some(alias) = db.lookup_symbol(&format!("ALIAS-{i}")) {
                    aliases += 1;
                    let c = db.closure().expect("closure");
                    if c.matching(Pattern::new(Some(alias), Some(earns), None)).next().is_some() {
                        hits += 1;
                    }
                }
            }
            (base, len, if aliases == 0 { 1.0 } else { hits as f64 / aliases as f64 })
        });
        report.row(&[
            format!("{density:.1}"),
            base.to_string(),
            len.to_string(),
            fmt_duration(time),
            format!("{:.0}%", recall * 100.0),
        ]);
    }
    section(
        "E10",
        "synonym inference: cost and recall (§3.3)",
        &report,
        "Shape: closure size grows linearly with density (each synonym pair adds \
         symmetry, two gen facts and the duplicated EARNS fact); with synonym \
         inference on, alias-side retrieval has total recall.",
    );
}

fn e11() {
    let mut report = Report::new(&["mode", "closure facts", "build", "1000 inverse queries"]);
    // Materialized.
    {
        let mut db = inversion_world(2_000, 3);
        let (build, len) = measure(3, || {
            let mut db2 = inversion_world(2_000, 3);
            db2.closure().expect("closure").len()
        });
        let taught_by = db.lookup_symbol("TAUGHT-BY").unwrap();
        let courses: Vec<_> =
            (0..1_000).map(|i| db.lookup_symbol(&format!("COURSE-{i}")).unwrap()).collect();
        let view = db.view().expect("closure");
        let (qtime, _) = measure(5, || {
            courses
                .iter()
                .map(|&c| view.matches(Pattern::new(Some(c), Some(taught_by), None)).unwrap().len())
                .sum::<usize>()
        });
        report.row(&[
            "materialized".to_string(),
            len.to_string(),
            fmt_duration(build),
            fmt_duration(qtime),
        ]);
    }
    // On demand.
    {
        let mut db = inversion_world(2_000, 3);
        db.exclude(RuleGroup::Inversion);
        let (build, len) = measure(3, || {
            let mut db2 = inversion_world(2_000, 3);
            db2.exclude(RuleGroup::Inversion);
            db2.closure().expect("closure").len()
        });
        let teaches = db.lookup_symbol("TEACHES").unwrap();
        let courses: Vec<_> =
            (0..1_000).map(|i| db.lookup_symbol(&format!("COURSE-{i}")).unwrap()).collect();
        let view = db.view().expect("closure");
        let (qtime, _) = measure(5, || {
            courses
                .iter()
                .map(|&c| view.matches(Pattern::new(None, Some(teaches), Some(c))).unwrap().len())
                .sum::<usize>()
        });
        report.row(&[
            "on-demand (flipped)".to_string(),
            len.to_string(),
            fmt_duration(build),
            fmt_duration(qtime),
        ]);
    }
    section(
        "E11",
        "inversion: materialized vs on-demand (§3.4)",
        &report,
        "Shape: per-query cost is comparable (both are single index probes thanks to \
         the three rotations); materialization costs closure size and build time.",
    );
}

fn e12() {
    let mut report = Report::new(&["facts", "snapshot bytes", "encode", "decode"]);
    for scale in [10_000usize, 100_000, 1_000_000] {
        let (store, _) = standard_store(scale);
        let (enc, bytes) = measure(3, || snapshot::encode(&store).len());
        let encoded = snapshot::encode(&store);
        let (dec, _) = measure(3, || snapshot::decode(encoded.clone()).expect("decode").len());
        report.row(&[
            store.len().to_string(),
            bytes.to_string(),
            fmt_duration(enc),
            fmt_duration(dec),
        ]);
    }
    // Log replay.
    let mut the_log = FactLog::new();
    for i in 0..100_000 {
        the_log.insert(
            format!("E{}", i % 5_000),
            format!("R{}", i % 10),
            format!("E{}", (i * 3) % 5_000),
        );
    }
    let (replay_time, applied) = measure(3, || {
        let mut store = FactStore::new();
        log::replay(the_log.bytes(), &mut store).expect("replay")
    });
    println!("## E12 — persistence (§6.2 open problem)\n");
    print!("{}", report.render());
    println!(
        "\nLog replay: {applied} operations in {} ({:.0} ops/ms).\n",
        fmt_duration(replay_time),
        applied as f64 / replay_time.as_secs_f64() / 1e3,
    );
    println!(
        "Shape: linear in fact count; decode is dominated by re-interning and \
         rebuilding the three rotations.\n"
    );

    // Durability: WAL append throughput per sync policy, and recovery
    // (reopen) time from a checkpointed snapshot plus a WAL tail.
    let scratch =
        |tag: &str| std::env::temp_dir().join(format!("loosedb-e12-{tag}-{}", std::process::id()));
    let append_ops = |db: &mut DurableDatabase, n: usize| {
        for i in 0..n {
            db.add(format!("E{}", i % 500), format!("R{}", i % 10), format!("E{}", (i * 3) % 500))
                .expect("durable add");
        }
    };

    const APPENDS: usize = 5_000;
    let mut wal_report = Report::new(&["sync policy", "ops", "append time", "ops/ms"]);
    for (name, policy) in [
        ("Always", SyncPolicy::Always),
        ("EveryN(64)", SyncPolicy::EveryN(64)),
        ("OnCheckpoint", SyncPolicy::OnCheckpoint),
    ] {
        let dir = scratch("wal");
        let (t, _) = measure(3, || {
            std::fs::remove_dir_all(&dir).ok();
            let mut db = DurableDatabase::open(&dir, policy).expect("open");
            append_ops(&mut db, APPENDS);
            db.wal_ops()
        });
        std::fs::remove_dir_all(&dir).ok();
        wal_report.row(&[
            name.to_string(),
            APPENDS.to_string(),
            fmt_duration(t),
            format!("{:.0}", APPENDS as f64 / t.as_secs_f64() / 1e3),
        ]);
    }

    let mut rec_report = Report::new(&["snapshot ops", "WAL tail ops", "recovery time"]);
    for (snap_ops, tail_ops) in [(10_000usize, 2_000usize), (100_000, 10_000)] {
        let dir = scratch(&format!("recover-{snap_ops}"));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut db = DurableDatabase::open(&dir, SyncPolicy::OnCheckpoint).expect("open");
            append_ops(&mut db, snap_ops);
            db.checkpoint().expect("checkpoint");
            append_ops(&mut db, tail_ops);
            db.sync().expect("sync");
        }
        let (t, applied) = measure(3, || {
            let db = DurableDatabase::open(&dir, SyncPolicy::OnCheckpoint).expect("recover");
            db.recovery().wal_ops_applied
        });
        assert_eq!(applied, tail_ops);
        std::fs::remove_dir_all(&dir).ok();
        rec_report.row(&[snap_ops.to_string(), tail_ops.to_string(), fmt_duration(t)]);
    }

    println!("WAL append throughput per sync policy ({APPENDS} inserts, fresh journal):\n");
    print!("{}", wal_report.render());
    println!("\nRecovery (reopen: manifest -> snapshot decode -> WAL tail replay):\n");
    print!("{}", rec_report.render());
    println!(
        "\nShape: `Always` pays one fsync per acknowledged op and is I/O-bound; \
         `EveryN`/`OnCheckpoint` amortize the fsync away and run at in-memory \
         append speed. Recovery is snapshot decode plus linear WAL-tail replay.\n"
    );
}

fn e13() {
    let mut report = Report::new(&["people", "parallel", "sequential", "speedup"]);
    for people in [1_000usize, 3_000, 8_000] {
        let run = |threshold: usize, people: usize| {
            let mut db = structural_world(people, 60);
            db.config_mut().parallel_threshold = threshold;
            db.closure().expect("closure").len()
        };
        let (par, n1) = measure(3, || run(1, people));
        let (seq, n2) = measure(3, || run(usize::MAX, people));
        assert_eq!(n1, n2);
        report.row(&[
            people.to_string(),
            fmt_duration(par),
            fmt_duration(seq),
            format!("{:.2}x", seq.as_secs_f64() / par.as_secs_f64().max(1e-9)),
        ]);
    }
    section(
        "E13",
        "parallel vs sequential structural rules (ablation)",
        &report,
        "Shape — an honest negative result on this container: parallel chunking is \
         a wash. Rounds are dependency-bounded and the per-fact structural joins \
         are BTree probes, cheap relative to chunk setup; a long-lived worker pool \
         (spawned once, jobs per round) removes the per-round thread-spawn cost, \
         but on a single-core host the parallel branch never engages. The path is \
         kept (byte-identical results, property-tested) behind a high default \
         threshold.",
    );
}

fn e16() {
    use std::time::Duration;
    let mut report =
        Report::new(&["readers", "write mix", "reads/s", "p50 read", "p99 read", "publishes"]);
    let window = Duration::from_millis(400);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for write_pct in [0u32, 1, 10] {
        for readers in [1usize, 2, 4, 8] {
            // Fresh world per row so earlier writes don't grow later runs.
            let (shared, nodes) = shared_world(50_000);
            let outcome = run_mix(&shared, &nodes, readers, write_pct, window);
            report.row(&[
                readers.to_string(),
                format!("{write_pct}%"),
                format!("{:.0}", outcome.throughput()),
                fmt_duration(outcome.p50),
                fmt_duration(outcome.p99),
                outcome.writes.to_string(),
            ]);
        }
    }
    section(
        "E16",
        "snapshot-isolated concurrent reads (SharedDatabase)",
        &report,
        &format!(
            "Shape: readers navigate immutable `Arc<Generation>` snapshots and never \
             block on the writer — the p99 read under a 10% write mix stays within a \
             small factor of the read-only p99, because a publish is a pointer swap. \
             Thread *scaling* is bounded by the machine: this container exposes \
             {cores} core(s), so added readers divide one core rather than \
             multiplying throughput; on a multi-core host the same harness scales \
             with reader count (the read path is lock-free by construction)."
        ),
    );
}

fn e14() {
    use loosedb_engine::{KindRegistry, Prover};
    use loosedb_store::Fact;
    let mut report = Report::new(&[
        "people",
        "cold prover check",
        "cold closure+check",
        "speedup",
        "warm materialized check",
    ]);
    for people in [500usize, 2_000, 8_000] {
        let mut db = structural_world(people, 50);
        db.config_mut().user_rules = false;
        let p0 = db.lookup_symbol("P0").unwrap();
        let has_trait = db.lookup_symbol("HAS-TRAIT").unwrap();
        let trait0 = db.lookup_symbol("TRAIT-0").unwrap();
        let goal = Fact::new(p0, has_trait, trait0);

        let kinds = KindRegistry::new();
        let config = InferenceConfig { user_rules: false, ..Default::default() };
        let store = db.store().clone();
        let (prover_time, proved) =
            measure(9, || Prover::new(&store, &kinds, &config).prove(&goal));
        assert!(proved);
        let (closure_time, contained) = measure(3, || {
            let mut fresh = structural_world(people, 50);
            fresh.config_mut().user_rules = false;
            fresh.closure().expect("closure").contains(&goal)
        });
        assert!(contained);
        db.refresh().expect("closure");
        let (warm_time, _) = measure(9, || db.closure().expect("cached").contains(&goal));
        report.row(&[
            people.to_string(),
            fmt_duration(prover_time),
            fmt_duration(closure_time),
            format!("{:.0}x", closure_time.as_secs_f64() / prover_time.as_secs_f64().max(1e-9)),
            fmt_duration(warm_time),
        ]);
    }
    section(
        "E14",
        "goal-directed proving vs materialize-then-check (§6.2 'performance')",
        &report,
        "Shape: for a cold single-fact question the structural prover wins by orders \
         of magnitude (reachability over base facts instead of the whole closure); \
         once the closure is materialized and cached, membership is a sub-microsecond \
         index probe — the classic build-vs-query trade-off, again.",
    );
}

fn e15() {
    let mut report = Report::new(&["people", "incremental insert", "recompute insert", "speedup"]);
    for people in [500usize, 2_000, 8_000] {
        let mut db = structural_world(people, 50);
        db.refresh().expect("closure");
        let mut i = 0usize;
        let (inc, _) = measure(9, || {
            i += 1;
            db.add_incremental(format!("NEW-A{i}"), "KNOWS", "P0").expect("insert")
        });
        let mut db2 = structural_world(people, 50);
        db2.refresh().expect("closure");
        let mut j = 0usize;
        let (full, _) = measure(3, || {
            j += 1;
            db2.add(format!("NEW-B{j}"), "KNOWS", "P0");
            db2.closure().expect("closure").len()
        });
        report.row(&[
            people.to_string(),
            fmt_duration(inc),
            fmt_duration(full),
            format!("{:.0}x", full.as_secs_f64() / inc.as_secs_f64().max(1e-9)),
        ]);
    }
    section(
        "E15",
        "incremental closure maintenance vs recompute-on-insert",
        &report,
        "Shape: extending a warm closure costs only the new fact's consequence \
         cone (microseconds, size-independent); recomputation grows linearly with \
         the database. This is what makes transactional try_add practical.",
    );
}

fn e17() {
    use std::collections::BTreeSet;
    use std::time::{Duration, Instant};
    let mut report = Report::new(&[
        "facts",
        "publish (persistent)",
        "seed-style clone publish",
        "domain rescan alone",
        "writes/s",
        "read p50",
        "read p99",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for facts in [50_000usize, 200_000, 500_000, 2_000_000] {
        let (shared, nodes) = shared_world(facts);

        // Median single-fact publish on the structurally-shared path.
        let mut i = 0u64;
        let (publish, _) = measure(9, || {
            i += 1;
            shared
                .insert(format!("E17-A{i}"), "E17-LINK", format!("E17-A{}", i / 2))
                .expect("insert")
        });

        // The seed's Generation::build deep-copied every ordered index
        // (three rotations in the store, three in the closure) and
        // rescanned the closure for the active domain on every publish.
        // Reconstruct that cost from the same data so the comparison
        // stays honest as the persistent path evolves.
        let generation = shared.snapshot();
        let key =
            |f: loosedb_store::Fact| (f.s.index() as u32, f.r.index() as u32, f.t.index() as u32);
        let base_keys: BTreeSet<(u32, u32, u32)> = generation.store().iter().map(key).collect();
        let closure_keys: BTreeSet<(u32, u32, u32)> =
            generation.closure().iter().map(key).collect();
        let (baseline, _) = measure(3, || {
            for _ in 0..3 {
                std::hint::black_box(base_keys.clone());
                std::hint::black_box(closure_keys.clone());
            }
            loosedb_engine::view::compute_domain(generation.closure()).len()
        });
        let (rescan, _) =
            measure(3, || loosedb_engine::view::compute_domain(generation.closure()).len());
        drop((generation, base_keys, closure_keys));

        // Sustained single-writer throughput, each write published.
        let window = Duration::from_millis(300);
        let start = Instant::now();
        let mut writes = 0u64;
        while start.elapsed() < window {
            writes += 1;
            shared
                .insert(format!("E17-B{writes}"), "E17-LINK", format!("E17-B{}", writes / 2))
                .expect("insert");
        }
        let wps = writes as f64 / start.elapsed().as_secs_f64();

        // Read latency over snapshots (E4-style navigation, no writer).
        let reads = run_mix(&shared, &nodes, 1, 0, Duration::from_millis(300));

        report.row(&[
            facts.to_string(),
            fmt_duration(publish),
            fmt_duration(baseline),
            fmt_duration(rescan),
            format!("{wps:.0}"),
            fmt_duration(reads.p50),
            fmt_duration(reads.p99),
        ]);
        json_rows.push(format!(
            "    {{ \"facts\": {facts}, \"publish_ns\": {}, \"seed_clone_publish_ns\": {}, \
             \"domain_rescan_ns\": {}, \"writes_per_sec\": {wps:.0}, \"read_p50_ns\": {}, \
             \"read_p99_ns\": {} }}",
            publish.as_nanos(),
            baseline.as_nanos(),
            rescan.as_nanos(),
            reads.p50.as_nanos(),
            reads.p99.as_nanos(),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E17\",\n  \"title\": \"O(delta) generation publish vs \
         database size\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_publish.json", json).expect("write BENCH_publish.json");
    section(
        "E17",
        "O(delta) generation publish: persistent indexes vs seed deep-copy",
        &report,
        "Shape: a single-fact publish path-copies O(log N) index nodes and bumps \
         Arcs for everything else, so its latency is flat from 50k to 2M facts \
         where the seed's deep-copy publish (six BTreeSet clones plus a full \
         active-domain rescan, reconstructed above) grows linearly -- three \
         orders of magnitude apart at 2M. Sustained write throughput holds \
         correspondingly, and snapshot read latency matches E4/E16. Numbers \
         also land in BENCH_publish.json for trend tracking.",
    );
}

fn e18() {
    fn opts(strategy: ExecStrategy) -> EvalOptions {
        EvalOptions { strategy, max_rows: 10_000_000, ..Default::default() }
    }

    /// One (facts, atoms) cell: median adaptive vs forced hash-join vs
    /// forced nested-loop time on the chain query, plus the cost model's
    /// decision for the shape. The nested-loop oracle counts every
    /// duplicate partial row against `max_rows`, so on large worlds it
    /// can overflow where the hash join (one probe per distinct key)
    /// does not; such cells report the overflow instead of a time.
    /// `adaptive_speedup` is best-of(hash, nested) over adaptive — the
    /// crossover is correct when it stays at 1.0 on every row,
    /// including the 2-atom row where the hash build has nothing to
    /// amortize and the planner must fall back to the nested loop.
    fn cell(facts: usize, atoms: usize, report: &mut Report, json_rows: &mut Vec<String>) {
        let mut db = query_world(facts);
        let src = chain_query_src(atoms);
        let query = parse(&src, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let plan = plan_query(&query, &view, &opts(ExecStrategy::Adaptive));
        let strategy = match plan.groups().first().map(|g| g.strategy) {
            Some(ExecStrategy::NestedLoop) => "nested",
            _ => "hash",
        };
        // Adaptive and forced-hash are interleaved round-robin rather
        // than measured in separate bursts: at >=3 atoms they execute
        // the very same join code, so any systematic gap between their
        // medians would be container drift, not the executor — and
        // interleaving makes drift hit both columns equally.
        let median = |mut v: Vec<std::time::Duration>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let mut adaptive_samples = Vec::with_capacity(9);
        let mut hash_samples = Vec::with_capacity(9);
        let (mut n0, mut n1) = (0usize, 0usize);
        for _ in 0..9 {
            let t = std::time::Instant::now();
            n0 = eval_with(&query, &view, opts(ExecStrategy::Adaptive)).expect("adaptive").len();
            adaptive_samples.push(t.elapsed());
            let t = std::time::Instant::now();
            n1 = eval_with(&query, &view, opts(ExecStrategy::HashJoin)).expect("hash join").len();
            hash_samples.push(t.elapsed());
        }
        let adaptive = median(adaptive_samples.clone());
        let hash = median(hash_samples.clone());
        // The speedup ratio uses the min-of-samples estimator: the
        // fastest rep is the least-interfered witness of each path's
        // true cost, so the ratio converges where medians still wobble
        // a few percent under container load.
        let adaptive_min = adaptive_samples.into_iter().min().expect("samples");
        let hash_min = hash_samples.into_iter().min().expect("samples");
        assert_eq!(n0, n1, "adaptive must agree with the forced hash join");
        let (nested, n2) = measure(3, || {
            eval_with(&query, &view, opts(ExecStrategy::NestedLoop)).map(|a| a.len()).ok()
        });
        let (nested_cell, speedup_cell, nested_json, speedup_json) = match n2 {
            Some(n) => {
                assert_eq!(n1, n, "strategies must agree");
                let speedup = nested.as_secs_f64() / hash.as_secs_f64().max(1e-9);
                (
                    fmt_duration(nested),
                    format!("{speedup:.1}x"),
                    nested.as_nanos().to_string(),
                    format!("{speedup:.1}"),
                )
            }
            None => ("overflow (>10M rows)".into(), "-".into(), "null".into(), "null".into()),
        };
        let best = match n2 {
            Some(_) => hash_min.min(nested),
            None => hash_min,
        };
        let adaptive_speedup = best.as_secs_f64() / adaptive_min.as_secs_f64().max(1e-9);
        // Crossover guard: the adaptive executor runs the same join code
        // as whichever forced strategy the cost model picked, so it can
        // only lose to best-of by picking wrong (or by measurement
        // noise, hence the slack).
        // Crossover guards. The decision itself is deterministic: one
        // join step cannot amortize the hash build, so 2-atom chains
        // must take the nested loop and longer chains the hash join.
        // The timing guard is generous — container timings are noisy,
        // and a genuinely wrong pick shows up as an order-of-magnitude
        // loss at depth (cf. the 100x+ hash-speedup rows), not a
        // near-1x wobble.
        assert_eq!(
            strategy,
            if atoms == 2 { "nested" } else { "hash" },
            "cost-model crossover moved at {facts} facts / {atoms} atoms"
        );
        assert!(
            adaptive_speedup > 0.5,
            "adaptive lost to best-of at {facts} facts / {atoms} atoms: {adaptive_speedup:.2}x"
        );
        report.row(&[
            facts.to_string(),
            atoms.to_string(),
            strategy.to_string(),
            fmt_duration(adaptive),
            fmt_duration(hash),
            nested_cell,
            speedup_cell,
            format!("{adaptive_speedup:.1}x"),
        ]);
        json_rows.push(format!(
            "    {{ \"facts\": {facts}, \"atoms\": {atoms}, \"strategy\": \"{strategy}\", \
             \"adaptive_ns\": {}, \"hash_join_ns\": {}, \"nested_loop_ns\": {nested_json}, \
             \"speedup\": {speedup_json}, \"adaptive_speedup\": {adaptive_speedup:.1} }}",
            adaptive.as_nanos(),
            hash.as_nanos(),
        ));
    }

    let mut report = Report::new(&[
        "facts",
        "atoms",
        "planner",
        "adaptive",
        "hash join",
        "nested loop",
        "hash speedup",
        "adaptive vs best",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for atoms in [2usize, 3, 4, 5, 6] {
        cell(50_000, atoms, &mut report, &mut json_rows);
    }
    for facts in [5_000usize, 20_000, 200_000] {
        cell(facts, 3, &mut report, &mut json_rows);
    }

    // Plan-cache latency split: cold planning probes the view once per
    // atom; a hit is one shape hash plus a map lookup.
    let mut db = query_world(50_000);
    let src = chain_query_src(4);
    let query = parse(&src, db.store_interner_mut()).unwrap();
    let view = db.view().unwrap();
    let eval_opts = opts(ExecStrategy::HashJoin);
    let (cold, probes) = measure(9, || plan_query(&query, &view, &eval_opts).probes());
    let mut plans = PlanCache::new(8);
    plans.insert(&query, &eval_opts, std::sync::Arc::new(plan_query(&query, &view, &eval_opts)));
    let (hit, _) = measure(9, || plans.get(&query, &eval_opts).expect("cached").groups().len());
    let hit_speedup = cold.as_secs_f64() / hit.as_secs_f64().max(1e-9);
    let mut plan_report =
        Report::new(&["query", "count probes", "cold plan", "plan-cache hit", "hit speedup"]);
    plan_report.row(&[
        "4-atom chain @ 50k".to_string(),
        probes.to_string(),
        fmt_duration(cold),
        fmt_duration(hit),
        format!("{hit_speedup:.0}x"),
    ]);

    let json = format!(
        "{{\n  \"experiment\": \"E18\",\n  \"title\": \"adaptive strategy choice, hash \
         joins vs nested-loop, shape-keyed plan cache\",\n  \"rows\": [\n{}\n  ],\n  \"plan\": \
         {{ \"facts\": 50000, \"atoms\": 4, \"probes\": {probes}, \"cold_plan_ns\": {}, \
         \"cache_hit_ns\": {}, \"hit_speedup\": {hit_speedup:.0} }}\n}}\n",
        json_rows.join(",\n"),
        cold.as_nanos(),
        hit.as_nanos(),
    );
    std::fs::write("BENCH_query.json", json).expect("write BENCH_query.json");

    println!("## E18 — adaptive strategy choice, hash joins vs nested-loop; plan cache\n");
    print!("{}", report.render());
    println!("\nPlan-cache latency split (planning once per query *shape*):\n");
    print!("{}", plan_report.render());
    println!(
        "\nShape: the hash join probes each atom once per distinct shared-variable \
         binding where the nested loop probes once per partial row, so the gap \
         widens with atom count and world size; interior existential variables are \
         projected away mid-join (semi-join pushdown) instead of being carried to \
         the end. The cost model picks the nested loop at 2 atoms (one join step \
         cannot amortize the hash build) and the hash join beyond, so the \
         adaptive column tracks best-of at every row — the crossover guard \
         asserts it. Planning itself (count probes + greedy ordering + strategy \
         choice) is memoized by query shape in an epoch-scoped cache, so repeated \
         browsing queries pay a hash lookup instead of view probes. Numbers also \
         land in BENCH_query.json for trend tracking.\n"
    );
}

/// E22: what partitioned parallel hash joins cost and buy. Each keyed
/// join step scatters its distinct join keys and probe rows by join-key
/// hash across the closure worker pool, deduplicates per partition, and
/// merges by arena concatenation. On a single-core container the pool
/// runs partition tasks inline, so the forced-partition column measures
/// pure scatter/merge overhead (an honest ~1x or below); on a
/// multi-core host the identical code divides probe work across
/// workers. `workers` is recorded per row so the trend file
/// distinguishes the two regimes — a speedup claim is only meaningful
/// when `workers > 1`.
fn e22() {
    fn opts(parallel: ParallelMode) -> EvalOptions {
        EvalOptions {
            strategy: ExecStrategy::HashJoin,
            parallel,
            max_rows: 10_000_000,
            ..Default::default()
        }
    }

    let workers = loosedb_engine::pool::workers();
    let nparts = workers.max(2);
    let mut report =
        Report::new(&["facts", "atoms", "planner", "sequential", "partitioned", "speedup"]);
    let mut json_rows: Vec<String> = Vec::new();
    for (facts, atoms) in [(50_000usize, 3usize), (50_000, 4), (50_000, 5), (200_000, 3)] {
        let mut db = query_world(facts);
        let src = chain_query_src(atoms);
        let query = parse(&src, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let plan = plan_query(&query, &view, &EvalOptions::default());
        let strategy = match plan.groups().first().map(|g| g.strategy) {
            Some(ExecStrategy::NestedLoop) => "nested",
            _ => "hash",
        };
        // Interleaved round-robin sampling, as in E18: on one worker
        // both modes do the same probe work, so burst measurement would
        // attribute container drift to whichever ran second.
        let median = |mut v: Vec<std::time::Duration>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let mut seq_samples = Vec::with_capacity(9);
        let mut par_samples = Vec::with_capacity(9);
        let (mut n1, mut n2) = (0usize, 0usize);
        for _ in 0..9 {
            let t = std::time::Instant::now();
            n1 = eval_with(&query, &view, opts(ParallelMode::Off)).expect("sequential").len();
            seq_samples.push(t.elapsed());
            let t = std::time::Instant::now();
            n2 = eval_with(&query, &view, opts(ParallelMode::Force(nparts)))
                .expect("partitioned")
                .len();
            par_samples.push(t.elapsed());
        }
        let seq = median(seq_samples);
        let par = median(par_samples);
        assert_eq!(n1, n2, "partitioned join must agree with sequential");
        let speedup = seq.as_secs_f64() / par.as_secs_f64().max(1e-9);
        report.row(&[
            facts.to_string(),
            atoms.to_string(),
            strategy.to_string(),
            fmt_duration(seq),
            fmt_duration(par),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "    {{ \"facts\": {facts}, \"atoms\": {atoms}, \"workers\": {workers}, \
             \"strategy\": \"{strategy}\", \"seq_ns\": {}, \"par_ns\": {}, \
             \"speedup\": {speedup:.2} }}",
            seq.as_nanos(),
            par.as_nanos(),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E22\",\n  \"title\": \"partitioned parallel hash joins \
         vs sequential execution\",\n  \"workers\": {workers},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_parjoin.json", json).expect("write BENCH_parjoin.json");
    section(
        "E22",
        "partitioned parallel hash joins vs sequential execution",
        &report,
        &format!(
            "Shape: partitioning by join-key hash preserves exact answers (equal \
             rows land in the same partition, so per-partition dedup is global \
             dedup) and the merge is arena concatenation. This container exposes \
             {workers} worker(s): with one worker the pool runs partitions \
             inline and the column pair measures pure scatter/merge overhead — \
             the cost the Auto gate avoids by requiring multiple workers *and* \
             at least 1024 distinct build keys before partitioning. On a \
             multi-core host the same harness divides probe work across \
             workers. Numbers land in BENCH_parjoin.json keyed by worker count."
        ),
    );
}

/// E19: what the observability layer costs. The metrics registry is
/// always compiled in (relaxed atomics on the hot paths), so the default
/// build measures metrics-on/spans-out; rebuilding the same binary with
/// `--features obs` compiles the span layer in (capture left off, the
/// production configuration). Comparing the two runs of this experiment
/// is the overhead budget: obs-off within 2% of the pre-instrumentation
/// E16 read p99, obs-on within 5%.
fn e19() {
    use std::sync::Arc;
    use std::time::Duration;

    let mode = if cfg!(feature = "obs") { "obs" } else { "default" };
    let window = Duration::from_millis(400);
    let mut report = Report::new(&["workload", "p50", "p99", "reads/s"]);
    let mut json_rows: Vec<String> = Vec::new();

    // Read path: the E16 serving mix — 8 readers navigating generation
    // snapshots, read-only and under a 10% write mix.
    for write_pct in [0u32, 10] {
        let (shared, nodes) = shared_world(50_000);
        let outcome = run_mix(&shared, &nodes, 8, write_pct, window);
        let snap = shared.metrics_snapshot();
        assert_eq!(snap.publish.publishes, outcome.writes, "every publish must be counted");
        report.row(&[
            format!("E16 mix, 8 readers, {write_pct}% writes"),
            fmt_duration(outcome.p50),
            fmt_duration(outcome.p99),
            format!("{:.0}", outcome.throughput()),
        ]);
        json_rows.push(format!(
            "    {{ \"workload\": \"mix_{write_pct}pct\", \"read_p50_ns\": {}, \
             \"read_p99_ns\": {}, \"reads_per_sec\": {:.0} }}",
            outcome.p50.as_nanos(),
            outcome.p99.as_nanos(),
            outcome.throughput(),
        ));
    }

    // Query path: the instrumentation-dense session fast path (answer-cache
    // hit — timed, counted, span-wrapped) and the cold 3-atom hash join
    // (span per join step under `obs`).
    let (shared, _) = shared_world(50_000);
    let mut session = loosedb_browse::SharedSession::new(Arc::clone(&shared));
    let hot_src = chain_query_src(1);
    session.query(&hot_src).expect("warm the answer cache");
    let (hot, _) = measure(9, || session.query(&hot_src).expect("hit").len());

    let mut db = query_world(50_000);
    let cold_src = chain_query_src(3);
    let query = parse(&cold_src, db.store_interner_mut()).unwrap();
    let view = db.view().unwrap();
    let eval_opts = EvalOptions { max_rows: 10_000_000, ..Default::default() };
    let (cold, _) = measure(5, || eval_with(&query, &view, eval_opts).expect("eval").len());

    let mut query_report = Report::new(&["query path", "median"]);
    query_report.row(&["answer-cache hit (session)".into(), fmt_duration(hot)]);
    query_report.row(&["cold 3-atom hash join".into(), fmt_duration(cold)]);

    let json = format!(
        "{{\n  \"experiment\": \"E19\",\n  \"title\": \"observability overhead \
         (metrics always on; spans per build mode)\",\n  \"mode\": \"{mode}\",\n  \
         \"rows\": [\n{}\n  ],\n  \"query\": {{ \"hot_query_ns\": {}, \
         \"cold_query_ns\": {} }}\n}}\n",
        json_rows.join(",\n"),
        hot.as_nanos(),
        cold.as_nanos(),
    );
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");

    println!("## E19 — observability overhead (build mode: {mode})\n");
    print!("{}", report.render());
    println!();
    print!("{}", query_report.render());
    println!(
        "\nShape: the registry's relaxed fetch-adds are invisible next to a \
         navigation or join (tens of instructions vs tens of microseconds), so \
         the default build should match the pre-instrumentation E16 numbers \
         within noise (<2% budget). With `--features obs` each span is one \
         `Instant::now` pair plus a capture-flag load (capture off), bounded \
         at <5% on the read p99. Numbers land in BENCH_obs.json keyed by \
         build mode.\n"
    );
}

/// E20: what WAL-shipped replication costs. A leader seeded with the
/// standard world at generation 0 ships frames to a follower over an
/// in-memory filesystem, so the numbers measure the replication
/// machinery itself — frame CRC verification, the mirror-then-cursor
/// commit, and the incremental O(delta) publish — rather than disk.
fn e20() {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use loosedb_engine::{Replica, ReplicaOptions};
    use loosedb_store::io::MemIo;

    const DELTA: u64 = 2_000;
    let mut report = Report::new(&[
        "facts",
        "bootstrap",
        "ship lag p50",
        "ship lag p99",
        "catch-up (2k ops)",
        "follower read p99",
        "standalone read p99",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for facts in [50_000usize, 500_000, 2_000_000] {
        let (store, nodes) = standard_store(facts);
        let mut db = Database::from_store(store);
        *db.config_mut() = InferenceConfig::none();
        let mem = Arc::new(MemIo::new());
        let mut leader = DurableDatabase::create_with(
            Arc::clone(&mem),
            "/leader",
            db,
            0,
            SyncPolicy::OnCheckpoint,
        )
        .expect("create leader");

        // Bootstrap: decode the leader's checkpoint snapshot, refresh
        // the closure, and commit the local cursor.
        let t0 = Instant::now();
        let mut replica =
            Replica::open_with(Arc::clone(&mem), "/leader", "/replica", ReplicaOptions::default())
                .expect("bootstrap");
        let bootstrap = t0.elapsed();

        // Ship latency: one committed leader write, then poll until the
        // follower has published it — write-to-follower-visible lag.
        let mut lags: Vec<u64> = Vec::with_capacity(300);
        for i in 0..300u64 {
            leader.add(format!("E20-S{i}"), "E20-LINK", "E20-HUB").expect("add");
            let t0 = Instant::now();
            let mut applied = 0;
            while applied == 0 {
                applied = replica.poll().expect("poll").ops_applied;
            }
            lags.push(t0.elapsed().as_nanos() as u64);
        }
        lags.sort_unstable();
        let lag_p50 = Duration::from_nanos(lags[lags.len() / 2]);
        let lag_p99 = Duration::from_nanos(lags[(lags.len() - 1) * 99 / 100]);

        // Catch-up: the follower sits out `DELTA` leader writes, then
        // drains them in batches.
        for i in 0..DELTA {
            leader.add(format!("E20-C{i}"), "E20-LINK", format!("E20-C{}", i / 2)).expect("add");
        }
        let t0 = Instant::now();
        let drained = replica.catch_up().expect("catch up");
        let catchup = t0.elapsed();
        assert_eq!(drained, DELTA, "catch-up must drain exactly the backlog");

        // Follower reads over its own generation snapshots vs a
        // standalone SharedDatabase on the identical world: serving
        // from a replica must cost nothing extra.
        let follower_nodes: Vec<loosedb_store::EntityId> = {
            let generation = replica.shared().snapshot();
            nodes
                .iter()
                .map(|&n| {
                    generation
                        .interner()
                        .lookup(leader.database_ref().store().value(n))
                        .expect("replicated node")
                })
                .collect()
        };
        let window = Duration::from_millis(250);
        let follower = run_mix(replica.shared(), &follower_nodes, 4, 0, window);
        let (standalone_shared, standalone_nodes) = shared_world(facts);
        let standalone = run_mix(&standalone_shared, &standalone_nodes, 4, 0, window);

        report.row(&[
            facts.to_string(),
            fmt_duration(bootstrap),
            fmt_duration(lag_p50),
            fmt_duration(lag_p99),
            fmt_duration(catchup),
            fmt_duration(follower.p99),
            fmt_duration(standalone.p99),
        ]);
        json_rows.push(format!(
            "    {{ \"facts\": {facts}, \"bootstrap_ns\": {}, \"ship_p50_ns\": {}, \
             \"ship_p99_ns\": {}, \"catchup_ops\": {DELTA}, \"catchup_ns\": {}, \
             \"follower_read_p99_ns\": {}, \"standalone_read_p99_ns\": {} }}",
            bootstrap.as_nanos(),
            lag_p50.as_nanos(),
            lag_p99.as_nanos(),
            catchup.as_nanos(),
            follower.p99.as_nanos(),
            standalone.p99.as_nanos(),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E20\",\n  \"title\": \"WAL-shipped replica: bootstrap, \
         ship lag, catch-up, read parity\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_repl.json", json).expect("write BENCH_repl.json");
    section(
        "E20",
        "WAL-shipped replication: lag, catch-up, and follower read parity",
        &report,
        "Shape: bootstrap is one snapshot decode plus a closure refresh, so it \
         grows linearly with database size; per-op ship lag is flat (frame \
         verify + mirror fsync + O(delta) publish, independent of N); catch-up \
         drains the backlog at batch granularity. Follower read p99 matches the \
         standalone SharedDatabase within noise — a replica serves reads off \
         the same generation-snapshot machinery, so tailing the leader adds \
         nothing to the read path. Numbers also land in BENCH_repl.json for \
         trend tracking.",
    );
}

fn e21() {
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    let mut report = Report::new(&[
        "facts",
        "retract (const)",
        "retract (hub)",
        "hub consequences",
        "full recompute",
        "publish",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let median = |mut v: Vec<Duration>| -> Duration {
        v.sort();
        v[v.len() / 2]
    };
    for facts in [50_000usize, 500_000, 2_000_000] {
        // A link graph that inference never touches, plus a small
        // taxonomy island: a 10-deep gen chain, 50 class-level facts and
        // 200 members + HUB. The consequence set of a hub removal is a
        // property of the island (constant), never of N.
        let mut store = FactStore::new();
        for i in 0..facts {
            store.add(format!("E{i}"), "E21-LINK", format!("E{}", i / 2));
        }
        for d in 0..9 {
            store.add(format!("CAT{d}"), "gen", format!("CAT{}", d + 1));
        }
        for k in 0..50 {
            store.add("CAT0", "E21-PROVIDES", format!("B{k}"));
        }
        for j in 0..200 {
            store.add(format!("M{j}"), "isa", "CAT0");
        }
        store.add("HUB", "isa", "CAT0");
        let mut db = Database::from_store(store);
        let mut config = InferenceConfig::none();
        config.include(RuleGroup::Generalization).include(RuleGroup::Membership);
        *db.config_mut() = config;
        let shared = Arc::new(loosedb_engine::SharedDatabase::new(db).expect("closure"));

        // Baseline: the incremental single-fact insert publish (E17's
        // headline number) — retraction should sit within 10x of it.
        let mut i = 0u64;
        let (publish, _) = measure(9, || {
            i += 1;
            shared
                .insert(format!("E21-A{i}"), "E21-LINK", format!("E21-A{}", i / 2))
                .expect("insert")
        });

        // Constant-consequence removal: fresh facts over an inert rel.
        for n in 0..6 {
            shared.insert(format!("E21-T{n}"), "E21-TMP", format!("E21-U{n}")).expect("insert");
        }
        let g = shared.snapshot();
        let tmp = g.lookup_symbol("E21-TMP").unwrap();
        let const_samples: Vec<Duration> = (0..6)
            .map(|n| {
                let f = loosedb_store::Fact::new(
                    g.lookup_symbol(&format!("E21-T{n}")).unwrap(),
                    tmp,
                    g.lookup_symbol(&format!("E21-U{n}")).unwrap(),
                );
                let start = Instant::now();
                assert!(shared.remove(&f).unwrap());
                start.elapsed()
            })
            .collect();
        let retract_const = median(const_samples);

        // Hub removal: HUB's membership carries every lifted class fact
        // with it. Count consequences from the retraction counters.
        let hub_fact = loosedb_store::Fact::new(
            g.lookup_symbol("HUB").unwrap(),
            g.lookup_symbol("isa").unwrap(),
            g.lookup_symbol("CAT0").unwrap(),
        );
        let deleted_before = shared.metrics_snapshot().closure.retract_deleted;
        let mut hub_samples: Vec<Duration> = Vec::new();
        let mut hub_consequences = 0u64;
        for rep in 0..5 {
            let start = Instant::now();
            assert!(shared.remove(&hub_fact).unwrap());
            hub_samples.push(start.elapsed());
            if rep == 0 {
                hub_consequences =
                    shared.metrics_snapshot().closure.retract_deleted - deleted_before - 1;
            }
            shared.insert("HUB", "isa", "CAT0").expect("reinsert");
        }
        let retract_hub = median(hub_samples);

        // Seed baseline: the pre-incremental path (plain `remove` inside
        // a write batch) invalidates the closure cache, so the publish
        // recomputes the whole world.
        let mut full_samples: Vec<Duration> = Vec::new();
        for n in 0..3 {
            shared.insert(format!("E21-F{n}"), "E21-TMP", format!("E21-G{n}")).expect("insert");
            let g = shared.snapshot();
            let f = loosedb_store::Fact::new(
                g.lookup_symbol(&format!("E21-F{n}")).unwrap(),
                tmp,
                g.lookup_symbol(&format!("E21-G{n}")).unwrap(),
            );
            let start = Instant::now();
            shared.write(|db| db.remove(&f)).expect("publish");
            full_samples.push(start.elapsed());
        }
        let full_recompute = median(full_samples);

        report.row(&[
            facts.to_string(),
            fmt_duration(retract_const),
            fmt_duration(retract_hub),
            hub_consequences.to_string(),
            fmt_duration(full_recompute),
            fmt_duration(publish),
        ]);
        json_rows.push(format!(
            "    {{ \"facts\": {facts}, \"retract_const_ns\": {}, \"retract_hub_ns\": {}, \
             \"hub_consequences\": {hub_consequences}, \"full_recompute_ns\": {}, \
             \"publish_ns\": {} }}",
            retract_const.as_nanos(),
            retract_hub.as_nanos(),
            full_recompute.as_nanos(),
            publish.as_nanos(),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E21\",\n  \"title\": \"O(consequences) retraction vs \
         full-recompute removal\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_retract.json", json).expect("write BENCH_retract.json");
    section(
        "E21",
        "Incremental retraction: O(consequences) removal vs the recompute cliff",
        &report,
        "Shape: removing a fact with no consequences costs the same microseconds \
         as a single-fact insert publish at every size — the delete wave visits \
         the fact's (empty) dependent list and stops, so latency is flat from \
         50k to 2M where the seed's full-recompute removal grows linearly. Hub \
         removals pay for their consequence set (the lifted memberships and \
         class facts that lose support), still independent of N. Numbers land \
         in BENCH_retract.json for trend tracking.",
    );
}

/// E23: sharded scatter-gather vs a single store, on the 2M-fact Zipf
/// world. Collocated star joins (every conjunct sourced at the shared
/// free variable) evaluate whole on each shard over 1/N-size indexes;
/// anchored lookups measure the scatter/gather overhead a router pays
/// for fanning a point query to every shard; per-shard publish and
/// retract p99 must stay flat as the world grows (O(delta), per shard).
fn e23() {
    use std::time::Instant;

    let workers = loosedb_engine::pool::workers();
    let facts = 2_000_000usize;
    // The unanchored star on the 2M world legitimately produces more
    // than the default row budget; match E18's raised ceiling.
    let opts = EvalOptions { max_rows: 10_000_000, ..Default::default() };

    let p99 = |mut v: Vec<std::time::Duration>| {
        v.sort_unstable();
        v[(v.len() * 99) / 100]
    };
    let median = |mut v: Vec<std::time::Duration>| {
        v.sort_unstable();
        v[v.len() / 2]
    };

    let mut report = Report::new(&[
        "shards",
        "star join",
        "speedup",
        "throughput",
        "anchored (gather)",
        "publish p99",
        "retract p99",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut single_star: Option<std::time::Duration> = None;
    for n in [1usize, 2, 4, 8] {
        let db = sharded_world(facts, n);
        let snap = db.snapshot();
        let star = loosedb_query::parse_frozen(&star_query_src(2), snap.interner()).unwrap();
        let views = snap.views();

        let mut star_samples = Vec::with_capacity(5);
        let mut rows = 0usize;
        for _ in 0..5 {
            let t = Instant::now();
            rows = loosedb_query::eval_sharded(&star, &views, snap.interner(), opts, None)
                .expect("star")
                .answer
                .len();
            star_samples.push(t.elapsed());
        }
        let star_med = median(star_samples);
        let speedup = match single_star {
            None => {
                single_star = Some(star_med);
                1.0
            }
            Some(base) => base.as_secs_f64() / star_med.as_secs_f64().max(1e-9),
        };
        let qps = 1.0 / star_med.as_secs_f64().max(1e-9);

        // Anchored point query: fans out to every shard, only the owner
        // answers — the per-query cost of not routing by the anchor.
        let anchored =
            loosedb_query::parse_frozen("Q(?y) := (N123, R0, ?y)", snap.interner()).unwrap();
        let mut gather_samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let t = Instant::now();
            loosedb_query::eval_sharded(&anchored, &views, snap.interner(), opts, None)
                .expect("anchored");
            gather_samples.push(t.elapsed());
        }
        let gather = median(gather_samples);
        drop(views);
        drop(snap);

        // Publish / retract p99 for owner-routed single facts.
        let mut inserted = Vec::with_capacity(200);
        let mut publish_samples = Vec::with_capacity(200);
        for i in 0..200u64 {
            let t = Instant::now();
            let f = db.insert(format!("E23-{i}"), "R0", "N1").expect("insert");
            publish_samples.push(t.elapsed());
            inserted.push(f);
        }
        let mut retract_samples = Vec::with_capacity(200);
        for f in &inserted {
            let t = Instant::now();
            assert!(db.remove(f).expect("remove"));
            retract_samples.push(t.elapsed());
        }
        let publish = p99(publish_samples);
        let retract = p99(retract_samples);

        report.row(&[
            n.to_string(),
            fmt_duration(star_med),
            format!("{speedup:.2}x"),
            format!("{qps:.1}/s"),
            fmt_duration(gather),
            fmt_duration(publish),
            fmt_duration(retract),
        ]);
        json_rows.push(format!(
            "    {{ \"facts\": {facts}, \"shards\": {n}, \"rows\": {rows}, \
             \"star_ns\": {}, \"speedup\": {speedup:.2}, \"throughput_qps\": {qps:.2}, \
             \"gather_ns\": {}, \"publish_p99_ns\": {}, \"retract_p99_ns\": {} }}",
            star_med.as_nanos(),
            gather.as_nanos(),
            publish.as_nanos(),
            retract.as_nanos(),
        ));
    }

    // Per-shard publish latency vs world size: must stay flat (O(delta))
    // from 50k to 2M facts at 4 shards.
    let mut scale_rows: Vec<String> = Vec::new();
    let mut scale_report = Report::new(&["facts", "shards", "publish p99"]);
    for scale in [50_000usize, 200_000, 500_000, 2_000_000] {
        let db = sharded_world(scale, 4);
        let mut samples = Vec::with_capacity(200);
        for i in 0..200u64 {
            let t = Instant::now();
            db.insert(format!("E23-S{i}"), "R0", "N1").expect("insert");
            samples.push(t.elapsed());
        }
        let publish = p99(samples);
        scale_report.row(&[scale.to_string(), "4".into(), fmt_duration(publish)]);
        scale_rows.push(format!(
            "    {{ \"facts\": {scale}, \"shards\": 4, \"publish_p99_ns\": {} }}",
            publish.as_nanos(),
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"E23\",\n  \"title\": \"sharded scatter-gather vs a \
         single store\",\n  \"workers\": {workers},\n  \"rows\": [\n{}\n  ],\n  \
         \"scale_rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
        scale_rows.join(",\n")
    );
    std::fs::write("BENCH_shard.json", json).expect("write BENCH_shard.json");
    section(
        "E23",
        "sharded scatter-gather vs a single store (2M-fact Zipf world)",
        &report,
        &format!(
            "Shape: a collocated star join evaluates whole on every shard over \
             1/N-size indexes and join tables, so per-shard work drops with the \
             partition and, with pool width, the shard evaluations run \
             concurrently. This container exposes {workers} worker(s): the \
             speedup column isolates the structure-size effect (smaller \
             B-trees, smaller build tables, smaller dedup sets); on a \
             multi-core host the same harness additionally divides the shard \
             evaluations across workers. The anchored column is the \
             scatter/gather tax of fanning a point lookup to every shard. \
             Publish and retract p99 are per-shard O(delta): the scale table \
             below grows only within a small constant factor while the world \
             grows 40x (B-tree depth and cache effects, no O(world) term). \
             Numbers land in BENCH_shard.json for trend tracking."
        ),
    );
    print!("{}", scale_report.render());
    println!();

    // E18 re-measured under the sharded config: the 2-atom chain join
    // is *not* collocated (the second atom's source is the first's
    // target), so at n>1 it runs through the deduplicating union view
    // and the partitioned hash join instead of one shard-local scan.
    // The delta against n=1 is the scatter/gather tax on the E18 shape.
    let mut chain_report = Report::new(&["shards", "chain join (E18 shape)", "delta vs 1 shard"]);
    let mut chain_single: Option<std::time::Duration> = None;
    for n in [1usize, 4] {
        let db = sharded_world(200_000, n);
        let snap = db.snapshot();
        let chain = loosedb_query::parse_frozen(&chain_query_src(3), snap.interner()).unwrap();
        let views = snap.views();
        let mut samples = Vec::with_capacity(9);
        let mut rows_n = 0usize;
        for _ in 0..9 {
            let t = Instant::now();
            rows_n = loosedb_query::eval_sharded(&chain, &views, snap.interner(), opts, None)
                .expect("chain")
                .answer
                .len();
            samples.push(t.elapsed());
        }
        let med = median(samples);
        let delta = match chain_single {
            None => {
                chain_single = Some(med);
                "1.00x (baseline)".to_string()
            }
            Some(base) => format!("{:.2}x", med.as_secs_f64() / base.as_secs_f64().max(1e-9)),
        };
        chain_report.row(&[n.to_string(), fmt_duration(med), delta]);
        std::hint::black_box(rows_n);
    }
    println!("E23a — E18's chain join re-measured under the sharded config (200k facts):\n");
    print!("{}", chain_report.render());
    println!();

    // E16 re-measured under the sharded config: the same Zipf serving
    // world and reader/writer mix, with readers navigating the owner
    // shard of each source (complete for source-anchored reads) off a
    // sharded snapshot.
    let mut mix_report =
        Report::new(&["config", "readers", "write mix", "reads/s", "p50 read", "p99 read"]);
    let window = std::time::Duration::from_millis(400);
    {
        let (shared, nodes) = shared_world(50_000);
        let outcome = run_mix(&shared, &nodes, 4, 1, window);
        mix_report.row(&[
            "single".into(),
            "4".into(),
            "1%".into(),
            format!("{:.0}", outcome.throughput()),
            fmt_duration(outcome.p50),
            fmt_duration(outcome.p99),
        ]);
    }
    {
        let (db, nodes) = sharded_world_nodes(50_000, 4);
        let outcome = run_sharded_mix(&db, &nodes, 4, 1, window);
        mix_report.row(&[
            "sharded (4)".into(),
            "4".into(),
            "1%".into(),
            format!("{:.0}", outcome.throughput()),
            fmt_duration(outcome.p50),
            fmt_duration(outcome.p99),
        ]);
    }
    println!("E23b — E16's reader/writer mix re-measured under the sharded config (50k facts):\n");
    print!("{}", mix_report.render());
    println!();
}

fn e24() {
    use std::sync::Arc;
    use std::time::Instant;

    use loosedb_serve::{Backend, Client, ServeConfig, Server};

    let facts = 100_000usize;
    let clients = 4usize;
    let samples = 100usize;

    let pick = |mut v: Vec<std::time::Duration>, q: usize| {
        v.sort_unstable();
        v[(v.len() - 1) * q / 100]
    };

    let (shared, _nodes) = shared_world(facts);
    let mut server =
        Server::start(Backend::shared(Arc::clone(&shared)), ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let base = chain_query_src(6);
    // A distinct-but-equivalent text per iteration: same chain, same
    // plan shape, renamed variables. The per-session answer cache
    // (keyed on expanded text) misses every time, so both faces pay the
    // full evaluation — the regime the 2x acceptance bound is about.
    let variant = |i: usize| base.replace("?x", &format!("?v{i}_"));

    let mut embedded = SharedSession::new(Arc::clone(&shared));
    let mut cold_rows = 0usize;
    let mut embedded_cold = Vec::with_capacity(samples);
    for i in 0..samples {
        let t = Instant::now();
        cold_rows = embedded.query(&variant(i)).expect("embedded cold").len();
        embedded_cold.push(t.elapsed());
    }
    let mut client = Client::connect(addr, "").expect("connect");
    let mut served_cold = Vec::with_capacity(samples);
    for i in samples..2 * samples {
        let t = Instant::now();
        let got = client.query(&variant(i)).expect("served cold").rows.len();
        served_cold.push(t.elapsed());
        assert_eq!(got, cold_rows, "the two faces answered differently");
    }

    // The hot regime: the identical text repeats, the answer caches
    // hit, and the served side's floor is mostly the loopback round
    // trip — reported, not bounded.
    let mut embedded_hot = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        embedded.query(&base).expect("embedded hot");
        embedded_hot.push(t.elapsed());
    }
    let mut served_hot = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        client.query(&base).expect("served hot");
        served_hot.push(t.elapsed());
    }

    // Multi-client throughput on the hot query: `clients` threads, each
    // with its own connection and warm session, for a fixed window.
    let window = std::time::Duration::from_millis(400);
    let total: u64 = std::thread::scope(|scope| {
        let base = &base;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr, &format!("load-{c}")).expect("connect load");
                    let started = Instant::now();
                    let mut n = 0u64;
                    while started.elapsed() < window {
                        client.query(base).expect("load query");
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client")).sum()
    });
    let qps = total as f64 / window.as_secs_f64();

    // Served single-fact publishes: socket + framing + the write path.
    let mut publish_samples = Vec::with_capacity(200);
    for i in 0..200u64 {
        let t = Instant::now();
        let done = client
            .publish(false, vec![(format!("E24-{i}"), "R0".into(), "N1".into())])
            .expect("publish");
        publish_samples.push(t.elapsed());
        assert_eq!(done.applied, 1);
    }

    let served_p50 = pick(served_cold.clone(), 50);
    let served_p99 = pick(served_cold, 99);
    let embedded_p50 = pick(embedded_cold.clone(), 50);
    let embedded_p99 = pick(embedded_cold, 99);
    let ratio = served_p99.as_secs_f64() / embedded_p99.as_secs_f64().max(1e-9);
    let hot_served_p50 = pick(served_hot.clone(), 50);
    let hot_served_p99 = pick(served_hot, 99);
    let hot_embedded_p50 = pick(embedded_hot.clone(), 50);
    let hot_embedded_p99 = pick(embedded_hot, 99);
    let publish_p99 = pick(publish_samples, 99);

    let mut report =
        Report::new(&["regime", "embedded p50", "embedded p99", "served p50", "served p99"]);
    report.row(&[
        "cold (evaluated)".into(),
        fmt_duration(embedded_p50),
        fmt_duration(embedded_p99),
        fmt_duration(served_p50),
        fmt_duration(served_p99),
    ]);
    report.row(&[
        "hot (cached)".into(),
        fmt_duration(hot_embedded_p50),
        fmt_duration(hot_embedded_p99),
        fmt_duration(hot_served_p50),
        fmt_duration(hot_served_p99),
    ]);

    let json = format!(
        "{{\n  \"experiment\": \"E24\",\n  \"title\": \"served vs embedded query latency \
         over loopback\",\n  \"clients\": {clients},\n  \"rows\": [\n    {{ \"facts\": \
         {facts}, \"atoms\": 6, \"answers\": {cold_rows}, \"served_p50_ns\": {}, \
         \"served_p99_ns\": {}, \"embedded_p50_ns\": {}, \"embedded_p99_ns\": {}, \
         \"p99_ratio\": {ratio:.3} }}\n  ],\n  \"hot_rows\": [\n    {{ \"facts\": {facts}, \
         \"served_p50_ns\": {}, \"served_p99_ns\": {}, \"embedded_p50_ns\": {}, \
         \"embedded_p99_ns\": {} }}\n  ],\n  \"throughput_qps\": {qps:.1},\n  \
         \"publish_p99_ns\": {}\n}}\n",
        served_p50.as_nanos(),
        served_p99.as_nanos(),
        embedded_p50.as_nanos(),
        embedded_p99.as_nanos(),
        hot_served_p50.as_nanos(),
        hot_served_p99.as_nanos(),
        hot_embedded_p50.as_nanos(),
        hot_embedded_p99.as_nanos(),
        publish_p99.as_nanos(),
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");

    section(
        "E24",
        "served vs embedded query latency over loopback (100k-fact Zipf world)",
        &report,
        &format!(
            "Shape: the server holds a real browse-layer session per connection, \
             so the evaluated work is identical by construction and the delta is \
             the serving tax — framing, the poll loop, admission, and a loopback \
             round trip. On the cold regime (distinct-but-equivalent query texts \
             defeat the answer cache, so every request evaluates a 6-atom chain \
             join) the tax disappears into the evaluation: served p99 is \
             {ratio:.2}x embedded p99 (the acceptance bound is 2x). The hot \
             regime is the floor — both faces answer from warm caches and the \
             served side is dominated by the round trip itself, which is why \
             the bound is stated over evaluated queries, not cache hits. \
             Sustained load: {clients} concurrent clients on the hot query \
             drove {qps:.0} queries/s through one server; a served single-fact \
             publish lands in {} at p99. Numbers land in BENCH_serve.json for \
             trend tracking.",
            fmt_duration(publish_p99),
        ),
    );
    drop(client);
    server.shutdown();
}
