//! E3 — Composition blow-up vs limit(n) (§3.7, §6.1).
//!
//! The paper warns composition "may have serious effect on the cost of
//! query processing" and offers limit(n). Expected shape: super-linear
//! growth in materialized facts and time as n rises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_datagen::{zipf_graph, GraphConfig};
use loosedb_engine::Database;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_composition");
    group.sample_size(10);
    for n in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("limit", n), &n, |b, &n| {
            b.iter(|| {
                let (store, _, _) = zipf_graph(&GraphConfig {
                    entities: 120,
                    relationships: 8,
                    facts: 260,
                    skew: 0.6,
                    seed: 7,
                });
                let mut db = Database::from_store(store);
                if n > 1 {
                    db.limit(n);
                }
                db.closure().expect("closure").stats().composition_facts
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
