//! E1 — Indexed template matching vs full scan (§1's trade-off principle).
//!
//! The paper's premise: investment in organization buys efficient
//! retrieval. The store keeps three rotated BTree indexes; the baseline is
//! the "unorganized heap" scan. Expected shape: the index wins by orders
//! of magnitude, growing with database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::{standard_store, STORE_SCALES};
use loosedb_store::Pattern;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_pattern_matching");
    group.sample_size(20);
    for &scale in &STORE_SCALES {
        let (store, nodes) = standard_store(scale);
        let hub = nodes[0];
        group.bench_with_input(BenchmarkId::new("indexed", scale), &scale, |b, _| {
            b.iter(|| store.matching(Pattern::from_source(hub)).count())
        });
        group.bench_with_input(BenchmarkId::new("scan", scale), &scale, |b, _| {
            b.iter(|| store.matching_scan(Pattern::from_source(hub)).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
