//! E11 — Inversion: materialized inverse facts vs on-demand flipping (§3.4).
//!
//! Materialization doubles the closure but makes inverse-direction
//! queries index hits; on demand, the client flips the pattern (and the
//! closure stays half the size). Expected shape: per-query cost is
//! nearly identical (both are one index probe); materialization pays
//! closure size and build time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_datagen::inversion_world;
use loosedb_engine::{FactView, RuleGroup};
use loosedb_store::Pattern;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_inversion");
    group.sample_size(10);

    // Materialized: query (?x, TAUGHT-BY, COURSE-5) directly.
    group.bench_function(BenchmarkId::new("materialized-build+query", 2_000), |b| {
        b.iter(|| {
            let mut db = inversion_world(2_000, 3);
            let taught_by = db.lookup_symbol("TAUGHT-BY").unwrap();
            let course = db.lookup_symbol("COURSE-5").unwrap();
            let view = db.view().expect("closure");
            view.matches(Pattern::new(Some(course), Some(taught_by), None)).expect("match").len()
        })
    });

    // On demand: inversion disabled, client flips the template.
    group.bench_function(BenchmarkId::new("on-demand-build+query", 2_000), |b| {
        b.iter(|| {
            let mut db = inversion_world(2_000, 3);
            db.exclude(RuleGroup::Inversion);
            let teaches = db.lookup_symbol("TEACHES").unwrap();
            let course = db.lookup_symbol("COURSE-5").unwrap();
            let view = db.view().expect("closure");
            view.matches(Pattern::new(None, Some(teaches), Some(course))).expect("match").len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
