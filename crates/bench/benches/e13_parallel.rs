//! E13 — Parallel vs sequential structural-rule application (engine
//! ablation; see InferenceConfig::parallel_threshold).
//!
//! Expected shape: parallel wins on wide deltas (many cores × pure
//! joins), sequential wins on tiny databases where thread setup
//! dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::structural_world;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_parallel");
    group.sample_size(10);
    for (label, threshold) in [("parallel", 1usize), ("sequential", usize::MAX)] {
        group.bench_function(BenchmarkId::new(label, 3_000), |b| {
            b.iter(|| {
                let mut db = structural_world(3_000, 60);
                db.config_mut().parallel_threshold = threshold;
                db.closure().expect("closure").len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
