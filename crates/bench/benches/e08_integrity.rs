//! E8 — Integrity-checked insert cost vs constraint presence (§2.5).
//!
//! try_add recomputes the closure and diffs violations; the price of
//! transactional integrity. Expected shape: cost scales with closure
//! size; constraints add the user-rule join on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_datagen::{company, CompanyConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_integrity");
    group.sample_size(10);
    for with_constraints in [false, true] {
        let label = if with_constraints { "with-constraints" } else { "no-constraints" };
        group.bench_function(BenchmarkId::new(label, 100), |b| {
            b.iter(|| {
                let mut db = company(&CompanyConfig {
                    employees: 100,
                    departments: 8,
                    with_constraints,
                    seed: 3,
                });
                db.refresh().expect("closure");
                let mut accepted = 0;
                for i in 0..5 {
                    if db.try_add(format!("NEW-{i}"), "LOVES", "EMP-0").is_ok() {
                        accepted += 1;
                    }
                }
                accepted
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
