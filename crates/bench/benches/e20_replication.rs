//! E20 — WAL-shipped replication: write-to-follower-visible latency.
//!
//! A leader seeded with the standard world ships CRC-framed WAL ops to
//! a follower over an in-memory filesystem; each iteration commits one
//! leader write and polls the follower until it has published the op.
//! Expected shape: ship-and-apply latency is flat in database size
//! (frame verify + mirror fsync + O(delta) publish), and taking a
//! follower snapshot stays a pointer bump — the follower serves reads
//! off the same generation machinery as a standalone [`SharedDatabase`].
//!
//! [`SharedDatabase`]: loosedb_engine::SharedDatabase

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::standard_store;
use loosedb_engine::{
    Database, DurableDatabase, InferenceConfig, Replica, ReplicaOptions, SyncPolicy,
};
use loosedb_store::io::MemIo;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_replication");
    group.sample_size(10);
    for facts in [50_000usize, 200_000] {
        let (store, _) = standard_store(facts);
        let mut db = Database::from_store(store);
        *db.config_mut() = InferenceConfig::none();
        let mem = Arc::new(MemIo::new());
        let mut leader = DurableDatabase::create_with(
            Arc::clone(&mem),
            "/leader",
            db,
            0,
            SyncPolicy::OnCheckpoint,
        )
        .expect("create leader");
        let mut replica =
            Replica::open_with(Arc::clone(&mem), "/leader", "/replica", ReplicaOptions::default())
                .expect("bootstrap");
        replica.catch_up().expect("catch up");

        let mut i = 0u64;
        group.bench_function(BenchmarkId::new("ship_one_fact", facts), |b| {
            b.iter(|| {
                i += 1;
                leader.add(format!("E20-{i}"), "E20-LINK", format!("E20-{}", i / 2)).expect("add");
                let mut applied = 0;
                while applied == 0 {
                    applied = replica.poll().expect("poll").ops_applied;
                }
                applied
            })
        });
        group.bench_function(BenchmarkId::new("follower_snapshot", facts), |b| {
            b.iter(|| replica.shared().snapshot().epoch())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
