//! E7 — Semi-naive vs naive fixpoint evaluation (engine ablation).
//!
//! Expected shape: semi-naive wins, and the gap widens with closure depth
//! (the naive strategy re-derives everything every round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::structural_world;
use loosedb_engine::Strategy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_seminaive");
    group.sample_size(10);
    for (label, strategy) in [("semi-naive", Strategy::SemiNaive), ("naive", Strategy::Naive)] {
        group.bench_function(BenchmarkId::new(label, 600), |b| {
            b.iter(|| {
                let mut db = structural_world(600, 30);
                db.set_strategy(strategy);
                db.closure().expect("closure").len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
