//! E6 — Greedy (selectivity-ordered) vs syntactic conjunct order (§2.7).
//!
//! The query puts its most selective atom last; the planner must find it.
//! Expected shape: greedy wins by a factor that grows with database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_datagen::{university, UniversityConfig};
use loosedb_query::{eval_with, parse, AtomOrdering, EvalOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_planner");
    group.sample_size(10);
    let mut db = university(&UniversityConfig {
        students: 300,
        courses: 20,
        instructors: 8,
        enrollments_per_student: 3,
        seed: 1,
    });
    // Adversarial order: the broad atoms first, the selective one last.
    let src = "Q(?s) := exists ?e ?g . (?e, ENROLL-GRADE, ?g) \
               & (?e, ENROLL-STUDENT, ?s) & (?g, =, A) & (?e, ENROLL-COURSE, CRS-0)";
    let query = parse(src, db.store_interner_mut()).unwrap();
    let view = db.view().unwrap();
    for (label, ordering) in
        [("greedy", AtomOrdering::Greedy), ("syntactic", AtomOrdering::Syntactic)]
    {
        group.bench_function(BenchmarkId::new(label, 300), |b| {
            b.iter(|| {
                eval_with(
                    &query,
                    &view,
                    EvalOptions { ordering, max_rows: 10_000_000, ..EvalOptions::default() },
                )
                .expect("eval")
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
