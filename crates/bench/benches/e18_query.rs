//! E18 — set-at-a-time hash joins vs the nested-loop oracle, and the
//! shape-keyed plan cache's hit/miss latency split.
//!
//! Chain queries (`chain_query_src`) share a variable between adjacent
//! atoms, so the hash join probes each atom once per *distinct* binding
//! of the shared variable where the nested loop probes once per partial
//! row. Expected shape: the gap widens with atom count and world size.
//! The adaptive row lets the cost model pick per shape; it should track
//! the better of the two forced strategies at every atom count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::{chain_query_src, query_world};
use loosedb_query::{
    eval_with, parse, plan_query, EvalOptions, ExecStrategy, PlanCache, QueryPlan,
};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_query");
    group.sample_size(10);
    let mut db = query_world(50_000);
    let opts = |strategy| EvalOptions { strategy, max_rows: 10_000_000, ..Default::default() };

    for atoms in [2usize, 3, 4] {
        let src = chain_query_src(atoms);
        let query = parse(&src, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        for (label, strategy) in [
            ("adaptive", ExecStrategy::Adaptive),
            ("hash-join", ExecStrategy::HashJoin),
            ("nested-loop", ExecStrategy::NestedLoop),
        ] {
            group.bench_function(BenchmarkId::new(label, atoms), |b| {
                b.iter(|| eval_with(&query, &view, opts(strategy)).expect("eval").len())
            });
        }
    }

    // Plan-cache split: cold planning probes the view per atom; a hit is
    // one shape hash plus a map lookup.
    let src = chain_query_src(4);
    let query = parse(&src, db.store_interner_mut()).unwrap();
    let view = db.view().unwrap();
    let eval_opts = opts(ExecStrategy::HashJoin);
    group.bench_function(BenchmarkId::new("plan", "cold"), |b| {
        b.iter(|| plan_query(&query, &view, &eval_opts).probes())
    });
    let mut plans = PlanCache::new(8);
    let plan: Arc<QueryPlan> = Arc::new(plan_query(&query, &view, &eval_opts));
    plans.insert(&query, &eval_opts, plan);
    group.bench_function(BenchmarkId::new("plan", "cache-hit"), |b| {
        b.iter(|| plans.get(&query, &eval_opts).expect("cached").groups().len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
