//! E23 — sharded scatter-gather vs a single store.
//!
//! Facts are hash-partitioned by source entity across N shards, each
//! with its own generation chain. A *collocated* query (every conjunct
//! sourced at the same variable) is evaluated whole on every shard and
//! the answers are unioned: per-shard indexes, join build tables and
//! dedup sets are 1/N the size, and on a multi-core host the per-shard
//! evaluations fan out across the worker pool. The single-shard row is
//! the baseline; the publish group checks that per-shard publish stays
//! O(delta) as the world grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::{sharded_world, star_query_src};
use loosedb_query::{eval_sharded, parse_frozen, EvalOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e23_shard");
    group.sample_size(10);

    let facts = 100_000;
    // The unanchored star legitimately produces many rows; match E18's
    // raised ceiling so the budget never truncates the measurement.
    let opts = EvalOptions { max_rows: 10_000_000, ..Default::default() };
    for n in [1usize, 2, 4, 8] {
        let db = sharded_world(facts, n);
        let snap = db.snapshot();
        let query = parse_frozen(&star_query_src(2), snap.interner()).unwrap();
        let views = snap.views();
        group.bench_function(BenchmarkId::new("collocated_star", n), |b| {
            b.iter(|| {
                eval_sharded(&query, &views, snap.interner(), opts, None)
                    .expect("eval")
                    .answer
                    .len()
            })
        });
    }

    // Publish latency must track the delta, not the shard count or the
    // world size: inserting one owner-routed fact on a 4-shard world.
    let db = sharded_world(facts, 4);
    let mut i = 0u64;
    group.bench_function(BenchmarkId::new("publish_owner_fact", 4), |b| {
        b.iter(|| {
            i += 1;
            db.insert(format!("FRESH-{i}"), "R0", "N1").expect("insert")
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
