//! E14 — Goal-directed proving vs materialize-then-check (engine
//! ablation; the paper's open "performance" problem, §6.2).
//!
//! A cold single-fact membership question ("does John earn a salary?")
//! can be answered by the structural Prover without computing the
//! closure. Expected shape: the prover wins by orders of magnitude for
//! cold checks; the materialized closure wins once many queries amortize
//! its cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::structural_world;
use loosedb_engine::{InferenceConfig, KindRegistry, Prover};
use loosedb_store::Fact;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_prover");
    group.sample_size(10);

    let mut db = structural_world(2_000, 50);
    db.config_mut().user_rules = false;
    let p0 = db.lookup_symbol("P0").unwrap();
    let has_trait = db.lookup_symbol("HAS-TRAIT").unwrap();
    let trait0 = db.lookup_symbol("TRAIT-0").unwrap();
    let goal = Fact::new(p0, has_trait, trait0); // derived by M1

    group.bench_function(BenchmarkId::new("cold-forward-closure", 2_000), |b| {
        b.iter(|| {
            let mut fresh = structural_world(2_000, 50);
            fresh.config_mut().user_rules = false;
            fresh.closure().expect("closure").contains(&goal)
        })
    });
    group.bench_function(BenchmarkId::new("cold-prover", 2_000), |b| {
        let kinds = KindRegistry::new();
        let config = InferenceConfig { user_rules: false, ..Default::default() };
        b.iter(|| {
            let fresh = structural_world(2_000, 50);
            Prover::new(fresh.store(), &kinds, &config).prove(&goal)
        })
    });
    // Warm: the closure is already materialized; a check is an index hit.
    db.refresh().expect("closure");
    group.bench_function(BenchmarkId::new("warm-materialized-check", 2_000), |b| {
        b.iter(|| db.closure().expect("cached").contains(&goal))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
