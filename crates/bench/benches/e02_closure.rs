//! E2 — Closure materialization cost vs enabled rule groups (§3).
//!
//! Measures the cost of each standard rule family on a membership-heavy
//! world. Expected shape: cost grows with the number of enabled groups;
//! synonym substitution is the most expensive per fact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::structural_world;
use loosedb_engine::{InferenceConfig, RuleGroup};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_closure");
    group.sample_size(10);
    type ConfigMaker = fn() -> InferenceConfig;
    let configs: [(&str, ConfigMaker); 4] = [
        ("none", InferenceConfig::none),
        ("generalization", || {
            let mut c = InferenceConfig::none();
            c.include(RuleGroup::Generalization);
            c
        }),
        ("gen+membership", || {
            let mut c = InferenceConfig::none();
            c.include(RuleGroup::Generalization).include(RuleGroup::Membership);
            c
        }),
        ("all-default", InferenceConfig::default),
    ];
    for (name, make) in configs {
        group.bench_with_input(BenchmarkId::new(name, 800), &(), |b, _| {
            b.iter(|| {
                let mut db = structural_world(800, 40);
                *db.config_mut() = make();
                db.closure().expect("closure").len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
