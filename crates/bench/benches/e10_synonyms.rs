//! E10 — Synonym inference: closure cost vs synonym density (§3.3).
//!
//! Every synonym pair triples (symmetry + two gen facts) and duplicates
//! facts mentioning either name. Expected shape: closure size and time
//! grow linearly in density (clique-free worlds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_datagen::synonym_world;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_synonyms");
    group.sample_size(10);
    for density in [0.0f64, 0.1, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("density", format!("{density:.1}")),
            &density,
            |b, &density| {
                b.iter(|| {
                    let mut db = synonym_world(1_000, density, 7);
                    db.closure().expect("closure").len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
