//! E9 — relation() operator vs the equivalent hand-written query (§6.1).
//!
//! The operator is implemented with targeted index probes per instance;
//! the query goes through the generic evaluator. Expected shape: same
//! results, operator moderately faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_browse::relation;
use loosedb_datagen::{university, UniversityConfig};
use loosedb_query::{eval, parse};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_relation_op");
    group.sample_size(10);
    let mut db = university(&UniversityConfig {
        students: 200,
        courses: 15,
        instructors: 6,
        enrollments_per_student: 3,
        seed: 2,
    });
    let enrollment = db.lookup_symbol("ENROLLMENT").unwrap();
    let stu_rel = db.lookup_symbol("ENROLL-STUDENT").unwrap();
    let student = db.lookup_symbol("STUDENT").unwrap();
    let grade_rel = db.lookup_symbol("ENROLL-GRADE").unwrap();
    let grade = db.lookup_symbol("GRADE").unwrap();
    let query = parse(
        "Q(?e, ?s, ?g) := (?e, isa, ENROLLMENT) & (?e, ENROLL-STUDENT, ?s) \
         & (?e, ENROLL-GRADE, ?g) & (?s, isa, STUDENT) & (?g, isa, GRADE)",
        db.store_interner_mut(),
    )
    .unwrap();
    let view = db.view().unwrap();
    group.bench_function(BenchmarkId::new("relation-operator", 200), |b| {
        b.iter(|| {
            relation(&view, enrollment, &[(stu_rel, student), (grade_rel, grade)])
                .expect("relation")
                .rows
                .len()
        })
    });
    group.bench_function(BenchmarkId::new("hand-written-query", 200), |b| {
        b.iter(|| eval(&query, &view).expect("eval").len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
