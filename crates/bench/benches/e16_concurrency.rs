//! E16 — Snapshot-isolated concurrent reads over `SharedDatabase`.
//!
//! Reader threads navigate random entity neighborhoods of the 50k-fact
//! Zipf world through immutable `Arc<Generation>` snapshots, scaling
//! 1→8 threads, with a writer paced to 0%, 1% or 10% of total
//! operations. Expected shape: read throughput scales with reader count
//! up to the core count (readers never take a lock during evaluation),
//! and the p99 read latency under a write mix stays close to the
//! read-only p99 (a publish is a pointer swap, not a pause).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::{run_mix, shared_world};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_concurrency");
    group.sample_size(10);
    let window = Duration::from_millis(200);
    for write_pct in [0u32, 1, 10] {
        for readers in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new(format!("write{write_pct}pct"), readers), |b| {
                b.iter(|| {
                    let (shared, nodes) = shared_world(50_000);
                    let outcome = run_mix(&shared, &nodes, readers, write_pct, window);
                    (outcome.reads, outcome.p99)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
