//! E15 — Incremental closure maintenance vs full recomputation on insert.
//!
//! `try_add`/`add_incremental` extend a warm closure with the new fact's
//! consequences only; the baseline recomputes from scratch. Expected
//! shape: incremental cost is proportional to the fact's consequence
//! cone, not the database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::structural_world;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_incremental");
    group.sample_size(10);
    for people in [500usize, 2_000] {
        group.bench_with_input(
            BenchmarkId::new("incremental-insert", people),
            &people,
            |b, &people| {
                let mut db = structural_world(people, 50);
                db.refresh().expect("closure");
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    db.add_incremental(format!("NEW-{i}"), "KNOWS", "P0").expect("insert")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute-insert", people),
            &people,
            |b, &people| {
                let mut db = structural_world(people, 50);
                db.refresh().expect("closure");
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    db.add(format!("NEW-{i}"), "KNOWS", "P0"); // invalidates
                    db.closure().expect("closure").len() // full recompute
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
