//! E24 — the serving layer's tax: a query over a loopback socket vs the
//! same query embedded.
//!
//! The server holds a real browse-layer session per connection, so the
//! *evaluated* cost is identical by construction; what the bench
//! measures is everything wrapped around it — framing, the poll loop,
//! the admission path and a loopback round trip. Two regimes:
//!
//! * `cold_*` — every iteration evaluates (the query text varies, so
//!   per-session answer caches miss): the serve tax should disappear
//!   into the evaluation cost.
//! * `hot_*` — the identical query repeats (answer caches hit): this is
//!   the floor, and it is mostly the socket round trip.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use loosedb_bench::{chain_query_src, shared_world};
use loosedb_browse::SharedSession;
use loosedb_serve::{Backend, Client, ServeConfig, Server};

/// A distinct-but-equivalent query text: same chain, same plan shape,
/// different variable names, so the answer cache cannot help.
fn variant(base: &str, i: u64) -> String {
    base.replace("?x", &format!("?v{i}_"))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e24_serve");
    group.sample_size(10);

    let (shared, _nodes) = shared_world(100_000);
    let server =
        Server::start(Backend::shared(Arc::clone(&shared)), ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let base = chain_query_src(6);

    let mut embedded = SharedSession::new(Arc::clone(&shared));
    let mut i = 0u64;
    group.bench_function("cold_embedded", |b| {
        b.iter(|| {
            i += 1;
            embedded.query(&variant(&base, i)).expect("query").len()
        })
    });
    let mut client = Client::connect(addr, "").expect("connect");
    group.bench_function("cold_served", |b| {
        b.iter(|| {
            i += 1;
            client.query(&variant(&base, i)).expect("query").rows.len()
        })
    });

    group
        .bench_function("hot_embedded", |b| b.iter(|| embedded.query(&base).expect("query").len()));
    group.bench_function("hot_served", |b| {
        b.iter(|| client.query(&base).expect("query").rows.len())
    });

    // A served single-fact publish: socket + framing + the write path.
    let mut n = 0u64;
    group.bench_function("served_publish", |b| {
        b.iter(|| {
            n += 1;
            client
                .publish(false, vec![(format!("E24-{n}"), "R0".into(), "N1".into())])
                .expect("publish")
                .applied
        })
    });

    group.finish();
    drop(client);
    drop(server); // graceful shutdown via Drop
}

criterion_group!(benches, bench);
criterion_main!(benches);
