//! E17 — O(delta) generation publish over structurally-shared indexes.
//!
//! A single-fact write through `SharedDatabase::insert` extends the
//! closure incrementally and publishes a new generation by path-copying
//! O(log N) persistent-index nodes; everything untouched is shared by
//! `Arc`. Expected shape: publish latency is flat in database size (the
//! seed's deep-copy publish grew linearly), and taking a snapshot stays
//! a pointer bump regardless of scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::shared_world;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_publish");
    group.sample_size(10);
    for facts in [50_000usize, 200_000] {
        let (shared, _) = shared_world(facts);
        let mut i = 0u64;
        group.bench_function(BenchmarkId::new("single_fact_publish", facts), |b| {
            b.iter(|| {
                i += 1;
                shared
                    .insert(format!("E17-{i}"), "E17-LINK", format!("E17-{}", i / 2))
                    .expect("insert")
            })
        });
        group.bench_function(BenchmarkId::new("snapshot", facts), |b| {
            b.iter(|| shared.snapshot().epoch())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
