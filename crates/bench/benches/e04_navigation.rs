//! E4 — Navigation neighborhood latency vs entity degree (§4.1).
//!
//! Expected shape: latency linear in the degree of the focused entity;
//! the Zipf hub costs orders of magnitude more than the tail.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::standard_store;
use loosedb_browse::{navigate, NavigateOptions};
use loosedb_engine::{ClosureView, Database};
use loosedb_store::Pattern;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_navigation");
    group.sample_size(20);
    let (store, nodes) = standard_store(50_000);
    let mut db = Database::from_store(store);
    *db.config_mut() = loosedb_engine::InferenceConfig::none();
    db.refresh().expect("closure");
    let picks =
        [("hub", nodes[0]), ("mid", nodes[nodes.len() / 2]), ("tail", nodes[nodes.len() - 1])];
    for (label, node) in picks {
        let view: ClosureView<'_> = db.view().expect("closure");
        group.bench_with_input(BenchmarkId::new(label, 50_000), &node, |b, &node| {
            b.iter(|| {
                navigate(&view, Pattern::from_source(node), &NavigateOptions::default())
                    .expect("navigate")
                    .height()
            })
        });
        drop(view);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
