//! E12 — Persistence: snapshot encode/decode, log replay vs size, WAL
//! append throughput per sync policy, and crash-recovery (open) time
//! (the paper's open "storage strategies" problem, §6.2).
//!
//! Expected shape: snapshot encode/decode and replay linear in fact
//! count; WAL appends gated by fsync frequency (`Always` pays one fsync
//! per op, `EveryN`/`OnCheckpoint` amortize it away); recovery time is
//! snapshot decode plus linear WAL-tail replay.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::standard_store;
use loosedb_engine::{DurableDatabase, SyncPolicy};
use loosedb_store::{log, snapshot, FactLog, FactStore};

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("loosedb-e12-{tag}-{}", std::process::id()))
}

/// Appends `n` insert ops through the durable journal.
fn append_ops(db: &mut DurableDatabase, n: usize) {
    for i in 0..n {
        db.add(format!("E{}", i % 500), format!("R{}", i % 10), format!("E{}", (i * 3) % 500))
            .expect("durable add");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_persistence");
    group.sample_size(10);
    for scale in [10_000usize, 100_000] {
        let (store, _) = standard_store(scale);
        let encoded = snapshot::encode(&store);
        group.bench_with_input(BenchmarkId::new("snapshot-encode", scale), &scale, |b, _| {
            b.iter(|| snapshot::encode(&store).len())
        });
        group.bench_with_input(BenchmarkId::new("snapshot-decode", scale), &scale, |b, _| {
            b.iter(|| snapshot::decode(encoded.clone()).expect("decode").len())
        });
    }
    // Log replay of 10k operations.
    let mut the_log = FactLog::new();
    for i in 0..10_000 {
        the_log.insert(
            format!("E{}", i % 500),
            format!("R{}", i % 10),
            format!("E{}", (i * 3) % 500),
        );
    }
    group.bench_function(BenchmarkId::new("log-replay", 10_000), |b| {
        b.iter(|| {
            let mut store = FactStore::new();
            log::replay(the_log.bytes(), &mut store).expect("replay")
        })
    });

    // WAL append throughput per sync policy: one long-lived journal, a
    // batch of appends per iteration (the WAL grows across iterations;
    // appends stay O(1) each).
    const BATCH: usize = 500;
    for (name, policy) in [
        ("always", SyncPolicy::Always),
        ("every-64", SyncPolicy::EveryN(64)),
        ("on-checkpoint", SyncPolicy::OnCheckpoint),
    ] {
        let dir = bench_dir(&format!("append-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut db = DurableDatabase::open(&dir, policy).expect("open");
        group.bench_with_input(BenchmarkId::new("wal-append", name), &BATCH, |b, &n| {
            b.iter(|| append_ops(&mut db, n))
        });
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Recovery time: reopen a directory holding a checkpointed snapshot
    // of 10k ops plus a 2k-op WAL tail.
    let dir = bench_dir("recover");
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut db = DurableDatabase::open(&dir, SyncPolicy::OnCheckpoint).expect("open");
        append_ops(&mut db, 10_000);
        db.checkpoint().expect("checkpoint");
        append_ops(&mut db, 2_000);
        db.sync().expect("sync");
    }
    group.bench_function(BenchmarkId::new("recovery-open", "10k+2k-wal"), |b| {
        b.iter(|| {
            let db = DurableDatabase::open(&dir, SyncPolicy::OnCheckpoint).expect("recover");
            assert_eq!(db.recovery().wal_ops_applied, 2_000);
            db.database_ref().store().len()
        })
    });
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
