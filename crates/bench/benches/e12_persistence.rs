//! E12 — Persistence: snapshot encode/decode and log replay vs size
//! (the paper's open "storage strategies" problem, §6.2).
//!
//! Expected shape: linear in fact count; decode dominated by re-interning
//! and re-indexing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::standard_store;
use loosedb_store::{log, snapshot, FactLog, FactStore};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_persistence");
    group.sample_size(10);
    for scale in [10_000usize, 100_000] {
        let (store, _) = standard_store(scale);
        let encoded = snapshot::encode(&store);
        group.bench_with_input(BenchmarkId::new("snapshot-encode", scale), &scale, |b, _| {
            b.iter(|| snapshot::encode(&store).len())
        });
        group.bench_with_input(BenchmarkId::new("snapshot-decode", scale), &scale, |b, _| {
            b.iter(|| snapshot::decode(encoded.clone()).expect("decode").len())
        });
    }
    // Log replay of 10k operations.
    let mut the_log = FactLog::new();
    for i in 0..10_000 {
        the_log.insert(format!("E{}", i % 500), format!("R{}", i % 10), format!("E{}", (i * 3) % 500));
    }
    group.bench_function(BenchmarkId::new("log-replay", 10_000), |b| {
        b.iter(|| {
            let mut store = FactStore::new();
            log::replay(the_log.bytes(), &mut store).expect("replay")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
