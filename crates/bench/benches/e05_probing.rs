//! E5 — Retraction-set size and waves-to-success vs taxonomy shape (§5).
//!
//! Expected shape: the retraction set grows with branching; waves to
//! success grow with depth (the answer sits near the root).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_browse::{probe, ProbeOptions};
use loosedb_datagen::{taxonomy, TaxonomyConfig};
use loosedb_query::parse;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_probing");
    group.sample_size(10);
    for (depth, branching) in [(2usize, 2usize), (3, 3), (4, 3)] {
        let label = format!("d{depth}b{branching}");
        group.bench_function(BenchmarkId::new(label, depth), |b| {
            b.iter(|| {
                let mut t =
                    taxonomy(&TaxonomyConfig { depth, branching, dag_probability: 0.0, seed: 5 });
                // Data only at the root: probing must climb all the way.
                let root_name = t.db.display(t.root());
                let leaf_name = t.db.display(t.leaves()[0]);
                t.db.add("JOHN", "WANTS", root_name.as_str());
                let src = format!("(JOHN, WANTS, {leaf_name})");
                let query = parse(&src, t.db.store_interner_mut()).unwrap();
                let view = t.db.view().unwrap();
                let report = probe(&query, &view, &ProbeOptions::default());
                report.waves.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
