//! E21 — Incremental retraction vs full recomputation on remove.
//!
//! `remove_incremental` runs the support-counted delete-and-rederive
//! wave over the removed fact's consequence cone only; the baseline
//! invalidates the closure and recomputes from scratch. Expected shape:
//! incremental cost is proportional to the consequence set (near-zero
//! for a leaf fact, the inherited-fact count for a membership edge),
//! not the database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::structural_world;
use loosedb_store::Fact;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_retraction");
    group.sample_size(10);
    for people in [500usize, 2_000] {
        group.bench_with_input(
            BenchmarkId::new("incremental-remove", people),
            &people,
            |b, &people| {
                let mut db = structural_world(people, 50);
                db.refresh().expect("closure");
                let mut i = 0usize;
                b.iter(|| {
                    // Add (incrementally, not timed as removal work) then
                    // retract a leaf fact: the wave has one seed and a
                    // small consequence cone.
                    i += 1;
                    let fact =
                        db.add_incremental(format!("NEW-{i}"), "KNOWS", "P0").expect("insert");
                    db.remove_incremental(&fact).expect("retract")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute-remove", people),
            &people,
            |b, &people| {
                let mut db = structural_world(people, 50);
                db.refresh().expect("closure");
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    let fact = db.add(format!("NEW-{i}"), "KNOWS", "P0");
                    db.remove(&fact); // invalidates
                    db.closure().expect("closure").len() // full recompute
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental-remove-membership", people),
            &people,
            |b, &people| {
                // Retracting a membership edge drops every fact the
                // person inherited from the class — the hub-ish case.
                let mut db = structural_world(people, 50);
                db.refresh().expect("closure");
                let class = "CLASS-0".to_string();
                b.iter(|| {
                    let fact =
                        Fact::new(db.entity("P0"), db.entity("isa"), db.entity(class.as_str()));
                    db.remove_incremental(&fact).expect("retract");
                    db.add_incremental("P0", "isa", class.as_str()).expect("reinsert")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
