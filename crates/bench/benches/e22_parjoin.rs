//! E22 — parallel partitioned hash joins vs the sequential executor.
//!
//! The partitioned path scatters distinct join keys and probe rows by
//! join-key hash across the closure worker pool, deduplicates per
//! partition, and merges by arena concatenation. On a single-core host
//! the pool runs tasks inline, so `Force` mode still exercises the
//! scatter/merge machinery; real speedup needs `workers() > 1`. The
//! sequential row is the baseline the cost gate falls back to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loosedb_bench::{chain_query_src, query_world};
use loosedb_engine::pool::workers;
use loosedb_query::{eval_with, parse, EvalOptions, ExecStrategy, ParallelMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e22_parjoin");
    group.sample_size(10);
    let mut db = query_world(50_000);
    let opts = |parallel| EvalOptions {
        strategy: ExecStrategy::HashJoin,
        parallel,
        max_rows: 10_000_000,
        ..Default::default()
    };

    for atoms in [3usize, 4, 5] {
        let src = chain_query_src(atoms);
        let query = parse(&src, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let nparts = workers().max(2);
        for (label, parallel) in
            [("sequential", ParallelMode::Off), ("partitioned", ParallelMode::Force(nparts))]
        {
            group.bench_function(BenchmarkId::new(label, atoms), |b| {
                b.iter(|| eval_with(&query, &view, opts(parallel)).expect("eval").len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
