//! Fault-injected crash sweep for WAL-shipped replicas.
//!
//! A leader (on an always-synced [`MemIo`]) drives a deterministic
//! workload with checkpoints mid-stream while a follower tails it
//! through [`FaultIo`] — so the follower is killed at *every* mutating
//! I/O point of its bootstrap, mirror-append, replay-publish and
//! cursor-commit sequence in turn. After each kill the memory filesystem
//! is crashed (unsynced bytes vanish), the follower is reopened through
//! a clean handle, and the suite asserts:
//!
//! * the recovered replica state is a *prefix* of the leader's workload
//!   — never a torn or bit-flipped mixture (every mirrored frame is
//!   re-verified against its CRC during resume);
//! * catching up from the recovered cursor converges to exactly the
//!   leader's final state.
//!
//! The sweep runs twice: with `retain_wals = 0`, leader checkpoints
//! retire segments while the follower holds a cursor into them (the
//! re-bootstrap path), and with `retain_wals = 1`, the follower walks
//! through rotation on the retained WAL (the local-checkpoint path).
//! Both cover the satellite case of a checkpoint racing an active
//! [`FrameStream`] tail.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use loosedb_engine::{Database, DurableDatabase, Replica, ReplicaOptions, SyncPolicy};
use loosedb_store::io::{FaultIo, MemIo};
use loosedb_store::{EntityValue, FactStore, StorageIo};

/// One workload operation, self-describing like a WAL record.
#[derive(Clone, Debug)]
enum Op {
    Insert(EntityValue, EntityValue, EntityValue),
    Remove(EntityValue, EntityValue, EntityValue),
}

const TOTAL_OPS: usize = 72;
const CHECKPOINTS: &[usize] = &[24, 48];
const POLL_EVERY: usize = 3;

fn opts() -> ReplicaOptions {
    // Small batches keep the follower lagging, so checkpoints genuinely
    // race an in-progress tail.
    ReplicaOptions { batch_ops: 2, max_retries: 2, retry_backoff: Duration::ZERO }
}

/// A deterministic workload: inserts of symbols and numbers with
/// removals (some no-ops) mixed in, from a seeded LCG.
fn workload() -> Vec<Op> {
    let mut rng: u64 = 0xA076_1D64_78BD_642F;
    let mut step = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (rng >> 33) as u32
    };
    let mut inserted: Vec<(EntityValue, EntityValue, EntityValue)> = Vec::new();
    let mut ops = Vec::with_capacity(TOTAL_OPS);
    for i in 0..TOTAL_OPS {
        let roll = step();
        if i % 5 == 3 && !inserted.is_empty() {
            let (s, r, t) = inserted[(roll as usize) % inserted.len()].clone();
            ops.push(Op::Remove(s, r, t));
        } else {
            let s = EntityValue::symbol(format!("E{}", step() % 18));
            let r = EntityValue::symbol(format!("R{}", step() % 6));
            let t = match step() % 2 {
                0 => EntityValue::symbol(format!("T{}", step() % 9)),
                _ => EntityValue::Int((step() % 30) as i64),
            };
            inserted.push((s.clone(), r.clone(), t.clone()));
            ops.push(Op::Insert(s, r, t));
        }
    }
    ops
}

/// Canonical, id-independent rendering of the base facts — a
/// re-bootstrapped follower (fresh interning) compares equal to the
/// leader.
type State = BTreeSet<String>;

fn rendered(store: &FactStore) -> State {
    store
        .iter()
        .map(|f| format!("{} {} {}", store.value(f.s), store.value(f.r), store.value(f.t)))
        .collect()
}

/// Oracle: `states[j]` is the state after the first `j` ops.
fn oracle_states(ops: &[Op]) -> Vec<State> {
    let mut db = Database::new();
    let mut states = vec![rendered(db.store())];
    for op in ops {
        match op {
            Op::Insert(s, r, t) => {
                db.add(s.clone(), r.clone(), t.clone());
            }
            Op::Remove(s, r, t) => {
                let f = loosedb_store::Fact::new(
                    db.entity(s.clone()),
                    db.entity(r.clone()),
                    db.entity(t.clone()),
                );
                db.remove(&f);
            }
        }
        states.push(rendered(db.store()));
    }
    states
}

fn leader_apply(leader: &mut DurableDatabase<Arc<MemIo>>, op: &Op) {
    match op {
        Op::Insert(s, r, t) => {
            leader.add(s.clone(), r.clone(), t.clone()).unwrap();
        }
        Op::Remove(s, r, t) => {
            let inner = leader.database();
            let f = loosedb_store::Fact::new(
                inner.entity(s.clone()),
                inner.entity(r.clone()),
                inner.entity(t.clone()),
            );
            leader.remove(&f).unwrap();
        }
    }
}

/// Runs the full leader workload while a follower (behind `FaultIo`
/// with `fault_limit`) tails it. The leader never faults and always
/// finishes; the follower is dropped at its first error. Returns the
/// faulted follower's I/O op count when it survived the whole run.
fn drive(mem: &Arc<MemIo>, fault_limit: usize, retain: u64, ops: &[Op]) -> Option<usize> {
    let mut leader =
        DurableDatabase::open_with(Arc::clone(mem), "/leader", SyncPolicy::Always).unwrap();
    leader.set_retain_wals(retain);
    let faulty = FaultIo::new(Arc::clone(mem), fault_limit);
    let mut replica = Replica::open_with(faulty, "/leader", "/replica", opts()).ok();
    for (i, op) in ops.iter().enumerate() {
        leader_apply(&mut leader, op);
        if CHECKPOINTS.contains(&(i + 1)) {
            leader.checkpoint().unwrap();
        }
        if (i + 1) % POLL_EVERY == 0 {
            if let Some(r) = &mut replica {
                if r.poll().is_err() {
                    replica = None;
                }
            }
        }
    }
    // Drain: crash points past the interleave land in catch-up.
    if let Some(r) = &mut replica {
        if r.catch_up().is_err() {
            replica = None;
        }
    }
    replica.map(|r| r.io_ref().ops_used())
}

/// The sweep: kill the follower at every one of its mutating I/O
/// points, crash the filesystem, reopen through a clean handle, and
/// check prefix-consistency plus convergence.
fn sweep(retain: u64) {
    let ops = workload();
    let states = oracle_states(&ops);

    let probe = Arc::new(MemIo::new());
    let total_io =
        drive(&probe, usize::MAX, retain, &ops).expect("fault-free follower must survive");
    assert!(total_io > 20, "suspiciously few follower I/O points: {total_io}");
    // The fault-free follower converged; pin that before sweeping.
    {
        let mut replica = Replica::open_with(probe, "/leader", "/replica", opts()).unwrap();
        replica.catch_up().unwrap();
        assert_eq!(rendered(replica.shared().snapshot().store()), states[TOTAL_OPS]);
    }

    let mut resumed_after_crash = 0usize;
    let mut rebootstrapped_after_crash = 0usize;
    for crash_at in 0..total_io {
        let mem = Arc::new(MemIo::new());
        assert!(
            drive(&mem, crash_at, retain, &ops).is_none(),
            "crash point {crash_at} did not crash the follower"
        );
        // Power loss: unsynced bytes vanish (the leader synced
        // everything; only follower-local state can be torn).
        mem.crash();
        let mut replica = Replica::open_with(Arc::clone(&mem), "/leader", "/replica", opts())
            .unwrap_or_else(|e| panic!("reopen after crash at {crash_at}: {e}"));
        if replica.info().resumed {
            resumed_after_crash += 1;
        } else {
            rebootstrapped_after_crash += 1;
        }
        // The recovered state is a CRC-verified *prefix* of the
        // workload, never a torn mixture.
        let recovered = rendered(replica.shared().snapshot().store());
        assert!(
            states.contains(&recovered),
            "crash at {crash_at}: recovered replica state is not a workload prefix"
        );
        // And from that prefix the follower converges to the leader.
        replica.catch_up().unwrap_or_else(|e| panic!("catch-up after crash at {crash_at}: {e}"));
        assert_eq!(
            rendered(replica.shared().snapshot().store()),
            states[TOTAL_OPS],
            "crash at {crash_at}: follower did not converge after recovery"
        );
        // Leader files were never touched by the follower's crash.
        assert!(mem.exists(Path::new("/leader/MANIFEST")));
    }
    // The sweep must exercise both recovery paths, or the assertions
    // above test less than they claim.
    assert!(resumed_after_crash > 0, "sweep never resumed from local state");
    assert!(rebootstrapped_after_crash > 0, "sweep never re-bootstrapped");
}

#[test]
fn follower_killed_at_every_io_point_recovers_and_converges_with_retirement() {
    // retain_wals = 0: every leader checkpoint retires the segment the
    // lagging follower is tailing — rotation races the active cursor
    // and recovery goes through snapshot re-bootstrap.
    sweep(0);
}

#[test]
fn follower_killed_at_every_io_point_recovers_and_converges_with_retained_wal() {
    // retain_wals = 1: the follower walks through rotation on the
    // retained WAL, so crash points land inside the local-checkpoint
    // sequence (base write → mirror reset → cursor advance) too.
    sweep(1);
}

#[test]
fn checkpoint_retires_segment_under_an_active_cursor_mid_batch() {
    // The tightest race, deterministically: the follower consumes half a
    // segment, the leader checkpoints twice (retiring even the retained
    // WAL window of the first), then keeps writing. The follower's next
    // poll finds its segment gone mid-batch and must re-bootstrap — and
    // still converge, including across a crash at that exact moment.
    let ops = workload();
    let states = oracle_states(&ops);
    let mem = Arc::new(MemIo::new());
    let mut leader =
        DurableDatabase::open_with(Arc::clone(&mem), "/leader", SyncPolicy::Always).unwrap();
    leader.set_retain_wals(1);
    for op in &ops[..24] {
        leader_apply(&mut leader, op);
    }
    let mut replica = Replica::open_with(Arc::clone(&mem), "/leader", "/replica", opts()).unwrap();
    for _ in 0..4 {
        replica.poll().unwrap(); // mid-segment cursor, well behind
    }
    let held = replica.cursor();
    leader.checkpoint().unwrap(); // generation 1, wal-0 retained
    for op in &ops[24..48] {
        leader_apply(&mut leader, op);
    }
    leader.checkpoint().unwrap(); // generation 2, wal-0 now retired
    for op in &ops[48..] {
        leader_apply(&mut leader, op);
    }
    assert!(mem.read(Path::new(&format!("/leader/wal-{:016}.log", held.segment))).is_err());
    replica.catch_up().unwrap();
    assert!(replica.info().bootstraps >= 2, "{:?}", replica.info());
    assert_eq!(rendered(replica.shared().snapshot().store()), states[TOTAL_OPS]);

    // Crash immediately after that recovery and reopen: still a prefix,
    // still converges.
    mem.crash();
    drop(replica);
    let mut replica = Replica::open_with(Arc::clone(&mem), "/leader", "/replica", opts()).unwrap();
    let recovered = rendered(replica.shared().snapshot().store());
    assert!(states.contains(&recovered));
    replica.catch_up().unwrap();
    assert_eq!(rendered(replica.shared().snapshot().store()), states[TOTAL_OPS]);
}
