//! Corruption-robustness of the full-database image (`LSDF`): damaged
//! inputs must decode to `Err` or a well-formed database — never panic,
//! never allocate from an attacker-controlled length prefix.

use proptest::prelude::*;

use loosedb_engine::{persist, Database, Rule};

fn sample_db(facts: &[(u8, u8, u8)]) -> Database {
    let mut db = Database::new();
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add(30i64, "isa", "AGE");
    for &(s, r, t) in facts {
        db.add(format!("N{s}"), format!("R{r}"), format!("N{t}"));
    }
    let age = db.entity("AGE");
    let zero = db.entity(0i64);
    let total = db.entity("TOTAL");
    db.declare_class(total);
    let mut b = Rule::builder("age-positive");
    let x = b.var("x");
    db.add_rule(
        b.constraint()
            .when(x, loosedb_store::special::ISA, age)
            .then(x, loosedb_store::special::GT, zero)
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A flipped byte anywhere in a full image either fails to decode or
    /// yields a database whose facts and rules are well-formed.
    #[test]
    fn persist_bit_flip_never_panics(
        facts in prop::collection::vec((0u8..20, 0u8..6, 0u8..20), 0..10),
        pos in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let db = sample_db(&facts);
        let mut data = persist::encode(&db).to_vec();
        let idx = pos % data.len();
        data[idx] ^= 1 << bit;
        if let Ok(decoded) = persist::decode(data.as_slice()) {
            for f in decoded.store().iter() {
                let _ = decoded.display_fact(&f);
            }
            let _ = decoded.rules().len();
        }
    }

    /// Any strict prefix of a full image is an error, not a panic.
    #[test]
    fn persist_truncation_always_errors(
        facts in prop::collection::vec((0u8..20, 0u8..6, 0u8..20), 0..10),
        pos in 0usize..10_000,
    ) {
        let db = sample_db(&facts);
        let data = persist::encode(&db).to_vec();
        let cut = pos % data.len();
        prop_assert!(persist::decode(&data[..cut]).is_err());
    }
}
