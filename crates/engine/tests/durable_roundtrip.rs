//! Durable round-trip on the real filesystem: open → ops → checkpoint →
//! more ops → reopen must reproduce exactly the closure of the same
//! operations applied to a plain in-memory [`Database`].

use std::collections::BTreeSet;

use loosedb_engine::{Database, DurableDatabase, SyncPolicy};

fn closure_facts(db: &mut Database) -> BTreeSet<String> {
    let facts: Vec<_> = db.closure().unwrap().iter().collect();
    facts.into_iter().map(|f| db.store().display_fact(&f)).collect()
}

#[test]
fn roundtrip_reproduces_the_in_memory_closure() {
    let dir = std::env::temp_dir().join(format!("loosedb-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut oracle = Database::new();
    {
        let mut db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(db.generation(), 0);

        // Phase 1: facts that exercise the §3 built-in rules.
        for (s, r, t) in [
            ("JOHN", "isa", "EMPLOYEE"),
            ("EMPLOYEE", "EARNS", "SALARY"),
            ("MANAGER", "gen", "EMPLOYEE"),
            ("MARY", "isa", "MANAGER"),
        ] {
            db.add(s, r, t).unwrap();
            oracle.add(s, r, t);
        }
        assert_eq!(db.checkpoint().unwrap(), 1);

        // Phase 2: post-checkpoint WAL tail, including a removal.
        let f = db.add("TEMP", "isa", "EMPLOYEE").unwrap();
        oracle.add("TEMP", "isa", "EMPLOYEE");
        let of = {
            let t = oracle.entity("TEMP");
            let isa = oracle.entity("isa");
            let e = oracle.entity("EMPLOYEE");
            loosedb_store::Fact::new(t, isa, e)
        };
        db.add("JOHN", "LIKES", "FELIX").unwrap();
        oracle.add("JOHN", "LIKES", "FELIX");
        assert!(db.remove(&f).unwrap());
        assert!(oracle.remove(&of));
    }

    // Reopen from disk and compare closures fact by fact.
    let mut db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(db.generation(), 1);
    assert!(db.recovery().snapshot_loaded);
    assert_eq!(db.recovery().wal_ops_applied, 3);
    assert!(!db.recovery().wal_tail_truncated);
    assert_eq!(closure_facts(db.database()), closure_facts(&mut oracle));

    // And the recovered database keeps journaling: one more op, one more
    // reopen, still equal.
    db.add("FELIX", "isa", "CAT").unwrap();
    oracle.add("FELIX", "isa", "CAT");
    drop(db);
    let mut db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(closure_facts(db.database()), closure_facts(&mut oracle));

    std::fs::remove_dir_all(&dir).ok();
}
