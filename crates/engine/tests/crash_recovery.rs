//! Fault-injected crash-recovery suite.
//!
//! Runs a deterministic workload of 220 fact operations (with a
//! checkpoint in the middle) against a [`DurableDatabase`] whose I/O
//! layer is crashed at *every* mutating I/O point in turn, then reopens
//! the surviving files and asserts the recovered database is a
//! *prefix-consistent* image of the workload:
//!
//! * the recovered base facts equal the state after some prefix of the
//!   operations — never a torn mixture;
//! * under [`SyncPolicy::Always`] that prefix is exactly the operations
//!   the database acknowledged before the crash;
//! * under [`SyncPolicy::EveryN`] at most the unsynced window is lost;
//! * under [`SyncPolicy::OnCheckpoint`] nothing acknowledged before the
//!   last successful checkpoint is lost.
//!
//! The crash model is pessimistic about data (bytes appended since the
//! last fsync are dropped — see [`MemIo::crash`]) and the failing
//! write itself lands only half its payload (see [`FaultIo`]).

use std::path::PathBuf;
use std::sync::Arc;

use loosedb_engine::{Database, DurableDatabase, SyncPolicy};
use loosedb_store::io::{FaultIo, MemIo};
use loosedb_store::EntityValue;

/// One workload operation, self-describing like a WAL record.
#[derive(Clone, Debug)]
enum Op {
    Insert(EntityValue, EntityValue, EntityValue),
    Remove(EntityValue, EntityValue, EntityValue),
}

const TOTAL_OPS: usize = 220;
const CHECKPOINT_AT: usize = 110;

/// A deterministic 220-op workload over a small entity space: inserts of
/// symbols, ints and floats, with removals (some of them no-ops) mixed
/// in. A simple LCG keeps it reproducible without external crates.
fn workload() -> Vec<Op> {
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut step = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (rng >> 33) as u32
    };
    let value = |sel: u32, n: u32| -> EntityValue {
        match sel % 3 {
            0 => EntityValue::symbol(format!("T{}", n % 12)),
            1 => EntityValue::Int((n % 40) as i64),
            _ => EntityValue::float((n % 7) as f64 + 0.5),
        }
    };
    let mut inserted: Vec<(EntityValue, EntityValue, EntityValue)> = Vec::new();
    let mut ops = Vec::with_capacity(TOTAL_OPS);
    for i in 0..TOTAL_OPS {
        let roll = step();
        if i % 6 == 4 && !inserted.is_empty() {
            // Remove an existing fact (possibly one already removed —
            // exercising the not-present path too).
            let (s, r, t) = inserted[(roll as usize) % inserted.len()].clone();
            ops.push(Op::Remove(s, r, t));
        } else {
            let s = EntityValue::symbol(format!("E{}", step() % 25));
            let r = EntityValue::symbol(format!("R{}", step() % 8));
            let t = value(step(), step());
            inserted.push((s.clone(), r.clone(), t.clone()));
            ops.push(Op::Insert(s, r, t));
        }
    }
    ops
}

/// The base-fact state after a prefix of the workload, as a canonical
/// set of rendered facts.
type State = std::collections::BTreeSet<String>;

fn state_of(db: &Database) -> State {
    db.store().iter().map(|f| db.display_fact(&f)).collect()
}

/// Oracle: `states[j]` is the in-memory state after the first `j` ops.
fn oracle_states(ops: &[Op]) -> Vec<State> {
    let mut db = Database::new();
    let mut states = vec![state_of(&db)];
    for op in ops {
        apply_in_memory(&mut db, op);
        states.push(state_of(&db));
    }
    states
}

fn apply_in_memory(db: &mut Database, op: &Op) {
    match op {
        Op::Insert(s, r, t) => {
            db.add(s.clone(), r.clone(), t.clone());
        }
        Op::Remove(s, r, t) => {
            let f = loosedb_store::Fact::new(
                db.entity(s.clone()),
                db.entity(r.clone()),
                db.entity(t.clone()),
            );
            db.remove(&f);
        }
    }
}

/// Drives the workload through a durable database until the first I/O
/// error (the injected crash). Returns `(acked_ops,
/// ops_acked_at_last_successful_checkpoint)`.
fn drive(db: &mut DurableDatabase<FaultIo<Arc<MemIo>>>, ops: &[Op]) -> (usize, usize) {
    let mut acked = 0;
    let mut checkpointed = 0;
    for (i, op) in ops.iter().enumerate() {
        if i == CHECKPOINT_AT {
            if db.checkpoint().is_err() {
                return (acked, checkpointed);
            }
            checkpointed = acked;
        }
        let result = match op {
            Op::Insert(s, r, t) => db.add(s.clone(), r.clone(), t.clone()).map(|_| ()),
            Op::Remove(s, r, t) => {
                let inner = db.database();
                let f = loosedb_store::Fact::new(
                    inner.entity(s.clone()),
                    inner.entity(r.clone()),
                    inner.entity(t.clone()),
                );
                db.remove(&f).map(|_| ())
            }
        };
        if result.is_err() {
            return (acked, checkpointed);
        }
        acked = i + 1;
    }
    (acked, checkpointed)
}

/// Counts the mutating I/O ops of a fault-free run of the workload.
fn io_ops_of_full_run(policy: SyncPolicy, ops: &[Op]) -> usize {
    let mem = Arc::new(MemIo::new());
    let faulty = FaultIo::new(mem, usize::MAX);
    let mut db = DurableDatabase::open_with(faulty, PathBuf::from("/db"), policy).unwrap();
    let (acked, _) = drive(&mut db, ops);
    assert_eq!(acked, ops.len(), "fault-free run must complete");
    db.io_ref().ops_used()
}

/// One crash point's outcome, handed to the policy-specific check.
struct Outcome {
    crash_at: usize,
    acked: usize,
    checkpointed: usize,
    recovered: State,
}

/// The sweep: crash at every mutating I/O point of the workload, recover
/// from the surviving bytes, and run `check` on each outcome. The sweep
/// itself asserts universal properties: the recovered state is *some*
/// oracle prefix (never a torn mixture) and nothing checkpointed is lost.
fn sweep(policy: SyncPolicy, mut check: impl FnMut(&Outcome, &[State])) {
    let ops = workload();
    let states = oracle_states(&ops);
    let total_io = io_ops_of_full_run(policy, &ops);
    assert!(total_io > ops.len(), "every op must hit the journal");

    for crash_at in 0..total_io {
        let mem = Arc::new(MemIo::new());
        let faulty = FaultIo::new(mem.clone(), crash_at);
        let (acked, checkpointed) =
            match DurableDatabase::open_with(faulty, PathBuf::from("/db"), policy) {
                Ok(mut db) => drive(&mut db, &ops),
                // Crash during the very first open (directory creation).
                Err(_) => (0, 0),
            };
        assert!(acked < ops.len(), "crash point {crash_at} did not crash");

        // Power loss: unsynced bytes vanish. Then recover.
        mem.crash();
        let db = DurableDatabase::open_with(mem, PathBuf::from("/db"), policy)
            .unwrap_or_else(|e| panic!("reopen after crash at {crash_at}: {e}"));
        let recovered = state_of(db.database_ref());

        // Prefix consistency: the recovered state IS some oracle prefix
        // (policy-specific checks then pin *which* prefixes are legal).
        assert!(
            states.contains(&recovered),
            "crash at {crash_at}: recovered state is not a workload prefix"
        );
        check(&Outcome { crash_at, acked, checkpointed, recovered }, &states);
    }
}

/// True if `recovered` matches the oracle state of some prefix length in
/// `lo..=hi` (states can repeat across prefixes, e.g. around no-op
/// removals, so membership is checked over the whole window).
fn matches_window(states: &[State], recovered: &State, lo: usize, hi: usize) -> bool {
    states[lo..=hi.min(states.len() - 1)].iter().any(|s| s == recovered)
}

#[test]
fn sync_always_recovers_exactly_the_acked_prefix() {
    sweep(SyncPolicy::Always, |o, states| {
        // Every acknowledged op was fsynced, and the torn/unsynced tail
        // holds only unacknowledged work: exactness, not a lower bound.
        assert_eq!(
            o.recovered, states[o.acked],
            "crash at {}: recovered state != state after {} acked ops",
            o.crash_at, o.acked
        );
    });
}

#[test]
fn sync_every_n_loses_at_most_the_unsynced_window() {
    const N: usize = 3;
    let mut lost_something = false;
    sweep(SyncPolicy::EveryN(N as u32), |o, states| {
        assert!(
            matches_window(states, &o.recovered, o.acked.saturating_sub(N), o.acked),
            "crash at {}: recovered state lost more than {N} of {} acked ops",
            o.crash_at,
            o.acked
        );
        lost_something |= o.recovered != states[o.acked];
    });
    // The relaxed policy must actually be observed losing acked ops in
    // this sweep — otherwise the window assertion above tests nothing.
    assert!(lost_something, "EveryN sweep never exercised a lossy crash");
}

#[test]
fn sync_on_checkpoint_never_loses_checkpointed_ops() {
    let mut lost_something = false;
    sweep(SyncPolicy::OnCheckpoint, |o, states| {
        assert!(
            matches_window(states, &o.recovered, o.checkpointed, o.acked),
            "crash at {}: recovered state outside [checkpointed {}, acked {}]",
            o.crash_at,
            o.checkpointed,
            o.acked
        );
        lost_something |= o.recovered != states[o.acked];
    });
    assert!(lost_something, "OnCheckpoint sweep never exercised a lossy crash");
}
