//! Virtual mathematical relationships (§3.6).
//!
//! The paper assumes the database "includes all relevant mathematical
//! relationships ... without actually storing them as ordinary facts".
//! This module is that assumption made real: the comparators `< > ≤ ≥`
//! hold between numeric entities, and `=`/`≠` between *all* entities, and
//! all of them are answered at match time — their extension is never
//! materialized.
//!
//! Enumeration (a pattern like `(y, >, 20000)` with `y` free) ranges over
//! the *interned* entities: the finite fragment of the infinite
//! mathematical relation that can actually be named by a query answer.

use std::cmp::Ordering;

use loosedb_store::{num_cmp, special, EntityId, Fact, Interner, Pattern};

/// The truth value of a mathematical fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MathTruth {
    /// The relationship holds (e.g. `(25000, >, 20000)`).
    True,
    /// The relationship is defined but does not hold (e.g. `(2, >, 3)`).
    False,
    /// The relationship is undefined for these operands (an order
    /// comparator applied to a non-number, e.g. `(JOHN, >, 0)`).
    Undefined,
}

/// Evaluates a fact whose relationship is a mathematical comparator.
///
/// Returns `None` if `f.r` is not one of the comparators.
pub fn eval(interner: &Interner, f: &Fact) -> Option<MathTruth> {
    if !special::is_math(f.r) {
        return None;
    }
    Some(eval_math(interner, f.s, f.r, f.t))
}

fn eval_math(interner: &Interner, s: EntityId, rel: EntityId, t: EntityId) -> MathTruth {
    match rel {
        // Identity is defined for every pair of entities (§3.6: "for every
        // two entities E1 and E2 exactly one of (E1,=,E2), (E1,≠,E2)").
        // Identity is by entity, so Int(2) ≠ Float(2.0); but mathematically
        // equal numbers of different representations also satisfy `=`.
        special::EQ => bool_truth(s == t || num_eq(interner, s, t)),
        special::NE => bool_truth(!(s == t || num_eq(interner, s, t))),
        special::LT => order_truth(interner, s, t, |o| o == Ordering::Less),
        special::GT => order_truth(interner, s, t, |o| o == Ordering::Greater),
        special::LE => order_truth(interner, s, t, |o| o != Ordering::Greater),
        special::GE => order_truth(interner, s, t, |o| o != Ordering::Less),
        _ => unreachable!("is_math checked"),
    }
}

fn num_eq(interner: &Interner, s: EntityId, t: EntityId) -> bool {
    num_cmp(interner.resolve(s), interner.resolve(t)) == Some(Ordering::Equal)
}

fn bool_truth(b: bool) -> MathTruth {
    if b {
        MathTruth::True
    } else {
        MathTruth::False
    }
}

fn order_truth(
    interner: &Interner,
    s: EntityId,
    t: EntityId,
    pred: impl Fn(Ordering) -> bool,
) -> MathTruth {
    match num_cmp(interner.resolve(s), interner.resolve(t)) {
        Some(o) => bool_truth(pred(o)),
        None => MathTruth::Undefined,
    }
}

/// Errors from enumerating a mathematical pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MathMatchError {
    /// `(x, ≠, y)` with both sides free would enumerate nearly all pairs
    /// of entities; the query planner must bind at least one side first.
    UnboundedInequality,
}

impl std::fmt::Display for MathMatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathMatchError::UnboundedInequality => {
                write!(f, "(x, !=, y) with both sides free is not enumerable")
            }
        }
    }
}

impl std::error::Error for MathMatchError {}

/// Enumerates the virtual facts matching a pattern whose relationship is a
/// mathematical comparator.
///
/// * Both sides bound: zero or one fact (a truth check).
/// * One side bound: the other ranges over interned entities (numerics for
///   order comparators, everything for `=`/`≠`).
/// * Both free: `=` yields the diagonal over all entities; the order
///   comparators yield all satisfying pairs of interned numerics; `≠` is
///   rejected as unenumerable.
///
/// # Panics
/// Panics if the pattern's relationship is unbound or not a comparator.
pub fn matches(interner: &Interner, pattern: Pattern) -> Result<Vec<Fact>, MathMatchError> {
    let rel = pattern.r.expect("math pattern must bind the relationship");
    assert!(special::is_math(rel), "not a mathematical comparator");
    let mut out = Vec::new();
    match (pattern.s, pattern.t) {
        (Some(s), Some(t)) => {
            if eval_math(interner, s, rel, t) == MathTruth::True {
                out.push(Fact::new(s, rel, t));
            }
        }
        (Some(s), None) => {
            for t in candidates(interner, rel) {
                if eval_math(interner, s, rel, t) == MathTruth::True {
                    out.push(Fact::new(s, rel, t));
                }
            }
        }
        (None, Some(t)) => {
            for s in candidates(interner, rel) {
                if eval_math(interner, s, rel, t) == MathTruth::True {
                    out.push(Fact::new(s, rel, t));
                }
            }
        }
        (None, None) => match rel {
            special::EQ => {
                for e in interner.ids() {
                    out.push(Fact::new(e, rel, e));
                }
            }
            special::NE => return Err(MathMatchError::UnboundedInequality),
            _ => {
                let nums: Vec<EntityId> = candidates(interner, rel).collect();
                for &s in &nums {
                    for &t in &nums {
                        if eval_math(interner, s, rel, t) == MathTruth::True {
                            out.push(Fact::new(s, rel, t));
                        }
                    }
                }
            }
        },
    }
    Ok(out)
}

/// The interned entities a free side of a comparator may range over.
fn candidates<'a>(
    interner: &'a Interner,
    rel: EntityId,
) -> Box<dyn Iterator<Item = EntityId> + 'a> {
    match rel {
        special::EQ | special::NE => Box::new(interner.ids()),
        _ => Box::new(interner.iter().filter(|(_, v)| v.is_numeric()).map(|(id, _)| id)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::EntityValue;

    fn setup() -> (Interner, EntityId, EntityId, EntityId, EntityId) {
        let mut interner = Interner::new();
        let n2 = interner.intern(EntityValue::Int(2));
        let n3 = interner.intern(EntityValue::Int(3));
        let f2 = interner.intern(EntityValue::float(2.0));
        let john = interner.symbol("JOHN");
        (interner, n2, n3, f2, john)
    }

    #[test]
    fn order_comparators_on_numbers() {
        let (i, n2, n3, _, _) = setup();
        assert_eq!(eval(&i, &Fact::new(n2, special::LT, n3)), Some(MathTruth::True));
        assert_eq!(eval(&i, &Fact::new(n3, special::LT, n2)), Some(MathTruth::False));
        assert_eq!(eval(&i, &Fact::new(n2, special::GT, n3)), Some(MathTruth::False));
        assert_eq!(eval(&i, &Fact::new(n2, special::LE, n2)), Some(MathTruth::True));
        assert_eq!(eval(&i, &Fact::new(n3, special::GE, n2)), Some(MathTruth::True));
    }

    #[test]
    fn order_comparators_undefined_on_symbols() {
        let (i, n2, _, _, john) = setup();
        assert_eq!(eval(&i, &Fact::new(john, special::GT, n2)), Some(MathTruth::Undefined));
        assert_eq!(eval(&i, &Fact::new(n2, special::LT, john)), Some(MathTruth::Undefined));
    }

    #[test]
    fn identity_defined_for_all_entities() {
        let (i, n2, n3, _, john) = setup();
        assert_eq!(eval(&i, &Fact::new(john, special::EQ, john)), Some(MathTruth::True));
        assert_eq!(eval(&i, &Fact::new(john, special::EQ, n2)), Some(MathTruth::False));
        assert_eq!(eval(&i, &Fact::new(john, special::NE, n2)), Some(MathTruth::True));
        assert_eq!(eval(&i, &Fact::new(n2, special::NE, n3)), Some(MathTruth::True));
    }

    #[test]
    fn int_and_float_mathematically_equal() {
        let (i, n2, _, f2, _) = setup();
        assert_eq!(eval(&i, &Fact::new(n2, special::EQ, f2)), Some(MathTruth::True));
        assert_eq!(eval(&i, &Fact::new(n2, special::NE, f2)), Some(MathTruth::False));
        assert_eq!(eval(&i, &Fact::new(n2, special::LE, f2)), Some(MathTruth::True));
    }

    #[test]
    fn non_math_rel_yields_none() {
        let (i, n2, n3, _, _) = setup();
        assert_eq!(eval(&i, &Fact::new(n2, special::GEN, n3)), None);
    }

    #[test]
    fn enumerate_one_side_bound() {
        let (i, n2, n3, f2, _) = setup();
        // (x, <, 3): x ranges over numerics {2, 3, 2.0} → {2, 2.0}
        let facts = matches(&i, Pattern::new(None, Some(special::LT), Some(n3))).unwrap();
        let sources: std::collections::BTreeSet<EntityId> = facts.iter().map(|f| f.s).collect();
        assert_eq!(sources, [n2, f2].into_iter().collect());
    }

    #[test]
    fn enumerate_both_bound_is_a_check() {
        let (i, n2, n3, _, _) = setup();
        let yes = matches(&i, Pattern::new(Some(n2), Some(special::LT), Some(n3))).unwrap();
        assert_eq!(yes, vec![Fact::new(n2, special::LT, n3)]);
        let no = matches(&i, Pattern::new(Some(n3), Some(special::LT), Some(n2))).unwrap();
        assert!(no.is_empty());
    }

    #[test]
    fn enumerate_eq_diagonal() {
        let (i, ..) = setup();
        let facts = matches(&i, Pattern::from_rel(special::EQ)).unwrap();
        // Diagonal over every interned entity (specials included).
        assert_eq!(facts.len(), i.len());
        assert!(facts.iter().all(|f| f.s == f.t));
    }

    #[test]
    fn enumerate_ne_both_free_rejected() {
        let (i, ..) = setup();
        assert_eq!(
            matches(&i, Pattern::from_rel(special::NE)),
            Err(MathMatchError::UnboundedInequality)
        );
    }

    #[test]
    fn enumerate_lt_both_free_pairs() {
        let (i, n2, n3, f2, _) = setup();
        let facts = matches(&i, Pattern::from_rel(special::LT)).unwrap();
        let expected: std::collections::BTreeSet<Fact> =
            [Fact::new(n2, special::LT, n3), Fact::new(f2, special::LT, n3)].into_iter().collect();
        assert_eq!(facts.into_iter().collect::<std::collections::BTreeSet<_>>(), expected);
    }
}
