//! The generalization hierarchy, analysed for probing (§5.1).
//!
//! Probing needs, for every entity, its *minimal generalizations* — the
//! paper's definition: `E'` is a minimal generalization of `E` if
//! `(E, ≺, E')`, `(E', ⊀, E)` (ruling out synonyms), and no third entity
//! lies strictly between them. Broadening a query's *source* position uses
//! the dual notion, minimal *specializations* (rule G1 broadens a query by
//! replacing a source entity with a child).
//!
//! The closure already materializes the transitive generalization facts,
//! so this module works from complete ancestor/descendant sets. Entities
//! with no stored strict ancestor have `Δ` as their (only) minimal
//! generalization, and entities with no stored strict descendant have `∇`
//! as their minimal specialization — the hierarchy bounds of §2.3, which
//! is how probing eventually degenerates templates to all-`Δ`/`∇` form
//! (§5.2).

use std::collections::BTreeSet;

use loosedb_store::{special, EntityId, Fact, Pattern};

use crate::closure::Closure;

/// A read-only analysis of the `≺` hierarchy in a closure.
///
/// ```
/// use loosedb_engine::{Database, Taxonomy};
///
/// let mut db = Database::new();
/// db.add("FRESHMAN", "gen", "STUDENT");
/// db.add("STUDENT", "gen", "PERSON");
///
/// let freshman = db.lookup_symbol("FRESHMAN").unwrap();
/// let student = db.lookup_symbol("STUDENT").unwrap();
/// let closure = db.closure().unwrap();
/// let tax = Taxonomy::new(closure);
/// // PERSON is an ancestor but not minimal — STUDENT lies between.
/// assert_eq!(tax.minimal_generalizations(freshman), vec![student]);
/// ```
pub struct Taxonomy<'a> {
    closure: &'a Closure,
}

impl<'a> Taxonomy<'a> {
    /// Creates a taxonomy view over a closure.
    pub fn new(closure: &'a Closure) -> Self {
        Taxonomy { closure }
    }

    /// True if `e` occurs anywhere in the closure (probing's "is this a
    /// database entity?" test, §5.2).
    pub fn exists(&self, e: EntityId) -> bool {
        special::is_special(e)
            || self.closure.matching(Pattern::from_source(e)).next().is_some()
            || self.closure.matching(Pattern::from_rel(e)).next().is_some()
            || self.closure.matching(Pattern::from_target(e)).next().is_some()
    }

    /// True if `(a, ≺, b)` holds, including the virtual reflexive and
    /// `Δ`/`∇` bound facts.
    pub fn is_gen(&self, a: EntityId, b: EntityId) -> bool {
        a == b
            || b == special::TOP
            || a == special::BOT
            || self.closure.contains(&Fact::new(a, special::GEN, b))
    }

    /// True if `a` is *strictly* below `b`: `a ≺ b` but not `b ≺ a`
    /// (synonyms are mutually ≺ and therefore not strict).
    pub fn is_strictly_below(&self, a: EntityId, b: EntityId) -> bool {
        a != b && self.is_gen(a, b) && !self.is_gen(b, a)
    }

    /// All entities strictly above `e` in stored generalization facts
    /// (excluding synonyms of `e`, `e` itself, and the virtual `Δ`).
    pub fn strict_ancestors(&self, e: EntityId) -> BTreeSet<EntityId> {
        self.closure
            .matching(Pattern::new(Some(e), Some(special::GEN), None))
            .map(|f| f.t)
            .filter(|&t| t != e && !self.is_gen(t, e))
            .collect()
    }

    /// All entities strictly below `e` in stored generalization facts.
    pub fn strict_descendants(&self, e: EntityId) -> BTreeSet<EntityId> {
        self.closure
            .matching(Pattern::new(None, Some(special::GEN), Some(e)))
            .map(|f| f.s)
            .filter(|&s| s != e && !self.is_gen(e, s))
            .collect()
    }

    /// The synonyms of `e` (entities mutually ≺ with `e`), excluding `e`.
    pub fn synonyms(&self, e: EntityId) -> BTreeSet<EntityId> {
        self.closure
            .matching(Pattern::new(Some(e), Some(special::SYN), None))
            .map(|f| f.t)
            .filter(|&t| t != e)
            .collect()
    }

    /// The minimal generalizations of `e` (§5.1).
    ///
    /// Returns `[Δ]` when `e` exists but has no stored strict ancestor
    /// (the paper's `(COSTS, ≺, Δ)` case), and the empty vector when `e`
    /// is not a database entity at all — the signal probing turns into
    /// "no such database entity" (§5.2).
    pub fn minimal_generalizations(&self, e: EntityId) -> Vec<EntityId> {
        if e == special::TOP {
            return Vec::new(); // nothing is broader than Δ
        }
        if !self.exists(e) {
            return Vec::new();
        }
        let ancestors = self.strict_ancestors(e);
        if ancestors.is_empty() {
            return vec![special::TOP];
        }
        minimal_elements(&ancestors, |a, b| self.is_strictly_below(a, b))
    }

    /// The minimal specializations of `e` — the dual of
    /// [`minimal_generalizations`](Taxonomy::minimal_generalizations),
    /// used to broaden the *source* position (rule G1).
    ///
    /// Returns `[∇]` when `e` exists but has no stored strict descendant.
    pub fn minimal_specializations(&self, e: EntityId) -> Vec<EntityId> {
        if e == special::BOT {
            return Vec::new();
        }
        if !self.exists(e) {
            return Vec::new();
        }
        let descendants = self.strict_descendants(e);
        if descendants.is_empty() {
            return vec![special::BOT];
        }
        minimal_elements(&descendants, |a, b| self.is_strictly_below(b, a))
    }
}

/// The elements of `set` that have no other element strictly below them
/// according to `below(a, b)` ("a is strictly below b").
fn minimal_elements(
    set: &BTreeSet<EntityId>,
    below: impl Fn(EntityId, EntityId) -> bool,
) -> Vec<EntityId> {
    set.iter().copied().filter(|&a| !set.iter().any(|&b| b != a && below(b, a))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::{compute, Strategy};
    use crate::config::InferenceConfig;
    use crate::kind::KindRegistry;
    use crate::rule::RuleSet;
    use loosedb_store::FactStore;

    fn closure_of(build: impl FnOnce(&mut FactStore)) -> (FactStore, Closure) {
        let mut store = FactStore::new();
        build(&mut store);
        let c = compute(
            &mut store,
            &KindRegistry::new(),
            &RuleSet::new(),
            &InferenceConfig::default(),
            Strategy::SemiNaive,
        )
        .unwrap();
        (store, c)
    }

    #[test]
    fn minimal_generalizations_direct_parent() {
        let (store, c) = closure_of(|s| {
            s.add("FRESHMAN", "gen", "STUDENT");
            s.add("STUDENT", "gen", "PERSON");
        });
        let tax = Taxonomy::new(&c);
        let freshman = store.lookup_symbol("FRESHMAN").unwrap();
        let student = store.lookup_symbol("STUDENT").unwrap();
        let person = store.lookup_symbol("PERSON").unwrap();
        // PERSON is an ancestor but not minimal: STUDENT lies between.
        assert_eq!(tax.minimal_generalizations(freshman), vec![student]);
        assert_eq!(tax.minimal_generalizations(student), vec![person]);
    }

    #[test]
    fn entity_may_have_several_minimal_generalizations() {
        // §5.1: "an entity may have several minimal generalizations" —
        // the paper's OPERA ≺ MUSIC, OPERA ≺ THEATER.
        let (store, c) = closure_of(|s| {
            s.add("OPERA", "gen", "MUSIC");
            s.add("OPERA", "gen", "THEATER");
        });
        let tax = Taxonomy::new(&c);
        let opera = store.lookup_symbol("OPERA").unwrap();
        let music = store.lookup_symbol("MUSIC").unwrap();
        let theater = store.lookup_symbol("THEATER").unwrap();
        let mut gens = tax.minimal_generalizations(opera);
        gens.sort();
        let mut expected = vec![music, theater];
        expected.sort();
        assert_eq!(gens, expected);
    }

    #[test]
    fn rootless_entity_generalizes_to_top() {
        // §5.2: (COSTS, ≺, Δ) is a minimal generalization.
        let (store, c) = closure_of(|s| {
            s.add("STUDENT", "COSTS", "MONEY");
        });
        let tax = Taxonomy::new(&c);
        let costs = store.lookup_symbol("COSTS").unwrap();
        assert_eq!(tax.minimal_generalizations(costs), vec![special::TOP]);
    }

    #[test]
    fn missing_entity_has_no_generalizations() {
        // §5.2: a misspelled entity "will never be replaced".
        let (mut store, c) = {
            let (store, c) = closure_of(|s| {
                s.add("JOHN", "LIKES", "FELIX");
            });
            (store, c)
        };
        let tax = Taxonomy::new(&c);
        let loves = store.entity("LOVES-MISSPELLED"); // interned, never used
        assert!(!tax.exists(loves));
        assert_eq!(tax.minimal_generalizations(loves), Vec::<EntityId>::new());
        assert_eq!(tax.minimal_specializations(loves), Vec::<EntityId>::new());
    }

    #[test]
    fn minimal_specializations_mirror() {
        let (store, c) = closure_of(|s| {
            s.add("FRESHMAN", "gen", "STUDENT");
            s.add("SOPHOMORE", "gen", "STUDENT");
            s.add("STUDENT", "gen", "PERSON");
        });
        let tax = Taxonomy::new(&c);
        let student = store.lookup_symbol("STUDENT").unwrap();
        let person = store.lookup_symbol("PERSON").unwrap();
        let freshman = store.lookup_symbol("FRESHMAN").unwrap();
        let sophomore = store.lookup_symbol("SOPHOMORE").unwrap();
        let mut specs = tax.minimal_specializations(person);
        specs.sort();
        assert_eq!(specs, vec![student]);
        let mut specs = tax.minimal_specializations(student);
        specs.sort();
        let mut expected = vec![freshman, sophomore];
        expected.sort();
        assert_eq!(specs, expected);
        // Leaves specialize to ∇.
        assert_eq!(tax.minimal_specializations(freshman), vec![special::BOT]);
    }

    #[test]
    fn synonyms_are_not_strict_ancestors() {
        let (store, c) = closure_of(|s| {
            s.add("JOHN", "syn", "JOHNNY");
            s.add("JOHN", "isa", "PERSON-CLASS");
        });
        let tax = Taxonomy::new(&c);
        let john = store.lookup_symbol("JOHN").unwrap();
        let johnny = store.lookup_symbol("JOHNNY").unwrap();
        // JOHNNY is mutually ≺ with JOHN: not a strict ancestor, so JOHN's
        // minimal generalization is Δ, not JOHNNY.
        assert!(tax.strict_ancestors(john).is_empty());
        assert_eq!(tax.minimal_generalizations(john), vec![special::TOP]);
        assert_eq!(tax.synonyms(john), [johnny].into_iter().collect());
    }

    #[test]
    fn virtual_gen_relations() {
        let (store, c) = closure_of(|s| {
            s.add("EMPLOYEE", "gen", "PERSON");
        });
        let tax = Taxonomy::new(&c);
        let employee = store.lookup_symbol("EMPLOYEE").unwrap();
        let person = store.lookup_symbol("PERSON").unwrap();
        assert!(tax.is_gen(employee, person));
        assert!(!tax.is_gen(person, employee));
        assert!(tax.is_gen(employee, employee)); // reflexive
        assert!(tax.is_gen(employee, special::TOP)); // Δ bound
        assert!(tax.is_gen(special::BOT, employee)); // ∇ bound
    }

    #[test]
    fn top_has_no_generalizations() {
        let (_, c) = closure_of(|s| {
            s.add("A", "R", "B");
        });
        let tax = Taxonomy::new(&c);
        assert!(tax.minimal_generalizations(special::TOP).is_empty());
        assert!(tax.minimal_specializations(special::BOT).is_empty());
    }
}
