//! WAL-shipped read replicas: crash-tolerant replay, catch-up, and
//! failover.
//!
//! A [`Replica`] tails a leader's durable directory (see
//! [`crate::durable`]) through a [`FrameStream`] and replays the shipped
//! frames into its own [`SharedDatabase`] — so followers serve
//! snapshot-isolated reads through the exact same `SharedSession`
//! machinery as a standalone database, with the same O(delta) publishes
//! and precise delta history keeping their query caches warm.
//!
//! ## Local state and the commit protocol
//!
//! A replica directory holds three things per consumed segment `s`:
//!
//! * `base-<s>.lsdf` — the database image at the start of segment `s`
//!   (a verified copy of the leader's snapshot, or the replica's own
//!   re-encode at a rotation boundary);
//! * `mirror-<s>.log` — the shipped frames, appended *verbatim* (the
//!   leader's own CRC32 framing is preserved, so recovery re-verifies
//!   every checksum);
//! * `CURSOR` — the checksummed [`ShipCursor`] `(segment, offset,
//!   epoch)`, replaced atomically.
//!
//! Each applied batch follows **mirror-append → mirror-fsync → apply +
//! publish → cursor replace**. Because the mirror is durable before the
//! cursor ever names its bytes, a crash at *any* I/O point leaves the
//! local directory in one of two states: the cursor describes a prefix
//! of the mirror's intact frames (resume = base + lenient mirror replay,
//! truncating a torn tail), or local state is damaged beyond the cursor's
//! word (resume refuses and the replica re-bootstraps from the leader's
//! newest checkpoint). Either way the follower recovers to a CRC-valid
//! prefix of the leader's history and resumes — never to a torn or
//! bit-flipped state.
//!
//! ## Damage and retirement
//!
//! A frame failing its checksum in a place that cannot be a live torn
//! tail is re-fetched with bounded retry and backoff
//! ([`ReplicaOptions::max_retries`]); persistent damage triggers a
//! re-bootstrap from the newest snapshot instead of poisoning the
//! follower, and damage that recurs at the same position *after* a
//! re-bootstrap (leader-side bit rot no snapshot routes around) is
//! surfaced as an error rather than looped on. A follower that falls
//! behind segment retirement
//! ([`ShipError::SegmentRetired`]) re-bootstraps the same way —
//! [`SharedDatabase::write`] replacing the whole database publishes a
//! `Full` delta, so session caches invalidate correctly and epochs keep
//! monotonically increasing.
//!
//! ## What ships and what does not
//!
//! The WAL carries facts only; rule, kind and configuration changes
//! travel in snapshots. At each rotation the replica cross-checks its
//! own re-encoded image against the leader's manifest CRC and adopts the
//! leader's snapshot on mismatch, so non-fact state converges at the
//! next checkpoint boundary (and silent divergence is caught there too).
//!
//! See DESIGN.md §12 for the state machine and failover rules.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use loosedb_obs::Metrics;
use loosedb_store::io::atomic_write_with;
use loosedb_store::log::Frames;
use loosedb_store::ship::{
    parse_generation, snap_name, FrameStream, Manifest, ShipCursor, ShipError, MANIFEST_NAME,
};
use loosedb_store::{crc32, Fact, LogOp, RealIo, StorageIo};

use crate::closure::ClosureError;
use crate::database::Database;
use crate::durable::{DurableDatabase, SyncPolicy};
use crate::persist;
use crate::shared::SharedDatabase;

/// File name of the replica's checksummed cursor.
pub const CURSOR_NAME: &str = "CURSOR";

/// File name of the base image of a consumed segment.
fn base_name(segment: u64) -> String {
    format!("base-{segment:016}.lsdf")
}

/// File name of the mirrored frame log of a consumed segment.
fn mirror_name(segment: u64) -> String {
    format!("mirror-{segment:016}.log")
}

/// Tuning knobs for a [`Replica`].
#[derive(Clone, Copy, Debug)]
pub struct ReplicaOptions {
    /// Maximum operations consumed and applied per [`Replica::poll`]
    /// (one publish each; smaller batches mean fresher reads, larger
    /// ones faster catch-up).
    pub batch_ops: usize,
    /// Re-reads of a corrupt frame before giving up and re-bootstrapping
    /// from the newest snapshot.
    pub max_retries: u32,
    /// Base delay between corrupt-frame retries; doubles on each retry.
    /// `Duration::ZERO` disables sleeping (tests, in-memory I/O).
    pub retry_backoff: Duration,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        ReplicaOptions { batch_ops: 512, max_retries: 4, retry_backoff: Duration::from_millis(2) }
    }
}

/// How the last [`Replica`] open went, and lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaInfo {
    /// The open resumed local state (base + mirror replay) instead of
    /// bootstrapping from the leader.
    pub resumed: bool,
    /// Mirrored operations replayed during the resume.
    pub mirror_ops_replayed: u64,
    /// The mirror had a torn tail that was truncated during the resume.
    pub mirror_tail_truncated: bool,
    /// Snapshot bootstraps over the replica's lifetime (the initial one
    /// if the open did not resume, plus every later re-bootstrap).
    pub bootstraps: u64,
}

/// What one [`Replica::poll`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollReport {
    /// Operations applied (and published) by this poll.
    pub ops_applied: usize,
    /// The replica rotated into the next segment (local checkpoint).
    pub rotated: bool,
    /// The replica re-bootstrapped from a leader snapshot (segment
    /// retired under the cursor, or persistent frame damage).
    pub rebootstrapped: bool,
    /// Nothing to do: the replica has consumed everything the leader has
    /// durably written.
    pub caught_up: bool,
    /// Unconsumed bytes remaining in the current segment after the poll.
    pub lag_bytes: u64,
    /// The leader's live generation at poll time.
    pub live_segment: u64,
}

/// Why a replica operation failed.
#[derive(Debug)]
pub enum ReplicaError {
    /// Local or leader I/O failed.
    Io(io::Error),
    /// The shipping layer failed in a way the replica does not handle
    /// internally (no decodable leader manifest, or damage that survived
    /// both retries and a re-bootstrap).
    Ship(ShipError),
    /// Replaying a shipped operation violated a closure limit — the
    /// follower's inference configuration has diverged from the
    /// leader's.
    Closure(ClosureError),
    /// No verifiable snapshot to bootstrap from.
    Bootstrap(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Io(e) => write!(f, "replica I/O failed: {e}"),
            ReplicaError::Ship(e) => write!(f, "shipping failed: {e}"),
            ReplicaError::Closure(e) => write!(f, "replay violated a closure limit: {e}"),
            ReplicaError::Bootstrap(why) => write!(f, "bootstrap failed: {why}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<io::Error> for ReplicaError {
    fn from(e: io::Error) -> Self {
        ReplicaError::Io(e)
    }
}

/// A WAL-shipped read replica of a leader's durable directory.
///
/// See the [module docs](self) for the replication protocol. The replica
/// owns an [`Arc<SharedDatabase>`] — hand clones of it to
/// `SharedSession`s for snapshot-isolated reads; their caches survive
/// polls exactly as they survive local writes, because replay publishes
/// through the same precise-delta path.
pub struct Replica<I: StorageIo = RealIo> {
    io: Arc<I>,
    leader_dir: PathBuf,
    local_dir: PathBuf,
    shared: Arc<SharedDatabase>,
    stream: FrameStream<Arc<I>>,
    options: ReplicaOptions,
    info: ReplicaInfo,
    /// `(segment, offset)` of the last corrupt frame that triggered a
    /// re-bootstrap. If the same damage recurs after the re-bootstrap
    /// (leader-side bit rot the snapshot cannot route around), poll
    /// errors instead of re-bootstrapping in a livelock.
    last_corrupt: Option<(u64, u64)>,
}

impl Replica<RealIo> {
    /// Opens a replica of `leader_dir` with local state in `local_dir`,
    /// on the real filesystem with default options.
    pub fn open(
        leader_dir: impl Into<PathBuf>,
        local_dir: impl Into<PathBuf>,
    ) -> Result<Self, ReplicaError> {
        Replica::open_with(RealIo, leader_dir, local_dir, ReplicaOptions::default())
    }
}

impl<I: StorageIo> Replica<I> {
    /// Opens a replica through an explicit [`StorageIo`] handle.
    ///
    /// Resumes from `local_dir` when it holds a usable cursor, base
    /// image and mirror (replaying the mirror leniently and truncating a
    /// torn tail); bootstraps from the leader's newest verified snapshot
    /// otherwise.
    pub fn open_with(
        io: I,
        leader_dir: impl Into<PathBuf>,
        local_dir: impl Into<PathBuf>,
        options: ReplicaOptions,
    ) -> Result<Self, ReplicaError> {
        let io = Arc::new(io);
        let leader_dir = leader_dir.into();
        let local_dir = local_dir.into();
        if !io.exists(&local_dir) {
            io.create_dir_all(&local_dir)?;
        }
        let mut info = ReplicaInfo::default();
        let (db, cursor) = match Self::resume(&io, &local_dir, &mut info) {
            Some(resumed) => {
                info.resumed = true;
                resumed
            }
            None => {
                info.bootstraps += 1;
                Self::bootstrap(&io, &leader_dir, &local_dir)?
            }
        };
        let shared = Arc::new(SharedDatabase::new(db).map_err(ReplicaError::Closure)?);
        shared.metrics().repl_bootstraps.add(info.bootstraps);
        let stream = FrameStream::new(Arc::clone(&io), leader_dir.clone(), cursor);
        Ok(Replica { io, leader_dir, local_dir, shared, stream, options, info, last_corrupt: None })
    }

    /// The replica's I/O handle (the one passed to
    /// [`Replica::open_with`]).
    pub fn io_ref(&self) -> &I {
        &self.io
    }

    /// The replica's shared database: clone the `Arc` into sessions for
    /// snapshot-isolated reads.
    pub fn shared(&self) -> &Arc<SharedDatabase> {
        &self.shared
    }

    /// The current shipping cursor. `cursor().epoch` counts operations
    /// applied since the last bootstrap — the replica's logical clock.
    pub fn cursor(&self) -> ShipCursor {
        self.stream.cursor()
    }

    /// How the open went, and lifetime counters.
    pub fn info(&self) -> ReplicaInfo {
        self.info
    }

    /// The leader directory being tailed.
    pub fn leader_dir(&self) -> &Path {
        &self.leader_dir
    }

    /// The replica's own state directory.
    pub fn local_dir(&self) -> &Path {
        &self.local_dir
    }

    /// Ships, verifies and applies the next batch of at most
    /// [`ReplicaOptions::batch_ops`] operations, publishing one new
    /// generation if anything was applied. Handles retry, re-bootstrap
    /// and rotation internally; see [`PollReport`] for what happened.
    pub fn poll(&mut self) -> Result<PollReport, ReplicaError> {
        let metrics = Arc::clone(self.shared.metrics());
        metrics.repl_polls.inc();
        let mut span =
            loosedb_obs::span!("engine.replica.poll", segment = self.stream.cursor().segment);
        let mut report = PollReport::default();
        let mut retries = 0u32;
        let batch = loop {
            match self.stream.poll(self.options.batch_ops) {
                Ok(batch) => break batch,
                Err(ShipError::CorruptFrame { .. }) if retries < self.options.max_retries => {
                    // Re-fetch: transient damage (a raced read, a repaired
                    // file) heals; the backoff bounds the leader re-read
                    // rate while it lasts.
                    metrics.repl_frames_rejected.inc();
                    metrics.repl_retries.inc();
                    let backoff = self.options.retry_backoff * (1u32 << retries.min(16));
                    retries += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                Err(e @ ShipError::CorruptFrame { .. }) => {
                    metrics.repl_frames_rejected.inc();
                    let ShipError::CorruptFrame { segment, offset, .. } = &e else {
                        unreachable!()
                    };
                    let key = (*segment, *offset);
                    if report.rebootstrapped || self.last_corrupt == Some(key) {
                        // A fresh snapshot did not route around this
                        // damage (leader-side bit rot): surface it
                        // rather than re-bootstrap in a livelock.
                        return Err(ReplicaError::Ship(e));
                    }
                    self.last_corrupt = Some(key);
                    self.rebootstrap(&metrics)?;
                    report.rebootstrapped = true;
                    retries = 0;
                }
                Err(e @ ShipError::SegmentRetired { .. }) => {
                    if report.rebootstrapped {
                        return Err(ReplicaError::Ship(e));
                    }
                    self.rebootstrap(&metrics)?;
                    report.rebootstrapped = true;
                    retries = 0;
                }
                Err(e) => return Err(ReplicaError::Ship(e)),
            }
        };

        report.lag_bytes = batch.lag_bytes;
        report.live_segment = batch.live_segment;
        report.ops_applied = batch.ops.len();
        if !batch.ops.is_empty() {
            let started = Instant::now();
            // The batch belongs to the segment the cursor was in *before*
            // any rotation the poll performed.
            let segment = self.stream.cursor().segment - u64::from(batch.rotated);
            let mirror = self.local_dir.join(mirror_name(segment));
            // Mirror first, fsync, then apply: the local log is durable
            // before the in-memory state (or the cursor) reflects it.
            self.io.append(&mirror, &batch.bytes)?;
            self.io.fsync(&mirror)?;
            self.shared
                .write(|db| apply_shipped(db, &batch.ops))
                .map_err(ReplicaError::Closure)?
                .map_err(ReplicaError::Closure)?;
            metrics.repl_frames_applied.add(batch.ops.len() as u64);
            metrics.repl_apply_ns.record_duration(started.elapsed());
            if !batch.rotated {
                // Commit point for the batch. When the poll also rotated,
                // the rotation below writes the (further advanced) cursor.
                self.write_cursor(self.stream.cursor())?;
            }
        }
        if batch.rotated {
            self.rotate_local(&metrics)?;
            report.rotated = true;
        }
        if let Some((segment, offset)) = self.last_corrupt {
            let c = self.stream.cursor();
            if c.segment > segment || (c.segment == segment && c.offset > offset) {
                // Progress past the damage (the leader repaired or
                // rotated): future corruption gets fresh retries.
                self.last_corrupt = None;
            }
        }
        metrics.repl_lag_bytes.set(batch.lag_bytes);
        report.caught_up = report.ops_applied == 0
            && !report.rotated
            && !report.rebootstrapped
            && batch.lag_bytes == 0;
        span.record("ops", report.ops_applied as u64);
        Ok(report)
    }

    /// Polls until the replica has consumed everything the leader has
    /// durably written (or until a torn in-flight append blocks further
    /// progress). Returns the number of operations applied.
    pub fn catch_up(&mut self) -> Result<u64, ReplicaError> {
        let mut total = 0u64;
        loop {
            let report = self.poll()?;
            total += report.ops_applied as u64;
            if report.caught_up
                || (report.ops_applied == 0 && !report.rotated && !report.rebootstrapped)
            {
                return Ok(total);
            }
        }
    }

    /// Promotes the replica to a writable leader: its replayed state
    /// becomes a fresh [`DurableDatabase`] directory at the generation
    /// *after* the last consumed segment, so a follower of the old
    /// leader can never confuse the two histories. Call this on leader
    /// loss; sessions holding the shared `Arc` keep serving reads
    /// throughout.
    pub fn promote(
        self,
        dir: impl Into<PathBuf>,
        policy: SyncPolicy,
    ) -> Result<DurableDatabase<Arc<I>>, ReplicaError> {
        let generation = self.stream.cursor().segment + 1;
        let db = match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.into_inner(),
            // Sessions still hold the Arc: promote a faithful copy.
            Err(shared) => {
                let image = shared.read_writer(persist::encode);
                persist::decode(image).map_err(|e| {
                    ReplicaError::Bootstrap(format!("promotion image does not decode: {e}"))
                })?
            }
        };
        DurableDatabase::create_with(self.io, dir, db, generation, policy).map_err(ReplicaError::Io)
    }

    // ------------------------------------------------------------------
    // Recovery and bootstrap
    // ------------------------------------------------------------------

    /// Rebuilds state from the local directory: cursor → base image →
    /// lenient mirror replay (truncating a torn tail). `None` if any
    /// piece is missing or damaged beyond what the commit protocol
    /// permits — the caller then bootstraps from the leader.
    fn resume(io: &Arc<I>, local: &Path, info: &mut ReplicaInfo) -> Option<(Database, ShipCursor)> {
        let cursor = ShipCursor::decode(&io.read(&local.join(CURSOR_NAME)).ok()?)?;
        let base = io.read(&local.join(base_name(cursor.segment))).ok()?;
        let mut db = persist::decode(&base[..]).ok()?;
        let mirror_path = local.join(mirror_name(cursor.segment));
        let data = io.read(&mirror_path).ok()?;
        let mut frames = Frames::new(&data);
        let mut applied = 0u64;
        let mut applied_at_cursor = 0u64;
        let mut damaged = false;
        while let Some(item) = frames.next() {
            match item {
                Ok(op) => {
                    replay_raw(&mut db, &op);
                    applied += 1;
                    if frames.valid_bytes() as u64 <= cursor.offset {
                        applied_at_cursor = applied;
                    }
                }
                Err(_) => {
                    damaged = true;
                    break;
                }
            }
        }
        let valid = frames.valid_bytes() as u64;
        if valid < cursor.offset {
            // The mirror lost bytes the cursor vouches for. The commit
            // protocol (mirror fsync before cursor replace) makes this
            // impossible under a crash, so the directory is damaged:
            // refuse, and re-bootstrap from the leader.
            return None;
        }
        if damaged {
            io.truncate(&mirror_path, valid).ok()?;
            info.mirror_tail_truncated = true;
        }
        info.mirror_ops_replayed = applied;
        // The mirror may run ahead of the cursor (crash between the
        // mirror fsync and the cursor replace): the surplus frames were
        // replayed above, so advance the epoch past them.
        let cursor = ShipCursor {
            segment: cursor.segment,
            offset: valid,
            epoch: cursor.epoch + (applied - applied_at_cursor),
        };
        Some((db, cursor))
    }

    /// Bootstraps local state from the leader's newest verified
    /// snapshot: base copy → empty mirror → cursor (the commit point) →
    /// retire stale local segments.
    fn bootstrap(
        io: &Arc<I>,
        leader: &Path,
        local: &Path,
    ) -> Result<(Database, ShipCursor), ReplicaError> {
        let mut span = loosedb_obs::span!("engine.replica.bootstrap");
        let (generation, image) = match Manifest::read_from(&**io, leader) {
            Some(m) => {
                let verified = io.read(&leader.join(snap_name(m.generation))).ok().filter(|data| {
                    data.len() as u64 == m.snapshot_len && crc32(data) == m.snapshot_crc
                });
                match verified {
                    Some(data) => (m.generation, data),
                    // The manifest's snapshot fails verification: fall
                    // back to the newest snapshot that decodes at all.
                    None => Self::newest_decodable_snapshot(io, leader).ok_or_else(|| {
                        ReplicaError::Bootstrap(
                            "no verifiable snapshot in the leader directory".into(),
                        )
                    })?,
                }
            }
            // A leader writes its first manifest at its first checkpoint:
            // a missing manifest is a fresh generation-0 leader.
            None if !io.exists(&leader.join(MANIFEST_NAME)) => {
                (0, persist::encode(&Database::new()).to_vec())
            }
            None => return Err(ReplicaError::Ship(ShipError::NoManifest)),
        };
        let db = persist::decode(&image[..]).map_err(|e| {
            ReplicaError::Bootstrap(format!("leader snapshot does not decode: {e}"))
        })?;
        atomic_write_with(&**io, &local.join(base_name(generation)), &image)?;
        let mirror = local.join(mirror_name(generation));
        io.write(&mirror, &[])?;
        io.fsync(&mirror)?;
        let cursor = ShipCursor::start_of(generation, 0);
        atomic_write_with(&**io, &local.join(CURSOR_NAME), &cursor.encode())?;
        Self::retire_local(io, local, generation)?;
        span.record("segment", generation);
        Ok((db, cursor))
    }

    /// The newest snapshot in the leader directory that decodes,
    /// regardless of what the manifest says.
    fn newest_decodable_snapshot(io: &Arc<I>, leader: &Path) -> Option<(u64, Vec<u8>)> {
        let mut generations: Vec<u64> = io
            .list(leader)
            .ok()?
            .into_iter()
            .filter_map(|p| parse_generation(p.file_name()?.to_str()?, "snap-", ".lsdf"))
            .collect();
        generations.sort_unstable_by(|a, b| b.cmp(a));
        for generation in generations {
            if let Ok(data) = io.read(&leader.join(snap_name(generation))) {
                if persist::decode(&data[..]).is_ok() {
                    return Some((generation, data));
                }
            }
        }
        None
    }

    /// Replaces the whole replica state from a fresh leader bootstrap.
    /// The wholesale writer swap publishes a `Full` delta, so session
    /// caches invalidate correctly; the shared epoch keeps increasing.
    fn rebootstrap(&mut self, metrics: &Metrics) -> Result<(), ReplicaError> {
        let (db, cursor) = Self::bootstrap(&self.io, &self.leader_dir, &self.local_dir)?;
        self.shared.write(|writer| *writer = db).map_err(ReplicaError::Closure)?;
        self.stream.seek(cursor);
        self.info.bootstraps += 1;
        metrics.repl_bootstraps.inc();
        Ok(())
    }

    /// Local checkpoint at a rotation boundary: write the new segment's
    /// base image, an empty mirror, the advanced cursor (the commit
    /// point), then retire the previous segment's files.
    ///
    /// The base is the replica's own re-encode — O(image) but cheap to
    /// produce and cache-preserving. When the rotation lands on the
    /// leader's *live* generation, the manifest carries the snapshot CRC
    /// for exactly this boundary: on any mismatch (a rule/kind/config
    /// change, which never ships through the WAL — or silent divergence)
    /// the replica adopts the leader's verified snapshot instead.
    fn rotate_local(&mut self, metrics: &Metrics) -> Result<(), ReplicaError> {
        let cursor = self.stream.cursor();
        let segment = cursor.segment;
        let mut image = self.shared.read_writer(|db| persist::encode(db).to_vec());
        if let Some(m) = Manifest::read_from(&*self.io, &self.leader_dir) {
            let matches_leader =
                m.snapshot_len == image.len() as u64 && m.snapshot_crc == crc32(&image);
            if m.generation == segment && !matches_leader {
                let leader_snap = io_read_verified(&*self.io, &self.leader_dir, &m);
                if let Some(data) = leader_snap {
                    let db = persist::decode(&data[..]).map_err(|e| {
                        ReplicaError::Bootstrap(format!("leader snapshot does not decode: {e}"))
                    })?;
                    self.shared.write(|writer| *writer = db).map_err(ReplicaError::Closure)?;
                    metrics.repl_bootstraps.inc();
                    self.info.bootstraps += 1;
                    image = data;
                }
                // An unverifiable leader snapshot mid-rotation: keep our
                // own image; real divergence resurfaces as CorruptFrame
                // on the next poll and re-bootstraps then.
            }
        }
        atomic_write_with(&*self.io, &self.local_dir.join(base_name(segment)), &image)?;
        let mirror = self.local_dir.join(mirror_name(segment));
        self.io.write(&mirror, &[])?;
        self.io.fsync(&mirror)?;
        self.write_cursor(cursor)?;
        Self::retire_local(&self.io, &self.local_dir, segment)?;
        Ok(())
    }

    /// Removes every local base/mirror not belonging to `keep`.
    fn retire_local(io: &Arc<I>, local: &Path, keep: u64) -> Result<(), ReplicaError> {
        for path in io.list(local).unwrap_or_default() {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let stale = parse_generation(name, "base-", ".lsdf").is_some_and(|g| g != keep)
                || parse_generation(name, "mirror-", ".log").is_some_and(|g| g != keep);
            if stale {
                io.remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Atomically replaces the cursor file.
    fn write_cursor(&self, cursor: ShipCursor) -> Result<(), ReplicaError> {
        atomic_write_with(&*self.io, &self.local_dir.join(CURSOR_NAME), &cursor.encode())?;
        Ok(())
    }
}

/// Applies shipped operations through the incremental paths, so both
/// inserts and removals publish precise deltas and follower caches carry
/// entries whose relationships the shipped batch never touched.
fn apply_shipped(db: &mut Database, ops: &[LogOp]) -> Result<(), ClosureError> {
    for op in ops {
        match op {
            LogOp::Insert(s, r, t) => {
                db.add_incremental(s.clone(), r.clone(), t.clone())?;
            }
            LogOp::Remove(s, r, t) => {
                let fact =
                    Fact::new(db.entity(s.clone()), db.entity(r.clone()), db.entity(t.clone()));
                db.remove_incremental(&fact)?;
            }
        }
    }
    Ok(())
}

/// Applies one mirrored operation without incremental closure
/// maintenance — recovery replays the whole mirror and builds the
/// closure once, when the [`SharedDatabase`] is constructed.
fn replay_raw(db: &mut Database, op: &LogOp) {
    match op {
        LogOp::Insert(s, r, t) => {
            db.add(s.clone(), r.clone(), t.clone());
        }
        LogOp::Remove(s, r, t) => {
            let fact = Fact::new(db.entity(s.clone()), db.entity(r.clone()), db.entity(t.clone()));
            db.remove(&fact);
        }
    }
}

/// Reads the manifest's snapshot and verifies its length and CRC.
fn io_read_verified(io: &dyn StorageIo, leader: &Path, m: &Manifest) -> Option<Vec<u8>> {
    io.read(&leader.join(snap_name(m.generation)))
        .ok()
        .filter(|data| data.len() as u64 == m.snapshot_len && crc32(data) == m.snapshot_crc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::DeltaSummary;
    use loosedb_store::io::MemIo;
    use loosedb_store::ship::wal_name;
    use loosedb_store::FactStore;
    use std::collections::BTreeSet;

    fn opts() -> ReplicaOptions {
        ReplicaOptions { batch_ops: 4, max_retries: 2, retry_backoff: Duration::ZERO }
    }

    fn leader_on(mem: &Arc<MemIo>) -> DurableDatabase<Arc<MemIo>> {
        DurableDatabase::open_with(Arc::clone(mem), "/leader", SyncPolicy::Always).unwrap()
    }

    fn replica_on(mem: &Arc<MemIo>) -> Replica<Arc<MemIo>> {
        Replica::open_with(Arc::clone(mem), "/leader", "/replica", opts()).unwrap()
    }

    /// The base-fact state as a canonical set of rendered triples —
    /// id-independent, so a re-bootstrapped replica (fresh interning)
    /// compares equal to the leader.
    fn rendered(store: &FactStore) -> BTreeSet<String> {
        store
            .iter()
            .map(|f| format!("{} {} {}", store.value(f.s), store.value(f.r), store.value(f.t)))
            .collect()
    }

    fn replica_state(replica: &Replica<Arc<MemIo>>) -> BTreeSet<String> {
        rendered(replica.shared().snapshot().store())
    }

    fn leader_state(leader: &DurableDatabase<Arc<MemIo>>) -> BTreeSet<String> {
        rendered(leader.database_ref().store())
    }

    #[test]
    fn follower_tails_a_fresh_leader_from_generation_zero() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem);
        let mut replica = replica_on(&mem);
        assert_eq!(replica.info().bootstraps, 1);
        leader.add("JOHN", "LIKES", "FELIX").unwrap();
        leader.add("JOHN", "EARNS", 25000i64).unwrap();
        assert_eq!(replica.catch_up().unwrap(), 2);
        assert_eq!(replica_state(&replica), leader_state(&leader));
        assert!(replica.poll().unwrap().caught_up);
        assert_eq!(replica.cursor().epoch, 2);
    }

    #[test]
    fn follower_publishes_precise_deltas_for_shipped_inserts() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem);
        let mut replica = replica_on(&mem);
        let floor = replica.shared().epoch();
        leader.add("A", "R1", "B").unwrap();
        leader.add("C", "R2", "D").unwrap();
        replica.catch_up().unwrap();
        let to = replica.shared().epoch();
        assert!(to > floor);
        // Replay went through the incremental path: the whole span is
        // precise, so follower session caches carry across polls.
        match replica.shared().delta_between(floor, to) {
            DeltaSummary::Precise(rels) => assert!(!rels.is_empty()),
            other => panic!("expected Precise, got {other:?}"),
        }
    }

    #[test]
    fn follower_rotates_through_a_checkpoint_with_retained_wal() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem);
        leader.set_retain_wals(1);
        let mut replica = replica_on(&mem);
        leader.add("A", "R", "B").unwrap();
        leader.checkpoint().unwrap();
        leader.add("C", "R", "D").unwrap();
        replica.catch_up().unwrap();
        assert_eq!(replica_state(&replica), leader_state(&leader));
        // The retained WAL let the follower walk through the rotation
        // without a snapshot re-bootstrap.
        assert_eq!(replica.info().bootstraps, 1);
        assert_eq!(replica.cursor().segment, 1);
        // Local state rotated too: only the new segment's files remain.
        let names: Vec<String> = mem
            .list(Path::new("/replica"))
            .unwrap()
            .into_iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert!(names.contains(&base_name(1)), "{names:?}");
        assert!(names.contains(&mirror_name(1)), "{names:?}");
        assert!(!names.contains(&base_name(0)), "{names:?}");
    }

    #[test]
    fn retired_segment_forces_a_rebootstrap() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem); // retain_wals = 0: immediate retirement
        let mut replica = replica_on(&mem);
        leader.add("A", "R", "B").unwrap();
        replica.catch_up().unwrap();
        leader.add("C", "R", "D").unwrap();
        leader.checkpoint().unwrap(); // wal-0 gone, follower cursor points into it
        leader.add("E", "R", "F").unwrap();
        let epoch_before = replica.shared().epoch();
        replica.catch_up().unwrap();
        assert_eq!(replica_state(&replica), leader_state(&leader));
        assert!(replica.info().bootstraps >= 2, "{:?}", replica.info());
        // Epochs keep increasing through the wholesale swap, and the
        // span across it reports FullAt — session caches invalidate.
        let to = replica.shared().epoch();
        assert!(to > epoch_before);
        assert!(matches!(
            replica.shared().delta_between(epoch_before, to),
            DeltaSummary::FullAt(_)
        ));
    }

    #[test]
    fn corrupt_frame_heals_by_rebootstrap_and_bit_rot_errors_out() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem);
        let mut replica = replica_on(&mem);
        leader.add("A", "R", "B").unwrap();
        replica.catch_up().unwrap();
        leader.add("C", "R", "D").unwrap();
        leader.add("E", "R", "F").unwrap();
        // Flip a bit in the last frame, past the follower's cursor.
        let wal = Path::new("/leader").join(wal_name(0));
        let mut data = mem.read(&wal).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        mem.write(&wal, &data).unwrap();

        // The damage sits in the live segment's tail frame: the follower
        // retries, re-bootstraps (generation 0 has no snapshot, so the
        // bootstrap replays the same damaged WAL prefix), and finally
        // surfaces the recurring damage instead of looping.
        let report = replica.poll().unwrap(); // intact prefix before the damage
        assert_eq!(report.ops_applied, 1);
        let err = replica.catch_up().unwrap_err();
        assert!(matches!(err, ReplicaError::Ship(ShipError::CorruptFrame { .. })), "{err}");
        let rejected = replica.shared().metrics_snapshot().repl.frames_rejected;
        assert!(rejected > 0, "{rejected}");

        // The leader repairs the file (re-fetch semantics): the follower
        // resumes and converges without manual intervention.
        let mut fixed = mem.read(&wal).unwrap();
        fixed[last] ^= 0xFF;
        mem.write(&wal, &fixed).unwrap();
        replica.catch_up().unwrap();
        assert_eq!(replica_state(&replica), leader_state(&leader));
    }

    #[test]
    fn crash_mid_replay_resumes_from_the_mirror() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem);
        {
            let mut replica = replica_on(&mem);
            leader.add("A", "R", "B").unwrap();
            leader.add("C", "R", "D").unwrap();
            replica.catch_up().unwrap();
        }
        // Power loss drops unsynced bytes; the mirror and cursor were
        // fsynced, so the reopened replica resumes instead of
        // re-bootstrapping, with its logical clock intact.
        mem.crash();
        leader.add("E", "R", "F").unwrap();
        let mut replica = replica_on(&mem);
        assert!(replica.info().resumed, "{:?}", replica.info());
        assert_eq!(replica.info().mirror_ops_replayed, 2);
        assert_eq!(replica.cursor().epoch, 2);
        replica.catch_up().unwrap();
        assert_eq!(replica.cursor().epoch, 3);
        assert_eq!(replica_state(&replica), leader_state(&leader));
    }

    #[test]
    fn promotion_creates_a_writable_journal_past_the_consumed_segment() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem);
        let mut replica = replica_on(&mem);
        leader.add("A", "R", "B").unwrap();
        replica.catch_up().unwrap();
        let expected = replica_state(&replica);
        // Leader dies; the follower takes over in a fresh directory.
        drop(leader);
        let mut promoted = replica.promote("/promoted", SyncPolicy::Always).unwrap();
        assert_eq!(promoted.generation(), 1);
        assert_eq!(rendered(promoted.database_ref().store()), expected);
        promoted.add("C", "R", "D").unwrap();
        // The promoted journal recovers like any durable database.
        drop(promoted);
        let reopened =
            DurableDatabase::open_with(Arc::clone(&mem), "/promoted", SyncPolicy::Always).unwrap();
        assert_eq!(rendered(reopened.database_ref().store()).len(), 2);
    }

    #[test]
    fn removals_ship_and_converge() {
        let mem = Arc::new(MemIo::new());
        let mut leader = leader_on(&mem);
        let mut replica = replica_on(&mem);
        let fact = leader.add("JOHN", "isa", "EMPLOYEE").unwrap();
        leader.add("EMPLOYEE", "gen", "PERSON").unwrap();
        replica.catch_up().unwrap();
        leader.remove(&fact).unwrap();
        replica.catch_up().unwrap();
        assert_eq!(replica_state(&replica), leader_state(&leader));
        assert_eq!(replica_state(&replica).len(), 1);
    }
}
