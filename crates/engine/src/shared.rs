//! Concurrent serving: snapshot-isolated reads over a single-writer
//! database.
//!
//! The paper's browsing model (§4) is interactive neighborhood inspection
//! by many independent sessions; [`crate::Database`] alone is
//! single-threaded by construction because every read refreshes the cached
//! closure through `&mut self`. [`SharedDatabase`] layers a copy-on-write
//! **generation** scheme on top:
//!
//! * Readers call [`SharedDatabase::snapshot`] and receive an
//!   `Arc<`[`Generation`]`>` — an immutable bundle of store, kind
//!   registry, materialized closure (with its incrementally maintained
//!   active domain) and an epoch number. They evaluate navigation,
//!   probing and queries against [`Generation::view`] for as long as they
//!   like, entirely outside any lock.
//! * A single writer (serialized by an internal mutex) applies updates to
//!   the owned [`Database`], re-derives the closure — through the
//!   incremental [`crate::closure::extend`] fast path for insertions —
//!   and *publishes* the next generation by swapping an `Arc` pointer
//!   under a `parking_lot` write lock held only for the assignment.
//!
//! Publishing is **O(delta · log N)**, not O(N): the store's triple
//! indexes, the interner and the closure (facts, provenance, domain
//! counts) are all persistent structures ([`loosedb_store::pindex`]), so
//! [`Generation::build`] clones them by bumping reference counts and the
//! writer's next update path-copies only the nodes it touches. E17
//! measures the resulting flat publish latency from 50k to 2M facts.
//!
//! Each publish also records *which relationships* the write delta
//! touched ([`crate::database::PublishDelta`]) in a bounded history ring;
//! [`SharedDatabase::rels_changed_between`] lets session caches carry
//! answers across epochs instead of discarding everything per publish.
//!
//! The result is snapshot isolation: a reader never observes a half-applied
//! update (store and closure travel together in one generation), never
//! blocks a writer, and is never blocked by one — the only shared lock is
//! held for an `Arc` clone (readers) or a pointer store (the writer).
//! Epochs increase by exactly one per published generation, which gives
//! downstream caches a free invalidation key (see the generation-keyed
//! query cache in `loosedb-browse`).

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use loosedb_obs::{Metrics, MetricsSnapshot};
use loosedb_store::{EntityId, EntityValue, Fact, FactStore, Interner};

use crate::closure::{Closure, ClosureError};
use crate::database::{Database, PublishDelta, TransactionError};
use crate::kind::KindRegistry;
use crate::view::ClosureView;

/// Publishes kept in the delta-relationship history ring. Sessions older
/// than this many generations fall back to full cache invalidation.
const DELTA_HISTORY: usize = 64;

/// What [`SharedDatabase::delta_between`] can say about an epoch span
/// `(from, to]`.
///
/// The distinction between the last two variants matters to caches with
/// different correctness needs. A *derived-answer* cache must treat both
/// as "anything may have changed". A *structural* cache (query plans,
/// whose staleness costs performance but never correctness) may carry
/// its entries across [`DeltaSummary::FullAt`] — the span is fully
/// accounted for, one publish just could not enumerate its touched
/// relationships — while [`DeltaSummary::Unknown`] means the span left
/// the bounded history ring entirely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaSummary {
    /// Exactly these relationships were touched by publishes in the
    /// span; anything disjoint from them is untouched.
    Precise(BTreeSet<EntityId>),
    /// Every publish in the span is still in the ring, but at least one
    /// was a full recomputation (removal, rule/kind/config change); the
    /// earliest such epoch is recorded.
    FullAt(u64),
    /// Part of the span has been evicted from the ring: nothing can be
    /// said about what changed.
    Unknown,
}

/// One immutable published generation: everything a reader needs to
/// evaluate retrieval, frozen at a single point in time.
pub struct Generation {
    epoch: u64,
    store: FactStore,
    kinds: KindRegistry,
    closure: Closure,
    /// The owning database's metrics; views created from this generation
    /// report their selectivity probes here.
    metrics: Arc<Metrics>,
}

impl Generation {
    /// Freezes the writer's current state. O(delta · log N): `refresh`
    /// extends the closure incrementally, and every clone below is a
    /// structural share (reference-count bumps on persistent-tree roots
    /// and interner chunks), not a copy. The active domain travels inside
    /// the closure as incrementally maintained occurrence counts — there
    /// is no per-publish rescan of any kind.
    fn build(epoch: u64, db: &mut Database) -> Result<Self, ClosureError> {
        db.refresh()?;
        let closure = db.closure()?.clone();
        Ok(Generation {
            epoch,
            store: db.store().clone(),
            kinds: db.kinds().clone(),
            closure,
            metrics: Arc::clone(db.metrics()),
        })
    }

    /// The generation number: increases by exactly one per publish, so it
    /// doubles as a cache-invalidation key.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen fact store.
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// The frozen entity interner.
    pub fn interner(&self) -> &Interner {
        self.store.interner()
    }

    /// The materialized closure of this generation.
    pub fn closure(&self) -> &Closure {
        &self.closure
    }

    /// The kind registry of this generation.
    pub fn kinds(&self) -> &KindRegistry {
        &self.kinds
    }

    /// Looks up an entity in the frozen interner.
    pub fn lookup(&self, value: &EntityValue) -> Option<EntityId> {
        self.store.lookup(value)
    }

    /// Looks up a symbol by name in the frozen interner.
    pub fn lookup_symbol(&self, name: &str) -> Option<EntityId> {
        self.store.lookup_symbol(name)
    }

    /// Renders an entity for display.
    pub fn display(&self, id: EntityId) -> String {
        self.store.display(id)
    }

    /// A retrieval view over this generation. Cheap — the active domain
    /// is maintained incrementally by the closure and only materialized
    /// if a universal quantifier asks for it.
    pub fn view(&self) -> ClosureView<'_> {
        ClosureView::new(&self.closure, self.store.interner(), &self.kinds)
            .with_probe_counter(self.metrics.count_probes.clone())
    }

    /// A retrieval view that resolves entities through `interner` instead
    /// of the generation's own.
    ///
    /// `interner` must be an *extension* of this generation's interner — a
    /// clone that has only had further values appended (interners are
    /// append-only, so every id the closure mentions resolves identically).
    /// This is how a reader session evaluates a query mentioning constants
    /// the frozen snapshot never interned: it parses against a private
    /// extension and the extra ids, being beyond the snapshot's range,
    /// simply match nothing.
    pub fn view_with_interner<'a>(&'a self, interner: &'a Interner) -> ClosureView<'a> {
        debug_assert!(
            interner.len() >= self.interner().len(),
            "interner must extend the generation's interner"
        );
        ClosureView::new(&self.closure, interner, &self.kinds)
            .with_probe_counter(self.metrics.count_probes.clone())
    }

    /// The metrics registry shared with the owning database.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }
}

/// A concurrently readable database: immutable `Arc`-shared closure
/// generations published by a single writer.
///
/// ```
/// use loosedb_engine::{Database, SharedDatabase};
/// use loosedb_engine::FactView;
///
/// let mut db = Database::new();
/// db.add("JOHN", "isa", "EMPLOYEE");
/// db.add("EMPLOYEE", "EARNS", "SALARY");
/// let shared = SharedDatabase::new(db).unwrap();
///
/// // Readers hold generations; writers publish new ones.
/// let before = shared.snapshot();
/// shared.insert("MARY", "isa", "EMPLOYEE").unwrap();
/// let after = shared.snapshot();
///
/// // The old generation still answers from its frozen state.
/// assert!(before.lookup_symbol("MARY").is_none());
/// let mary = after.lookup_symbol("MARY").unwrap();
/// let earns = after.lookup_symbol("EARNS").unwrap();
/// let salary = after.lookup_symbol("SALARY").unwrap();
/// assert!(after.view().holds(&loosedb_store::Fact::new(mary, earns, salary)));
/// assert_eq!(after.epoch(), before.epoch() + 1);
/// ```
pub struct SharedDatabase {
    /// The current generation. Readers hold the lock just long enough to
    /// clone the `Arc`; the writer holds it just long enough to store a
    /// pointer — evaluation never happens under this lock.
    current: RwLock<Arc<Generation>>,
    /// The owned database, mutated by at most one writer at a time.
    writer: Mutex<Database>,
    /// Ring of `(epoch, delta)` for the most recent publishes: which
    /// relationships each generation's write delta touched. Lets session
    /// caches invalidate per relationship instead of wholesale.
    deltas: Mutex<VecDeque<(u64, PublishDelta)>>,
    /// Writer-database metrics, cloned out so readers can snapshot
    /// without touching the writer mutex.
    metrics: Arc<Metrics>,
}

impl SharedDatabase {
    /// Takes ownership of a database, computes its closure and publishes
    /// the first generation (epoch 1).
    pub fn new(mut db: Database) -> Result<Self, ClosureError> {
        let first = Generation::build(1, &mut db)?;
        db.take_publish_delta(); // epoch 1 is every session's floor
        let metrics = Arc::clone(db.metrics());
        metrics.epoch.set(1);
        Ok(SharedDatabase {
            current: RwLock::new(Arc::new(first)),
            writer: Mutex::new(db),
            deltas: Mutex::new(VecDeque::new()),
            metrics,
        })
    }

    /// The metrics registry shared by the writer database and every
    /// published generation.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// A typed point-in-time snapshot of every well-known metric. Does
    /// not take the writer mutex — safe to call from any thread at any
    /// time.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The current generation. Lock-free for all practical purposes: the
    /// read lock is held only for an `Arc` clone, never during
    /// evaluation, so an in-flight write delays a reader by at most one
    /// pointer store.
    pub fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read())
    }

    /// The epoch of the current generation.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Publishes the writer database's current state as the next
    /// generation. `db` must be the guard of `self.writer`.
    pub(crate) fn publish(&self, db: &mut Database) -> Result<(), ClosureError> {
        // Only the writer mutates `current`, and the caller holds the
        // writer mutex, so reading the epoch outside the write lock is
        // race-free.
        let epoch = self.current.read().epoch;
        let started = Instant::now();
        let mut span = loosedb_obs::span!("engine.publish", epoch = epoch + 1);
        let next = Generation::build(epoch + 1, db)?;
        let delta = db.take_publish_delta();
        if let PublishDelta::Rels(rels) = &delta {
            self.metrics.publish_delta_rels.record(rels.len() as u64);
            span.record("delta_rels", rels.len() as u64);
        } else {
            span.record("delta_full", true);
        }
        {
            let mut deltas = self.deltas.lock();
            deltas.push_back((epoch + 1, delta));
            while deltas.len() > DELTA_HISTORY {
                deltas.pop_front();
            }
        }
        *self.current.write() = Arc::new(next);
        self.metrics.publishes.inc();
        self.metrics.publish_ns.record_duration(started.elapsed());
        self.metrics.epoch.set(epoch + 1);
        Ok(())
    }

    /// What happened across the epoch span `(from, to]`, as precisely as
    /// the bounded delta history can say. See [`DeltaSummary`] for the
    /// three answers and what a cache holder may do with each.
    pub fn delta_between(&self, from: u64, to: u64) -> DeltaSummary {
        if from > to {
            return DeltaSummary::Unknown;
        }
        let mut rels = BTreeSet::new();
        if from == to {
            return DeltaSummary::Precise(rels);
        }
        let deltas = self.deltas.lock();
        let mut covered = 0u64;
        let mut full_at = None;
        for (epoch, delta) in deltas.iter() {
            if *epoch <= from || *epoch > to {
                continue;
            }
            match delta {
                PublishDelta::Rels(r) => rels.extend(r.iter().copied()),
                PublishDelta::Full => {
                    if full_at.is_none() {
                        full_at = Some(*epoch);
                    }
                }
            }
            covered += 1;
        }
        // Every epoch in the span must still be in the ring; otherwise the
        // answer would silently miss evicted deltas.
        if covered != to - from {
            return DeltaSummary::Unknown;
        }
        match full_at {
            Some(epoch) => DeltaSummary::FullAt(epoch),
            None => DeltaSummary::Precise(rels),
        }
    }

    /// The relationships touched by every publish in `(from, to]`, or
    /// `None` if that cannot be answered precisely — some publish in the
    /// span was a full recomputation (removal, rule/kind/config change),
    /// or the span has left the bounded history ring. `None` means "assume
    /// anything changed".
    ///
    /// A session holding cached answers valid at epoch `from` that has
    /// just observed epoch `to` may keep every answer touching none of
    /// the returned relationships. Callers that can act on the
    /// distinction between "a full recompute happened at a known epoch"
    /// and "the span left the ring" should use
    /// [`SharedDatabase::delta_between`] instead.
    pub fn rels_changed_between(&self, from: u64, to: u64) -> Option<BTreeSet<EntityId>> {
        match self.delta_between(from, to) {
            DeltaSummary::Precise(rels) => Some(rels),
            DeltaSummary::FullAt(_) | DeltaSummary::Unknown => None,
        }
    }

    /// Inserts a fact (unchecked, like [`Database::add`]) and publishes a
    /// new generation. The closure is maintained incrementally
    /// ([`crate::closure::extend`]); readers keep serving the previous
    /// generation throughout.
    pub fn insert(
        &self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Result<Fact, ClosureError> {
        let mut db = self.writer.lock();
        let before = db.store().epoch();
        let fact = db.add_incremental(s, r, t)?;
        if db.store().epoch() != before {
            self.publish(&mut db)?;
        }
        Ok(fact)
    }

    /// Transactionally inserts a fact ([`Database::try_add`] semantics):
    /// on success a new generation is published; a rejected update
    /// publishes nothing and readers never see it.
    pub fn try_insert(
        &self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Result<Fact, TransactionError> {
        let mut db = self.writer.lock();
        let before = db.store().epoch();
        let fact = db.try_add(s, r, t)?;
        if db.store().epoch() != before {
            self.publish(&mut db)?;
        }
        Ok(fact)
    }

    /// Removes a base fact and publishes a new generation. The closure is
    /// maintained incrementally ([`Database::remove_incremental`]): the
    /// retraction wave deletes exactly the consequences that lose
    /// support, and the published delta stays precise — readers' caches
    /// keyed on disjoint rels survive the removal.
    pub fn remove(&self, f: &Fact) -> Result<bool, ClosureError> {
        let mut db = self.writer.lock();
        let removed = db.remove_incremental(f)?;
        if removed {
            self.publish(&mut db)?;
        }
        Ok(removed)
    }

    /// Applies an arbitrary batch of updates to the writer database, then
    /// publishes exactly one new generation. Readers observe the batch
    /// atomically: either the generation before all of `f`'s changes or
    /// the one after all of them, never an intermediate state.
    pub fn write<T>(&self, f: impl FnOnce(&mut Database) -> T) -> Result<T, ClosureError> {
        let mut db = self.writer.lock();
        let out = f(&mut db);
        self.publish(&mut db)?;
        Ok(out)
    }

    /// Extends the writer's interner without publishing. Interning never
    /// changes the fact set or the store epoch, so the current generation
    /// remains a faithful snapshot; the next publish carries the longer
    /// interner. This is how the sharded router keeps every shard's
    /// interner identical: each write interns its entity values into all
    /// shards, in shard order, before any shard stores the fact
    /// (interners are append-only, so equal insertion order means equal
    /// id assignment everywhere).
    pub(crate) fn extend_interner<T>(
        &self,
        f: impl FnOnce(&mut loosedb_store::Interner) -> T,
    ) -> T {
        let mut db = self.writer.lock();
        f(db.store_interner_mut())
    }

    /// Applies a batch of updates and publishes a new generation only if
    /// the store epoch moved — the batch analogue of
    /// [`SharedDatabase::insert`]'s publish-if-fresh behavior, used by
    /// the sharded router for owner-routed writes and promotion
    /// re-broadcasts where the fact may already be present.
    pub(crate) fn write_if_changed<T>(
        &self,
        f: impl FnOnce(&mut Database) -> Result<T, ClosureError>,
    ) -> Result<T, ClosureError> {
        let mut db = self.writer.lock();
        let before = db.store().epoch();
        let out = f(&mut db)?;
        if db.store().epoch() != before {
            self.publish(&mut db)?;
        }
        Ok(out)
    }

    /// Runs `f` with shared (read-only) access to the writer database,
    /// without publishing. The writer lock is held for the duration, so
    /// `f` observes a state no concurrent [`SharedDatabase::write`] is
    /// halfway through — this is how a replica snapshots itself (base
    /// images at rotation, promotion) without spending an epoch.
    pub fn read_writer<T>(&self, f: impl FnOnce(&Database) -> T) -> T {
        let db = self.writer.lock();
        f(&db)
    }

    /// Consumes the shared database, returning the owned writer database.
    pub fn into_inner(self) -> Database {
        self.writer.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::FactView;
    use loosedb_store::Pattern;

    fn base() -> Database {
        let mut db = Database::new();
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("EMPLOYEE", "EARNS", "SALARY");
        db
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let shared = SharedDatabase::new(base()).unwrap();
        let g1 = shared.snapshot();
        assert_eq!(g1.epoch(), 1);
        let n1 = g1.closure().len();

        shared.insert("MARY", "isa", "EMPLOYEE").unwrap();
        // The held generation is untouched; the new one has more facts.
        assert_eq!(g1.closure().len(), n1);
        assert!(g1.lookup_symbol("MARY").is_none());
        let g2 = shared.snapshot();
        assert_eq!(g2.epoch(), 2);
        assert!(g2.closure().len() > n1);
    }

    #[test]
    fn derived_facts_travel_with_the_generation() {
        let shared = SharedDatabase::new(base()).unwrap();
        shared.insert("MARY", "isa", "EMPLOYEE").unwrap();
        let g = shared.snapshot();
        let mary = g.lookup_symbol("MARY").unwrap();
        let earns = g.lookup_symbol("EARNS").unwrap();
        let salary = g.lookup_symbol("SALARY").unwrap();
        // Membership inference applied before publication.
        assert!(g.view().holds(&Fact::new(mary, earns, salary)));
    }

    #[test]
    fn rejected_transaction_publishes_nothing() {
        let mut db = base();
        db.add("LOVES", "contra", "HATES");
        db.add("JOHN", "LOVES", "MARY");
        let shared = SharedDatabase::new(db).unwrap();
        let before = shared.epoch();
        assert!(shared.try_insert("JOHN", "HATES", "MARY").is_err());
        assert_eq!(shared.epoch(), before);
        // An accepted transaction publishes exactly one generation.
        shared.try_insert("JOHN", "LOVES", "SUE").unwrap();
        assert_eq!(shared.epoch(), before + 1);
    }

    #[test]
    fn duplicate_insert_does_not_publish() {
        let shared = SharedDatabase::new(base()).unwrap();
        let before = shared.epoch();
        shared.insert("JOHN", "isa", "EMPLOYEE").unwrap();
        assert_eq!(shared.epoch(), before);
    }

    #[test]
    fn batched_write_publishes_once() {
        let shared = SharedDatabase::new(base()).unwrap();
        let before = shared.epoch();
        shared
            .write(|db| {
                db.add("A", "LINKS", "B");
                db.add("B", "LINKS", "C");
                db.add("C", "LINKS", "D");
            })
            .unwrap();
        assert_eq!(shared.epoch(), before + 1);
        let g = shared.snapshot();
        let links = g.lookup_symbol("LINKS").unwrap();
        assert_eq!(g.view().matches(Pattern::from_rel(links)).unwrap().len(), 3);
    }

    #[test]
    fn removal_publishes_recomputed_closure() {
        let shared = SharedDatabase::new(base()).unwrap();
        let g = shared.snapshot();
        let john = g.lookup_symbol("JOHN").unwrap();
        let isa = g.lookup_symbol("isa").unwrap();
        let employee = g.lookup_symbol("EMPLOYEE").unwrap();
        let earns = g.lookup_symbol("EARNS").unwrap();
        let salary = g.lookup_symbol("SALARY").unwrap();
        let derived = Fact::new(john, earns, salary);
        assert!(g.view().holds(&derived));

        assert!(shared.remove(&Fact::new(john, isa, employee)).unwrap());
        let g2 = shared.snapshot();
        // The derived fact lost its support and is gone in the new
        // generation; the old generation still holds it.
        assert!(!g2.view().holds(&derived));
        assert!(g.view().holds(&derived));
    }

    #[test]
    fn removal_publishes_a_precise_delta() {
        // Base-fact removal must never degrade the delta ring to Full:
        // the retraction wave knows exactly which rels it touched.
        let shared = SharedDatabase::new(base()).unwrap();
        shared.insert("FELIX", "OWNS", "YARN").unwrap();
        let floor = shared.epoch();
        let g = shared.snapshot();
        let john = g.lookup_symbol("JOHN").unwrap();
        let isa = g.lookup_symbol("isa").unwrap();
        let employee = g.lookup_symbol("EMPLOYEE").unwrap();
        assert!(shared.remove(&Fact::new(john, isa, employee)).unwrap());
        match shared.delta_between(floor, floor + 1) {
            DeltaSummary::Precise(rels) => {
                assert!(rels.contains(&isa));
                // JOHN's derived EARNS facts fell with the membership.
                assert!(rels.contains(&g.lookup_symbol("EARNS").unwrap()));
                // The unrelated rel is untouched.
                assert!(!rels.contains(&g.lookup_symbol("OWNS").unwrap()));
            }
            other => panic!("expected Precise, got {other:?}"),
        }
    }

    #[test]
    fn full_publish_is_pinned_to_its_epoch_in_the_delta_ring() {
        let shared = SharedDatabase::new(base()).unwrap();
        let floor = shared.epoch();
        shared.insert("A", "R1", "B").unwrap(); // floor + 1: precise
        let g = shared.snapshot();
        let a = g.lookup_symbol("A").unwrap();
        let r1 = g.lookup_symbol("R1").unwrap();
        let b = g.lookup_symbol("B").unwrap();
        // [`SharedDatabase::remove`] is precise now, so force a Full by
        // taking the legacy full-recompute removal path through `write`.
        shared.write(|db| db.remove(&Fact::new(a, r1, b))).unwrap(); // floor + 2: Full
        shared.insert("C", "R2", "D").unwrap(); // floor + 3: precise
        shared.insert("E", "R3", "F").unwrap(); // floor + 4: precise

        // Spans before the Full stay precise: the removal does not nuke
        // carry for older spans.
        assert!(matches!(shared.delta_between(floor, floor + 1), DeltaSummary::Precise(_)));
        // Spans crossing the Full see it, pinned to its exact epoch.
        assert_eq!(shared.delta_between(floor + 1, floor + 2), DeltaSummary::FullAt(floor + 2));
        assert_eq!(shared.delta_between(floor, floor + 4), DeltaSummary::FullAt(floor + 2));
        // Spans strictly after the Full are precise again.
        match shared.delta_between(floor + 2, floor + 4) {
            DeltaSummary::Precise(rels) => {
                let g = shared.snapshot();
                assert!(rels.contains(&g.lookup_symbol("R2").unwrap()));
                assert!(rels.contains(&g.lookup_symbol("R3").unwrap()));
                assert!(!rels.contains(&r1));
            }
            other => panic!("expected Precise, got {other:?}"),
        }
        // rels_changed_between is the collapsed view of the same answer.
        assert!(shared.rels_changed_between(floor, floor + 4).is_none());
        assert!(shared.rels_changed_between(floor + 2, floor + 4).is_some());

        // Evict the ring: the span becomes Unknown, not FullAt.
        for i in 0..(DELTA_HISTORY as u64 + 4) {
            shared.insert(format!("S{i}"), "BULK", format!("T{i}")).unwrap();
        }
        assert_eq!(shared.delta_between(floor, floor + 4), DeltaSummary::Unknown);
        assert_eq!(shared.delta_between(floor + 1, floor + 2), DeltaSummary::Unknown);
    }

    #[test]
    fn view_with_extended_interner_matches_nothing_for_new_ids() {
        let shared = SharedDatabase::new(base()).unwrap();
        let g = shared.snapshot();
        let mut ext = g.interner().clone();
        let ghost = ext.symbol("NEVER-STORED");
        let view = g.view_with_interner(&ext);
        assert!(view.matches(Pattern::from_source(ghost)).unwrap().is_empty());
        // Known ids resolve identically through the extension.
        let john = g.lookup_symbol("JOHN").unwrap();
        assert_eq!(view.matches(Pattern::from_source(john)).unwrap().len(), 2);
    }
}
