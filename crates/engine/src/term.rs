//! Terms, templates and bindings.
//!
//! A *template* (§2.4) is a fact in which any position may hold a variable
//! instead of an entity. Templates serve three roles in the paper: the
//! left- and right-hand sides of rules, the atomic formulas of the query
//! language (§2.7), and the primitive queries used by navigation (§4.1).

use std::fmt;

use loosedb_store::{EntityId, Fact, Pattern};

/// A variable identifier, scoped to the rule or query it appears in.
///
/// Variables are small dense integers; the structure that owns the
/// template (a [`crate::rule::Rule`] or a query) maps them back to names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The raw index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// One position of a template: a constant entity or a variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A constant entity.
    Const(EntityId),
    /// A variable.
    Var(Var),
}

impl Term {
    /// Returns the constant, if this term is one.
    #[inline]
    pub fn as_const(self) -> Option<EntityId> {
        match self {
            Term::Const(e) => Some(e),
            Term::Var(_) => None,
        }
    }

    /// Returns the variable, if this term is one.
    #[inline]
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// True if this term is a variable.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Resolves this term under a binding set: constants stay, bound
    /// variables resolve, free variables yield `None`.
    #[inline]
    pub fn resolve(self, bindings: &Bindings) -> Option<EntityId> {
        match self {
            Term::Const(e) => Some(e),
            Term::Var(v) => bindings.get(v),
        }
    }
}

impl From<EntityId> for Term {
    fn from(e: EntityId) -> Self {
        Term::Const(e)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

/// A template `(s, r, t)` whose positions are [`Term`]s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Template {
    /// The source term.
    pub s: Term,
    /// The relationship term.
    pub r: Term,
    /// The target term.
    pub t: Term,
}

impl Template {
    /// Creates a template from three terms.
    pub fn new(s: impl Into<Term>, r: impl Into<Term>, t: impl Into<Term>) -> Self {
        Template { s: s.into(), r: r.into(), t: t.into() }
    }

    /// The three terms as an array `[s, r, t]`.
    #[inline]
    pub fn terms(&self) -> [Term; 3] {
        [self.s, self.r, self.t]
    }

    /// All variables occurring in this template, in position order, with
    /// duplicates.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms().into_iter().filter_map(Term::as_var)
    }

    /// True if the template contains no variables.
    pub fn is_ground(&self) -> bool {
        self.vars().next().is_none()
    }

    /// The ground fact this template denotes, if it has no variables.
    pub fn as_fact(&self) -> Option<Fact> {
        Some(Fact::new(self.s.as_const()?, self.r.as_const()?, self.t.as_const()?))
    }

    /// The storage [`Pattern`] obtained by resolving terms under
    /// `bindings`: constants and bound variables become bound positions,
    /// free variables become wildcards.
    pub fn to_pattern(&self, bindings: &Bindings) -> Pattern {
        Pattern::new(self.s.resolve(bindings), self.r.resolve(bindings), self.t.resolve(bindings))
    }

    /// Attempts to extend `bindings` so that this template matches `fact`.
    ///
    /// On success returns the bindings extended with any newly bound
    /// variables; on mismatch returns `None` and leaves `bindings`
    /// untouched (the caller keeps its copy).
    pub fn unify(&self, fact: &Fact, bindings: &Bindings) -> Option<Bindings> {
        let mut out = bindings.clone();
        for (term, actual) in self.terms().into_iter().zip(fact.positions()) {
            match term {
                Term::Const(e) => {
                    if e != actual {
                        return None;
                    }
                }
                Term::Var(v) => match out.get(v) {
                    Some(bound) if bound != actual => return None,
                    Some(_) => {}
                    None => out.bind(v, actual),
                },
            }
        }
        Some(out)
    }

    /// Instantiates this template into a ground fact under `bindings`.
    /// Returns `None` if any variable is unbound.
    pub fn instantiate(&self, bindings: &Bindings) -> Option<Fact> {
        Some(Fact::new(
            self.s.resolve(bindings)?,
            self.r.resolve(bindings)?,
            self.t.resolve(bindings)?,
        ))
    }

    /// Substitutes every occurrence of entity `from` with `to`, in every
    /// position. Used by probing to build broader queries.
    pub fn replace_entity(&self, from: EntityId, to: EntityId) -> Template {
        let sub = |term: Term| match term {
            Term::Const(e) if e == from => Term::Const(to),
            other => other,
        };
        Template { s: sub(self.s), r: sub(self.r), t: sub(self.t) }
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = |t: Term| match t {
            Term::Const(e) => e.to_string(),
            Term::Var(v) => format!("?{}", v.0),
        };
        write!(f, "({}, {}, {})", p(self.s), p(self.r), p(self.t))
    }
}

/// A set of variable bindings.
///
/// Backed by a small vector indexed by variable id — rules and queries
/// have few variables, so this is faster and simpler than a map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<EntityId>>,
}

impl Bindings {
    /// Creates an empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The binding of `v`, if any.
    #[inline]
    pub fn get(&self, v: Var) -> Option<EntityId> {
        self.slots.get(v.index()).copied().flatten()
    }

    /// Binds `v` to `e`, growing the slot table as needed.
    #[inline]
    pub fn bind(&mut self, v: Var, e: EntityId) {
        if self.slots.len() <= v.index() {
            self.slots.resize(v.index() + 1, None);
        }
        self.slots[v.index()] = Some(e);
    }

    /// Removes the binding of `v` (used when backtracking).
    #[inline]
    pub fn unbind(&mut self, v: Var) {
        if let Some(slot) = self.slots.get_mut(v.index()) {
            *slot = None;
        }
    }

    /// True if `v` is bound.
    #[inline]
    pub fn is_bound(&self, v: Var) -> bool {
        self.get(v).is_some()
    }

    /// Iterates over `(var, entity)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, EntityId)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, slot)| slot.map(|e| (Var(i as u32), e)))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn unify_binds_fresh_variables() {
        let tpl = Template::new(Var(0), e(5), Var(1));
        let fact = Fact::new(e(1), e(5), e(2));
        let b = tpl.unify(&fact, &Bindings::new()).expect("unifies");
        assert_eq!(b.get(Var(0)), Some(e(1)));
        assert_eq!(b.get(Var(1)), Some(e(2)));
    }

    #[test]
    fn unify_respects_existing_bindings() {
        let tpl = Template::new(Var(0), e(5), Var(0)); // self-citation shape (x, CITES, x)
        assert!(tpl.unify(&Fact::new(e(1), e(5), e(1)), &Bindings::new()).is_some());
        assert!(tpl.unify(&Fact::new(e(1), e(5), e(2)), &Bindings::new()).is_none());
    }

    #[test]
    fn unify_rejects_constant_mismatch() {
        let tpl = Template::new(e(1), Var(0), e(2));
        assert!(tpl.unify(&Fact::new(e(9), e(5), e(2)), &Bindings::new()).is_none());
    }

    #[test]
    fn unify_does_not_mutate_input_on_failure() {
        let tpl = Template::new(Var(0), e(5), Var(0));
        let mut b = Bindings::new();
        b.bind(Var(0), e(7));
        let before = b.clone();
        assert!(tpl.unify(&Fact::new(e(1), e(5), e(2)), &b).is_none());
        assert_eq!(b, before);
    }

    #[test]
    fn to_pattern_mixes_constants_and_bindings() {
        let tpl = Template::new(Var(0), e(5), Var(1));
        let mut b = Bindings::new();
        b.bind(Var(0), e(3));
        let p = tpl.to_pattern(&b);
        assert_eq!(p, Pattern::new(Some(e(3)), Some(e(5)), None));
    }

    #[test]
    fn instantiate_requires_all_bound() {
        let tpl = Template::new(Var(0), e(5), Var(1));
        let mut b = Bindings::new();
        b.bind(Var(0), e(3));
        assert_eq!(tpl.instantiate(&b), None);
        b.bind(Var(1), e(4));
        assert_eq!(tpl.instantiate(&b), Some(Fact::new(e(3), e(5), e(4))));
    }

    #[test]
    fn replace_entity_hits_every_position() {
        let tpl = Template::new(e(1), e(1), Var(0));
        let out = tpl.replace_entity(e(1), e(9));
        assert_eq!(out, Template::new(e(9), e(9), Var(0)));
    }

    #[test]
    fn ground_template_to_fact() {
        let tpl = Template::new(e(1), e(2), e(3));
        assert!(tpl.is_ground());
        assert_eq!(tpl.as_fact(), Some(Fact::new(e(1), e(2), e(3))));
        assert_eq!(Template::new(Var(0), e(2), e(3)).as_fact(), None);
    }

    #[test]
    fn bindings_bind_unbind() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        b.bind(Var(3), e(7));
        assert!(b.is_bound(Var(3)));
        assert!(!b.is_bound(Var(0)));
        assert_eq!(b.len(), 1);
        b.unbind(Var(3));
        assert!(b.is_empty());
    }

    #[test]
    fn bindings_iter_in_var_order() {
        let mut b = Bindings::new();
        b.bind(Var(2), e(1));
        b.bind(Var(0), e(5));
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs, vec![(Var(0), e(5)), (Var(2), e(1))]);
    }
}
