//! The loosely structured database: facts + rules + cached closure (§2.6).
//!
//! [`Database`] ties the layers together: the schema-free [`FactStore`],
//! the relationship-kind registry (§2.2), user rules (§2.4–2.5), the
//! built-in rule configuration (§3, §6.1), and a cached materialized
//! closure that is recomputed lazily whenever facts, rules, kinds or
//! configuration change.
//!
//! Two update disciplines are offered, reflecting the paper's permissive
//! stance (§2.6 allows inconsistent raw facts; §2.5 demands the closure be
//! contradiction-free for the database to be *valid*):
//!
//! * [`Database::add`] / [`Database::remove`] — unchecked, always succeed;
//!   validity can be inspected later via [`Database::validate`].
//! * [`Database::try_add`] — transactional: the fact is inserted only if
//!   it introduces no *new* integrity violation, otherwise it is rolled
//!   back and the offending violations are returned.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use loosedb_obs::Metrics;
use loosedb_store::{log as factlog, snapshot, EntityId, EntityValue, Fact, FactLog, FactStore};

use crate::closure::{self, Closure, ClosureError, ExtendDelta, Provenance, Strategy, Violation};
use crate::config::{InferenceConfig, RuleGroup};
use crate::kind::KindRegistry;
use crate::rule::{Rule, RuleError, RuleSet};
use crate::view::ClosureView;

/// Errors from transactional updates.
#[derive(Clone, Debug, PartialEq)]
pub enum TransactionError {
    /// The update would introduce these integrity violations; it was
    /// rolled back.
    Integrity(Vec<Violation>),
    /// Closure computation failed (e.g. configured bounds exceeded).
    Closure(ClosureError),
}

impl std::fmt::Display for TransactionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransactionError::Integrity(v) => {
                write!(f, "update rejected: {} new integrity violation(s)", v.len())
            }
            TransactionError::Closure(e) => write!(f, "closure computation failed: {e}"),
        }
    }
}

impl std::error::Error for TransactionError {}

impl From<ClosureError> for TransactionError {
    fn from(e: ClosureError) -> Self {
        TransactionError::Closure(e)
    }
}

/// How the closure changed since the last [`Database::take_publish_delta`]
/// drain — what a snapshot publisher needs to invalidate downstream caches
/// precisely instead of wholesale.
#[derive(Clone, Debug)]
pub enum PublishDelta {
    /// All changes are confined to facts whose relationship is in this
    /// set (possibly empty: nothing changed). Cached answers that touch
    /// none of these relationships are still valid.
    Rels(BTreeSet<EntityId>),
    /// The closure was fully recomputed (removal, rule/kind/config change,
    /// or a cold cache); no cached answer can be trusted.
    Full,
}

impl PublishDelta {
    fn empty() -> Self {
        PublishDelta::Rels(BTreeSet::new())
    }
}

struct Cached {
    closure: Closure,
    store_epoch: u64,
    rules_epoch: u64,
    kinds_epoch: u64,
    config: InferenceConfig,
    strategy: Strategy,
}

/// A loosely structured database (§2.6): a set of facts and a set of
/// rules whose closure must be free of contradictions.
pub struct Database {
    store: FactStore,
    kinds: KindRegistry,
    rules: RuleSet,
    config: InferenceConfig,
    strategy: Strategy,
    cache: Option<Cached>,
    wal: Option<FactLog>,
    /// Changes accumulated since the last [`Database::take_publish_delta`].
    pending_delta: PublishDelta,
    /// Shared metrics registry; cloned into generations and wrappers
    /// (`SharedDatabase`, `DurableDatabase`) so every layer reports to
    /// the same counters.
    metrics: Arc<Metrics>,
}

impl Database {
    /// Creates an empty database with the default inference configuration.
    pub fn new() -> Self {
        Database::from_store(FactStore::new())
    }

    /// Wraps an existing fact store.
    pub fn from_store(store: FactStore) -> Self {
        Database {
            store,
            kinds: KindRegistry::new(),
            rules: RuleSet::new(),
            config: InferenceConfig::default(),
            strategy: Strategy::SemiNaive,
            cache: None,
            wal: None,
            pending_delta: PublishDelta::empty(),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// The metrics registry this database reports to.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Restores a database from a snapshot checkpoint plus an operation
    /// log tail (the recovery pattern for the paper's "dynamic set of
    /// facts", §6.1). Either path may name a missing file, in which case
    /// that half is skipped.
    pub fn recover(
        snapshot_path: impl AsRef<std::path::Path>,
        log_path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let mut store = if snapshot_path.as_ref().exists() {
            snapshot::load(snapshot_path)?
        } else {
            FactStore::new()
        };
        if log_path.as_ref().exists() {
            factlog::replay_file(log_path, &mut store)?;
        }
        Ok(Database::from_store(store))
    }

    /// Loads a database from a store snapshot (facts and entities only;
    /// rules, kinds and configuration are code-level and not persisted).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Database::from_store(snapshot::load(path)?))
    }

    /// Saves the base facts to a store snapshot.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        snapshot::save(&self.store, path)
    }

    /// Saves the *complete* database — facts, rules, kinds and
    /// configuration (see [`crate::persist`]).
    pub fn save_full(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::persist::save(self, path)
    }

    /// Loads a complete database saved by [`Database::save_full`].
    pub fn load_full(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        crate::persist::load(path)
    }

    // ------------------------------------------------------------------
    // Entities and base facts
    // ------------------------------------------------------------------

    /// Interns an entity value.
    pub fn entity(&mut self, value: impl Into<EntityValue>) -> EntityId {
        self.store.entity(value)
    }

    /// Looks up an entity without interning.
    pub fn lookup(&self, value: &EntityValue) -> Option<EntityId> {
        self.store.lookup(value)
    }

    /// Looks up a symbol by name without interning.
    pub fn lookup_symbol(&self, name: &str) -> Option<EntityId> {
        self.store.lookup_symbol(name)
    }

    /// Renders an entity for display.
    pub fn display(&self, id: EntityId) -> String {
        self.store.display(id)
    }

    /// Renders a fact for display.
    pub fn display_fact(&self, f: &Fact) -> String {
        self.store.display_fact(f)
    }

    /// Adds a fact described by three values (unchecked; §2.6 permits
    /// anything, including inconsistencies).
    pub fn add(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Fact {
        let fact = self.store.add(s, r, t);
        self.log_op(&fact, true);
        fact
    }

    /// Inserts a fact by id (unchecked).
    pub fn insert(&mut self, f: Fact) -> bool {
        let fresh = self.store.insert(f);
        if fresh {
            self.log_op(&f, true);
        }
        fresh
    }

    /// Removes a base fact. Removal cannot introduce violations (rules are
    /// monotone), so it is always unchecked. The closure cache goes stale
    /// and the next refresh recomputes it fully; warm-cache callers should
    /// prefer [`Database::remove_incremental`], which maintains the
    /// closure in O(consequences) and keeps the publish delta precise.
    pub fn remove(&mut self, f: &Fact) -> bool {
        let removed = self.store.remove(f);
        if removed {
            self.log_op(f, false);
        }
        removed
    }

    /// Imports facts from the plain-text format (see
    /// [`loosedb_store::text`]); returns the number of new facts.
    /// Imported facts go through [`Database::add`], so they are recorded
    /// in the write-ahead log when logging is enabled.
    pub fn import_facts(&mut self, input: &str) -> Result<usize, loosedb_store::TextError> {
        let before = self.base_len();
        for (s, r, t) in loosedb_store::text::parse_facts(input)? {
            self.add(s, r, t);
        }
        Ok(self.base_len() - before)
    }

    /// Exports the base facts in the plain-text format; the second value
    /// counts skipped path-entity facts (derived, re-derivable).
    pub fn export_facts(&self) -> (String, usize) {
        loosedb_store::text::dump_text(&self.store)
    }

    // ------------------------------------------------------------------
    // Write-ahead logging
    // ------------------------------------------------------------------

    /// Starts recording every base-fact insertion and removal into an
    /// operation log (see [`loosedb_store::log`]). Together with
    /// [`Database::save`] checkpoints and [`Database::recover`], this is
    /// the durability story for the paper's dynamic database.
    ///
    /// Facts mentioning composed path entities are not logged (they are
    /// derived data and store-specific; see [`loosedb_store::FactLog`]).
    pub fn enable_logging(&mut self) {
        if self.wal.is_none() {
            self.wal = Some(FactLog::new());
        }
    }

    /// Stops logging and returns the log recorded so far, if any.
    pub fn take_log(&mut self) -> Option<FactLog> {
        self.wal.take()
    }

    /// The operation log recorded so far, if logging is enabled.
    pub fn log(&self) -> Option<&FactLog> {
        self.wal.as_ref()
    }

    fn log_op(&mut self, f: &Fact, insert: bool) {
        let Some(wal) = &mut self.wal else { return };
        let s = self.store.value(f.s);
        let r = self.store.value(f.r);
        let t = self.store.value(f.t);
        if s.as_path().is_some() || r.as_path().is_some() || t.as_path().is_some() {
            return; // derived path entities are not logged
        }
        // Frames are encoded straight from the borrows; nothing is cloned.
        if insert {
            wal.insert_ref(s, r, t);
        } else {
            wal.remove_ref(s, r, t);
        }
    }

    /// True if `f` is a *base* fact (for closure membership see
    /// [`Database::view`]).
    pub fn contains_base(&self, f: &Fact) -> bool {
        self.store.contains(f)
    }

    /// Number of base facts.
    pub fn base_len(&self) -> usize {
        self.store.len()
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// Mutable access to the interner — used by the query parser to intern
    /// constants. Interning alone never invalidates the closure cache.
    pub fn store_interner_mut(&mut self) -> &mut loosedb_store::Interner {
        self.store.interner_mut()
    }

    // ------------------------------------------------------------------
    // Rules, kinds, configuration
    // ------------------------------------------------------------------

    /// Registers a user rule (inference or constraint).
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), RuleError> {
        self.rules.add(rule)
    }

    /// Enables a user rule by name (§6.1 `include(rule)`).
    pub fn include_rule(&mut self, name: &str) -> bool {
        self.rules.include(name)
    }

    /// Disables a user rule by name (§6.1 `exclude(rule)`).
    pub fn exclude_rule(&mut self, name: &str) -> bool {
        self.rules.exclude(name)
    }

    /// Read access to the user rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Declares a relationship to be a class relationship (§2.2).
    pub fn declare_class(&mut self, rel: EntityId) {
        self.kinds.declare_class(rel);
    }

    /// Declares a relationship to be an individual relationship (§2.2).
    pub fn declare_individual(&mut self, rel: EntityId) {
        self.kinds.declare_individual(rel);
    }

    /// Read access to the kind registry.
    pub fn kinds(&self) -> &KindRegistry {
        &self.kinds
    }

    /// Enables a built-in rule group (§6.1 `include`).
    pub fn include(&mut self, group: RuleGroup) {
        self.config.include(group);
    }

    /// Disables a built-in rule group (§6.1 `exclude`).
    pub fn exclude(&mut self, group: RuleGroup) {
        self.config.exclude(group);
    }

    /// Sets the composition chain-length limit (§6.1 `limit(n)`).
    pub fn limit(&mut self, n: usize) {
        self.config.limit(n);
    }

    /// Read access to the inference configuration.
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }

    /// Mutable access to the inference configuration (changes invalidate
    /// the closure cache on the next refresh).
    pub fn config_mut(&mut self) -> &mut InferenceConfig {
        &mut self.config
    }

    /// Selects the closure evaluation strategy (semi-naive by default).
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    // ------------------------------------------------------------------
    // Closure
    // ------------------------------------------------------------------

    fn cache_is_fresh(&self) -> bool {
        match &self.cache {
            Some(c) => {
                c.store_epoch == self.store.epoch()
                    && c.rules_epoch == self.rules.epoch()
                    && c.kinds_epoch == self.kinds.epoch()
                    && c.config == self.config
                    && c.strategy == self.strategy
            }
            None => false,
        }
    }

    /// Recomputes the closure if facts, rules, kinds or configuration
    /// changed since the last computation.
    pub fn refresh(&mut self) -> Result<(), ClosureError> {
        if self.cache_is_fresh() {
            return Ok(());
        }
        // A full recomputation can change any answer (removals, rule or
        // kind toggles have non-monotone effects).
        self.pending_delta = PublishDelta::Full;
        let started = Instant::now();
        let closure = closure::compute(
            &mut self.store,
            &self.kinds,
            &self.rules,
            &self.config,
            self.strategy,
        )?;
        self.metrics.closure_computes.inc();
        self.metrics.closure_compute_ns.record_duration(started.elapsed());
        self.metrics.closure_facts.set(closure.len() as u64);
        self.cache = Some(Cached {
            closure,
            store_epoch: self.store.epoch(),
            rules_epoch: self.rules.epoch(),
            kinds_epoch: self.kinds.epoch(),
            config: self.config.clone(),
            strategy: self.strategy,
        });
        Ok(())
    }

    /// The materialized closure (recomputed if stale).
    pub fn closure(&mut self) -> Result<&Closure, ClosureError> {
        self.refresh()?;
        Ok(&self.cache.as_ref().expect("refreshed").closure)
    }

    /// A retrieval view over the (virtual) closure — what queries and
    /// browsing evaluate against.
    pub fn view(&mut self) -> Result<ClosureView<'_>, ClosureError> {
        self.refresh()?;
        let cached = self.cache.as_ref().expect("refreshed");
        Ok(ClosureView::new(&cached.closure, self.store.interner(), &self.kinds)
            .with_probe_counter(self.metrics.count_probes.clone()))
    }

    // ------------------------------------------------------------------
    // Integrity
    // ------------------------------------------------------------------

    /// The current integrity violations (§2.5: the database is valid iff
    /// this is empty).
    pub fn validate(&mut self) -> Result<&[Violation], ClosureError> {
        self.refresh()?;
        Ok(self.cache.as_ref().expect("refreshed").closure.violations())
    }

    /// True if the closure is free of contradictions.
    pub fn is_consistent(&mut self) -> Result<bool, ClosureError> {
        Ok(self.validate()?.is_empty())
    }

    /// Transactionally adds a fact: if the insertion introduces integrity
    /// violations that were not already present, it is rolled back and the
    /// new violations are returned.
    pub fn try_add(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Result<Fact, TransactionError> {
        let fact = Fact::new(self.entity(s), self.entity(r), self.entity(t));
        self.try_insert(fact).map(|_| fact)
    }

    /// Transactional version of [`Database::insert`]; see
    /// [`Database::try_add`].
    ///
    /// Uses incremental closure maintenance (rules are monotone, so a
    /// fresh closure can be *extended* with the new fact instead of
    /// recomputed — see [`crate::closure::extend`]); on rejection the
    /// fact is removed and the now-overextended closure cache dropped.
    pub fn try_insert(&mut self, fact: Fact) -> Result<bool, TransactionError> {
        let before: Vec<Violation> = self.validate()?.to_vec();
        if self.store.contains(&fact) {
            return Ok(false);
        }

        // The cache is fresh after validate(); extend it in place.
        let mut cached = self.cache.take().expect("fresh after validate");
        self.store.insert(fact);
        let started = Instant::now();
        let extended = closure::extend(
            &mut cached.closure,
            &mut self.store,
            &self.kinds,
            &self.rules,
            &self.config,
            &[fact],
        );
        self.metrics.closure_extends.inc();
        self.metrics.closure_extend_ns.record_duration(started.elapsed());
        match extended {
            Ok(delta) => {
                let new: Vec<Violation> = cached
                    .closure
                    .violations()
                    .iter()
                    .filter(|v| !before.contains(v))
                    .cloned()
                    .collect();
                if new.is_empty() {
                    cached.store_epoch = self.store.epoch();
                    self.metrics.closure_facts.set(cached.closure.len() as u64);
                    self.cache = Some(cached);
                    self.note_extend_delta(delta);
                    // Committed: record in the write-ahead log (rejected
                    // transactions leave no trace).
                    self.log_op(&fact, true);
                    Ok(true)
                } else {
                    // Rolled back: the extended closure is stale now.
                    self.store.remove(&fact);
                    Err(TransactionError::Integrity(new))
                }
            }
            Err(e) => {
                self.store.remove(&fact);
                Err(TransactionError::Closure(e))
            }
        }
    }

    /// Adds a fact and incrementally maintains the closure when it is
    /// fresh (no integrity check — the unchecked twin of
    /// [`Database::try_add`], still far cheaper than a recompute when the
    /// closure is warm).
    pub fn add_incremental(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Result<Fact, ClosureError> {
        let fact = Fact::new(self.entity(s), self.entity(r), self.entity(t));
        self.refresh()?;
        if self.store.contains(&fact) {
            return Ok(fact);
        }
        let mut cached = self.cache.take().expect("fresh after refresh");
        self.store.insert(fact);
        let started = Instant::now();
        let delta = closure::extend(
            &mut cached.closure,
            &mut self.store,
            &self.kinds,
            &self.rules,
            &self.config,
            &[fact],
        )?;
        self.metrics.closure_extends.inc();
        self.metrics.closure_extend_ns.record_duration(started.elapsed());
        cached.store_epoch = self.store.epoch();
        self.metrics.closure_facts.set(cached.closure.len() as u64);
        self.cache = Some(cached);
        self.note_extend_delta(delta);
        self.log_op(&fact, true);
        Ok(fact)
    }

    /// Removes a base fact and incrementally maintains the closure via
    /// the support-counted delete-and-rederive wave (see
    /// [`crate::closure::retract`]) — the removal twin of
    /// [`Database::add_incremental`]. The pending publish delta stays
    /// *precise*: only the relationships the wave touched are recorded,
    /// never a `Full` marker, so downstream caches carry disjoint
    /// entries across the removal. Returns whether the fact was present.
    pub fn remove_incremental(&mut self, f: &Fact) -> Result<bool, ClosureError> {
        self.refresh()?;
        if !self.store.contains(f) {
            return Ok(false);
        }
        let mut cached = self.cache.take().expect("fresh after refresh");
        self.store.remove(f);
        // Logged up front: the store-level removal is committed even if
        // retraction errors below (the closure cache is dropped then and
        // the next refresh recomputes — the WAL must agree with the
        // store, not with the cache).
        self.log_op(f, false);
        let started = Instant::now();
        let delta = closure::retract(
            &mut cached.closure,
            &mut self.store,
            &self.kinds,
            &self.rules,
            &self.config,
            &[*f],
        )?;
        self.metrics.closure_retracts.inc();
        self.metrics.closure_retract_ns.record_duration(started.elapsed());
        self.metrics.closure_retract_decrements.add(delta.stats.support_decrements as u64);
        self.metrics.closure_retract_deleted.add(delta.stats.over_deleted as u64);
        self.metrics.closure_retract_rederived.add(delta.stats.rederived as u64);
        self.metrics.closure_retract_waves.add(delta.stats.waves as u64);
        cached.store_epoch = self.store.epoch();
        self.metrics.closure_facts.set(cached.closure.len() as u64);
        self.cache = Some(cached);
        self.note_retract_delta(delta);
        Ok(true)
    }

    /// Folds an incremental-extension delta into the pending publish
    /// delta (a `Full` marker absorbs everything).
    fn note_extend_delta(&mut self, d: ExtendDelta) {
        if let PublishDelta::Rels(rels) = &mut self.pending_delta {
            rels.extend(d.rels);
        }
    }

    /// Folds an incremental-retraction delta into the pending publish
    /// delta — removals report the precise touched-rel set, exactly like
    /// insertions.
    fn note_retract_delta(&mut self, d: closure::RetractDelta) {
        if let PublishDelta::Rels(rels) = &mut self.pending_delta {
            rels.extend(d.rels);
        }
    }

    /// Drains the description of everything that changed since the last
    /// drain. Called by `SharedDatabase` at publish time so sessions can
    /// keep cached answers whose relationships the delta never touched.
    pub fn take_publish_delta(&mut self) -> PublishDelta {
        std::mem::replace(&mut self.pending_delta, PublishDelta::empty())
    }

    // ------------------------------------------------------------------
    // Explanation
    // ------------------------------------------------------------------

    /// A human-readable derivation of a closure fact: one line per
    /// derivation step, indented by depth. Returns `None` if the fact is
    /// not in the materialized closure.
    pub fn explain(&mut self, fact: &Fact) -> Result<Option<Vec<String>>, ClosureError> {
        self.refresh()?;
        let cached = self.cache.as_ref().expect("refreshed");
        if !cached.closure.contains(fact) {
            return Ok(None);
        }
        let mut lines = Vec::new();
        explain_rec(&self.store, &cached.closure, fact, 0, &mut lines);
        Ok(Some(lines))
    }

    /// Renders a violation for display.
    pub fn display_violation(&self, v: &Violation) -> String {
        match v {
            Violation::Contradiction { fact, conflicting, via } => format!(
                "contradiction: {} conflicts with {} (via {})",
                self.display_fact(fact),
                self.display_fact(conflicting),
                self.display_fact(via)
            ),
            Violation::MathFalse { fact, source } => match source {
                Some(rule) => format!(
                    "mathematically false: {} (required by rule {rule:?})",
                    self.display_fact(fact)
                ),
                None => format!("mathematically false: {}", self.display_fact(fact)),
            },
            Violation::MathUndefined { fact, source } => match source {
                Some(rule) => format!(
                    "comparator applied to non-numbers: {} (required by rule {rule:?})",
                    self.display_fact(fact)
                ),
                None => {
                    format!("comparator applied to non-numbers: {}", self.display_fact(fact))
                }
            },
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

fn explain_rec(
    store: &FactStore,
    closure: &Closure,
    fact: &Fact,
    depth: usize,
    out: &mut Vec<String>,
) {
    const MAX_DEPTH: usize = 32;
    let indent = "  ".repeat(depth);
    match closure.provenance(fact) {
        None => out.push(format!("{indent}{} [base fact]", store.display_fact(fact))),
        Some(prov) => {
            let (label, from) = match prov {
                Provenance::Builtin { rule, from } => (format!("{rule:?}"), from),
                Provenance::User { rule, from } => (format!("rule {rule:?}"), from),
            };
            out.push(format!("{indent}{} [by {label}]", store.display_fact(fact)));
            if depth < MAX_DEPTH {
                for support in from {
                    explain_rec(store, closure, support, depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::special;

    #[test]
    fn closure_caching_and_invalidation() {
        let mut db = Database::new();
        db.add("EMPLOYEE", "EARNS", "SALARY");
        db.add("MANAGER", "gen", "EMPLOYEE");
        let len1 = db.closure().unwrap().len();
        assert_eq!(len1, 3); // 2 base + 1 derived
                             // Cached: no recomputation observable, same result.
        assert_eq!(db.closure().unwrap().len(), len1);
        // Fact change invalidates.
        db.add("DIRECTOR", "gen", "MANAGER");
        assert_eq!(db.closure().unwrap().len(), 6);
        // Config change invalidates.
        db.exclude(RuleGroup::Generalization);
        assert_eq!(db.closure().unwrap().len(), 3);
        // Kind change invalidates.
        let earns = db.lookup_symbol("EARNS").unwrap();
        db.include(RuleGroup::Generalization);
        db.declare_class(earns);
        assert_eq!(db.closure().unwrap().len(), 4); // gen transitivity only
    }

    #[test]
    fn try_add_rejects_new_violation_and_rolls_back() {
        let mut db = Database::new();
        db.add("LOVES", "contra", "HATES");
        db.add("JOHN", "LOVES", "MARY");
        let before = db.base_len();
        let err = db.try_add("JOHN", "HATES", "MARY").unwrap_err();
        assert!(matches!(err, TransactionError::Integrity(v) if v.len() == 1));
        assert_eq!(db.base_len(), before);
        assert!(db.is_consistent().unwrap());
    }

    #[test]
    fn try_add_accepts_harmless_fact() {
        let mut db = Database::new();
        db.add("LOVES", "contra", "HATES");
        db.add("JOHN", "LOVES", "MARY");
        let f = db.try_add("JOHN", "LOVES", "FELIX").unwrap();
        assert!(db.contains_base(&f));
    }

    #[test]
    fn try_add_tolerates_preexisting_violations() {
        // §2.6 allows an inconsistent database; try_add only rejects NEW
        // violations.
        let mut db = Database::new();
        db.add("LOVES", "contra", "HATES");
        db.add("JOHN", "LOVES", "MARY");
        db.add("JOHN", "HATES", "MARY"); // unchecked: now inconsistent
        assert!(!db.is_consistent().unwrap());
        // Unrelated fact still accepted.
        db.try_add("TOM", "LOVES", "SUE").unwrap();
        // A fact creating a second violation is rejected.
        db.add("TOM", "HATES", "SUE"); // make it two violations, unchecked
        assert_eq!(db.validate().unwrap().len(), 2);
    }

    #[test]
    fn try_insert_duplicate_is_noop() {
        let mut db = Database::new();
        let f = db.add("A", "R", "B");
        assert!(!db.try_insert(f).unwrap());
    }

    #[test]
    fn explain_derivation_chain() {
        let mut db = Database::new();
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("EMPLOYEE", "EARNS", "SALARY");
        let john = db.lookup_symbol("JOHN").unwrap();
        let earns = db.lookup_symbol("EARNS").unwrap();
        let salary = db.lookup_symbol("SALARY").unwrap();
        let derived = Fact::new(john, earns, salary);
        let lines = db.explain(&derived).unwrap().expect("in closure");
        assert!(lines[0].contains("(JOHN, EARNS, SALARY)"));
        assert!(lines[0].contains("MemberSource"));
        assert!(lines.iter().any(|l| l.contains("[base fact]")));
        // Unknown facts are not explained.
        let bogus = Fact::new(salary, earns, john);
        assert_eq!(db.explain(&bogus).unwrap(), None);
    }

    #[test]
    fn view_reflects_closure() {
        use crate::view::FactView;
        let mut db = Database::new();
        db.add("MANAGER", "gen", "EMPLOYEE");
        db.add("EMPLOYEE", "EARNS", "SALARY");
        let manager = db.lookup_symbol("MANAGER").unwrap();
        let earns = db.lookup_symbol("EARNS").unwrap();
        let salary = db.lookup_symbol("SALARY").unwrap();
        let view = db.view().unwrap();
        assert!(view.holds(&Fact::new(manager, earns, salary)));
    }

    #[test]
    fn snapshot_roundtrip_via_database() {
        let mut db = Database::new();
        db.add("JOHN", "EARNS", 25000i64);
        let dir = std::env::temp_dir().join(format!("loosedb-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.lsdb");
        db.save(&path).unwrap();
        let mut loaded = Database::load(&path).unwrap();
        assert_eq!(loaded.base_len(), 1);
        assert!(loaded.is_consistent().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_records_committed_operations_only() {
        let mut db = Database::new();
        db.enable_logging();
        db.add("LOVES", "contra", "HATES");
        db.add("JOHN", "LOVES", "MARY");
        let f = db.add("JOHN", "LIKES", "FELIX");
        db.remove(&f);
        db.remove(&f); // no-op: not logged
                       // Rejected transaction: not logged.
        assert!(db.try_add("JOHN", "HATES", "MARY").is_err());
        // Accepted transaction: logged.
        db.try_add("JOHN", "LOVES", "FELIX").unwrap();
        let log = db.take_log().expect("logging enabled");
        assert_eq!(log.len(), 5); // 3 adds + 1 remove + 1 committed try_add

        // Replaying the log reproduces the base facts exactly.
        let mut replayed = loosedb_store::FactStore::new();
        loosedb_store::log::replay(log.bytes(), &mut replayed).unwrap();
        let original: std::collections::BTreeSet<String> =
            db.store().iter().map(|f| db.display_fact(&f)).collect();
        let restored: std::collections::BTreeSet<String> =
            replayed.iter().map(|f| replayed.display_fact(&f)).collect();
        assert_eq!(original, restored);
    }

    #[test]
    fn recover_from_checkpoint_plus_log() {
        let dir = std::env::temp_dir().join(format!("loosedb-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("checkpoint.lsdb");
        let wal = dir.join("tail.log");

        let mut db = Database::new();
        db.add("JOHN", "EARNS", 25000i64);
        db.save(&snap).unwrap();
        db.enable_logging();
        db.add("MARY", "isa", "EMPLOYEE");
        let john = db.lookup_symbol("JOHN").unwrap();
        let earns = db.lookup_symbol("EARNS").unwrap();
        let pay = db.lookup(&25000i64.into()).unwrap();
        db.remove(&Fact::new(john, earns, pay));
        db.log().unwrap().save(&wal).unwrap();

        let recovered = Database::recover(&snap, &wal).unwrap();
        assert_eq!(recovered.base_len(), 1);
        assert!(recovered.lookup_symbol("MARY").is_some());
        // Missing log: checkpoint only.
        let checkpoint_only = Database::recover(&snap, dir.join("missing.log")).unwrap();
        assert_eq!(checkpoint_only.base_len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rule_toggling_invalidates_cache() {
        let mut db = Database::new();
        let isa = special::ISA;
        let employee = db.entity("EMPLOYEE");
        let earn = db.entity("EARN");
        let salary = db.entity("SALARY");
        let mut b = Rule::builder("employees-earn");
        let x = b.var("x");
        db.add_rule(b.when(x, isa, employee).then(x, earn, salary).build().unwrap()).unwrap();
        db.add("JOHN", "isa", "EMPLOYEE");
        assert_eq!(db.closure().unwrap().len(), 2);
        db.exclude_rule("employees-earn");
        assert_eq!(db.closure().unwrap().len(), 1);
        db.include_rule("employees-earn");
        assert_eq!(db.closure().unwrap().len(), 2);
    }

    #[test]
    fn incremental_domain_counts_match_reference_scan() {
        let mut db = Database::new();
        db.add("EMPLOYEE", "EARNS", "SALARY");
        db.add("MANAGER", "gen", "EMPLOYEE");
        db.closure().unwrap();
        // Extend the closure incrementally several times; the maintained
        // occurrence counts must stay identical to the full rescan the
        // seed performed on every publish.
        db.add_incremental("JOHN", "isa", "EMPLOYEE").unwrap();
        db.add_incremental("JOHN", "LIKES", "FELIX").unwrap();
        db.add_incremental("DIRECTOR", "gen", "MANAGER").unwrap();
        let closure = db.closure().unwrap();
        let incremental = closure.domain().to_vec();
        assert_eq!(incremental, crate::view::compute_domain(closure));

        // Retraction decrements the same counts in the delete wave — no
        // full-recompute fallback; entities whose last mention dies leave
        // the domain, survivors with other mentions stay.
        let john = db.lookup_symbol("JOHN").unwrap();
        let likes = db.lookup_symbol("LIKES").unwrap();
        let felix = db.lookup_symbol("FELIX").unwrap();
        assert!(db.remove_incremental(&Fact::new(john, likes, felix)).unwrap());
        let closure = db.closure().unwrap();
        assert_eq!(closure.domain().to_vec(), crate::view::compute_domain(closure));
        assert!(!closure.domain().to_vec().contains(&felix), "FELIX left the domain");
        assert!(closure.domain().to_vec().contains(&john), "JOHN is still mentioned");

        let isa = special::ISA;
        let employee = db.lookup_symbol("EMPLOYEE").unwrap();
        assert!(db.remove_incremental(&Fact::new(john, isa, employee)).unwrap());
        let closure = db.closure().unwrap();
        assert_eq!(closure.domain().to_vec(), crate::view::compute_domain(closure));
    }

    #[test]
    fn publish_delta_tracks_rels_and_degrades_to_full() {
        let mut db = Database::new();
        db.add("EMPLOYEE", "EARNS", "SALARY");
        db.closure().unwrap();
        // The initial closure is a full computation.
        assert!(matches!(db.take_publish_delta(), PublishDelta::Full));

        // Incremental adds accumulate exactly the touched relationships
        // (including derived facts: membership fires EARNS for JOHN).
        db.add_incremental("JOHN", "isa", "EMPLOYEE").unwrap();
        db.add_incremental("JOHN", "LIKES", "FELIX").unwrap();
        let isa = special::ISA;
        let earns = db.lookup_symbol("EARNS").unwrap();
        let likes = db.lookup_symbol("LIKES").unwrap();
        match db.take_publish_delta() {
            PublishDelta::Rels(rels) => {
                assert_eq!(rels, [isa, earns, likes].into_iter().collect());
            }
            PublishDelta::Full => panic!("incremental adds must stay precise"),
        }

        // Incremental removals stay precise too: the retraction wave
        // reports exactly the rels it touched (isa seed + the derived
        // EARNS consequence), never a Full marker.
        let john = db.lookup_symbol("JOHN").unwrap();
        let employee = db.lookup_symbol("EMPLOYEE").unwrap();
        assert!(db.remove_incremental(&Fact::new(john, isa, employee)).unwrap());
        match db.take_publish_delta() {
            PublishDelta::Rels(rels) => {
                assert!(rels.contains(&isa));
                assert!(rels.contains(&earns), "derived EARNS fact fell");
                assert!(!rels.contains(&likes), "unrelated rel untouched");
            }
            PublishDelta::Full => panic!("incremental removals must stay precise"),
        }

        // Only the legacy full-recompute removal degrades to Full.
        let felix = db.lookup_symbol("FELIX").unwrap();
        assert!(db.remove(&Fact::new(john, likes, felix)));
        db.closure().unwrap();
        assert!(matches!(db.take_publish_delta(), PublishDelta::Full));
    }
}
