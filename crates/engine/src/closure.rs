//! Closure computation: repeated application of rules to facts (§2.6).
//!
//! Given a set of facts `P` and rules `R`, the *closure* of `P` under `R`
//! is the least fixpoint of applying the rules; the database is valid iff
//! the closure is free of contradictions. This module materializes the
//! closure with **semi-naive** forward chaining (only joins touching the
//! newest facts are re-evaluated each round); a **naive** strategy
//! (re-deriving from the full fact set every round) is kept as the
//! ablation baseline for experiment E7.
//!
//! The standard rules of §3 are built in and individually toggleable via
//! [`InferenceConfig`]; user rules (inference and integrity constraints
//! alike, §2.4–2.5) are applied through a generic conjunctive join.
//!
//! Three families of facts are *virtual* and deliberately never stored:
//!
//! * mathematical facts (§3.6) — heads that instantiate to a true
//!   mathematical fact are skipped; false or undefined ones are recorded
//!   as [`Violation`]s;
//! * the reflexive generalizations `(E, ≺, E)` and the hierarchy bounds
//!   `(E, ≺, Δ)`, `(∇, ≺, E)` (§2.3) — materializing them would bloat the
//!   closure with one fact per entity (and, through rule G3, a `Δ`-target
//!   copy of every fact); the match layer answers them directly;
//! * inferred facts whose relationship is `Δ` or whose target is `Δ` (or
//!   source `∇`) via the hierarchy bounds — same reason.

use std::collections::BTreeSet;
use std::sync::{mpsc, Arc, Mutex, OnceLock};

use loosedb_store::{
    special, EntityId, EntityValue, Fact, FactStore, Interner, PMap, Pattern, TripleIndex,
};

use crate::config::InferenceConfig;
use crate::kind::KindRegistry;
use crate::mathrel::{self, MathMatchError, MathTruth};
use crate::rule::RuleSet;
use crate::term::{Bindings, Template};

/// Which fixpoint strategy to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Re-evaluate only joins that touch the previous round's new facts.
    #[default]
    SemiNaive,
    /// Re-derive everything from the full fact set every round
    /// (ablation baseline, experiment E7).
    Naive,
}

/// The built-in rules of §3, used in provenance records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// G1: `(s,r,t) ∧ (s',≺,s) ⇒ (s',r,t)` for `r ∈ R_i`.
    GenSource,
    /// G2: `(s,r,t) ∧ (r,≺,r') ⇒ (s,r',t)` for `r ∈ R_i`.
    GenRel,
    /// G3: `(s,r,t) ∧ (t,≺,t') ⇒ (s,r,t')` for `r ∈ R_i`.
    GenTarget,
    /// M1: `(s,r,t) ∧ (s',∈,s) ⇒ (s',r,t)` for `r ∈ R_i \ {≺}`.
    MemberSource,
    /// M2: `(s,r,t) ∧ (t,∈,t') ⇒ (s,r,t')` for `r ∈ R_i \ {≺}`.
    MemberTarget,
    /// §3.2 derived rule: `(s,∈,t) ∧ (t,≺,t') ⇒ (s,∈,t')`.
    MemberUp,
    /// §3.3 definition: `(s,≈,t) ⇒ (s,≺,t) ∧ (t,≺,s)` and symmetry.
    SynDefines,
    /// §3.3 converse: `(s,≺,t) ∧ (t,≺,s) ⇒ (s,≈,t)`.
    SynFromGen,
    /// §3.3 substitution: given `(a,≈,b)`, `a` may be replaced by `b` in
    /// any position of any fact.
    SynSubst,
    /// §3.4: `(s,r,t) ∧ (r,⁺,r') ⇒ (t,r',s)`; inverses come in pairs.
    Inversion,
    /// §3.7: `(s,r1,t) ∧ (t,r2,u) ∧ s≠u ⇒ (s, r1·t·r2, u)`.
    Composition,
}

/// Why a derived fact is in the closure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Derived by a built-in rule from one or two supporting facts.
    Builtin {
        /// The rule applied.
        rule: Builtin,
        /// The supporting facts (the matched rule body).
        from: Vec<Fact>,
    },
    /// Derived by a user rule.
    User {
        /// The rule's name.
        rule: String,
        /// The facts matched by the rule body, in body order.
        from: Vec<Fact>,
    },
}

/// An integrity problem discovered in the closure (§2.5, §3.5).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// Two closure facts relate the same pair through contradictory
    /// relationships (`(r, ⊥, r')` holds).
    Contradiction {
        /// The first fact.
        fact: Fact,
        /// The contradicting fact.
        conflicting: Fact,
        /// The contradiction fact `(r, ⊥, r')` that connects them.
        via: Fact,
    },
    /// A fact asserts a mathematical relationship that is false
    /// (e.g. an integrity rule inferred `(-5, >, 0)`).
    MathFalse {
        /// The offending fact.
        fact: Fact,
        /// The rule that produced it, if it was derived.
        source: Option<String>,
    },
    /// A fact applies an order comparator to non-numbers
    /// (e.g. `(JOHN, >, 0)`).
    MathUndefined {
        /// The offending fact.
        fact: Fact,
        /// The rule that produced it, if it was derived.
        source: Option<String>,
    },
}

/// Errors aborting closure computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClosureError {
    /// The closure exceeded [`InferenceConfig::max_closure_facts`].
    TooLarge {
        /// The configured bound that was hit.
        limit: usize,
    },
    /// Materialized composition requires a finite `limit(n)`: with cycles
    /// in the fact graph an unbounded composition closure is infinite
    /// (the paper's `n = ∞` is only safe on acyclic data, which we do not
    /// verify — use on-demand path browsing instead).
    UnboundedComposition,
    /// A user rule's body contains a mathematical atom that cannot be
    /// enumerated (e.g. `(x, ≠, y)` with both sides otherwise unbound).
    Math(MathMatchError),
}

impl std::fmt::Display for ClosureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClosureError::TooLarge { limit } => {
                write!(f, "closure exceeded the configured bound of {limit} facts")
            }
            ClosureError::UnboundedComposition => {
                write!(f, "materialized composition requires a finite limit(n)")
            }
            ClosureError::Math(e) => write!(f, "unenumerable mathematical atom: {e}"),
        }
    }
}

impl std::error::Error for ClosureError {}

impl From<MathMatchError> for ClosureError {
    fn from(e: MathMatchError) -> Self {
        ClosureError::Math(e)
    }
}

/// Statistics of a closure computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClosureStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Base facts the computation started from.
    pub base_facts: usize,
    /// Facts added by inference.
    pub derived_facts: usize,
    /// Of the derived facts, how many came from composition.
    pub composition_facts: usize,
    /// Candidate derivations that were already present (dedup hits).
    pub duplicate_derivations: usize,
}

/// The active domain of a closure, maintained incrementally: for every
/// entity, the number of closure fact positions mentioning it.
///
/// Backed by a persistent map so cloning it into a published generation is
/// O(1) and each fact added by [`extend`] costs O(log D). The count keys,
/// in ascending id order, *are* the active domain — the per-publish
/// `compute_domain` rescan this replaces was O(closure · log D).
/// [`retract`] decrements the counts of every fact its delete wave drops,
/// so the domain stays exact across removals without a rescan.
#[derive(Clone, Debug, Default)]
pub struct DomainCounts {
    counts: PMap<EntityId, u32>,
}

impl DomainCounts {
    #[inline]
    fn note(&mut self, e: EntityId) {
        match self.counts.get_mut(&e) {
            Some(c) => *c += 1,
            None => {
                self.counts.insert(e, 1);
            }
        }
    }

    #[inline]
    fn unnote(&mut self, e: EntityId) {
        let gone = match self.counts.get_mut(&e) {
            Some(c) => {
                *c = c.saturating_sub(1);
                *c == 0
            }
            None => false,
        };
        if gone {
            self.counts.remove(&e);
        }
    }

    /// Records one closure fact (three position mentions).
    #[inline]
    pub fn add_fact(&mut self, f: &Fact) {
        self.note(f.s);
        self.note(f.r);
        self.note(f.t);
    }

    /// Forgets one closure fact's three position mentions; entities whose
    /// count reaches zero leave the domain.
    #[inline]
    pub fn remove_fact(&mut self, f: &Fact) {
        self.unnote(f.s);
        self.unnote(f.r);
        self.unnote(f.t);
    }

    /// Number of distinct entities in the domain.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no entity occurs.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates the domain in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.counts.iter().map(|(k, _)| *k)
    }

    /// Materializes the domain as a sorted vector.
    pub fn to_vec(&self) -> Vec<EntityId> {
        self.iter().collect()
    }
}

/// What an incremental [`extend`] run changed.
///
/// Snapshot publishers use the relationship set to invalidate only the
/// cached query answers that could observe the delta (see
/// `loosedb-browse`'s session cache carry-over).
#[derive(Clone, Debug, Default)]
pub struct ExtendDelta {
    /// Relationships of every fact the extension added to the closure
    /// (base and derived), plus those upgraded to an exact derivation.
    pub rels: BTreeSet<EntityId>,
}

/// Counters of one incremental [`retract`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetractStats {
    /// Support decrements applied by the delete wave.
    pub support_decrements: usize,
    /// Facts the wave over-deleted (some may have been rederived).
    pub over_deleted: usize,
    /// Over-deleted facts that were rederived from the surviving set.
    pub rederived: usize,
    /// Rederivation waves run until the fixpoint.
    pub waves: usize,
}

/// What an incremental [`retract`] run changed.
///
/// Like [`ExtendDelta`], the relationship set is what snapshot publishers
/// use to produce a *precise* `PublishDelta` — base-fact removal never
/// degrades to a full invalidation.
#[derive(Clone, Debug, Default)]
pub struct RetractDelta {
    /// Relationships of every fact the delete wave touched (removed or
    /// removed-and-rederived), plus those of the retracted base facts.
    pub rels: BTreeSet<EntityId>,
    /// Wave counters, mirrored into the metrics registry by the caller.
    pub stats: RetractStats,
}

/// The materialized closure of a fact set under a rule set.
#[derive(Clone, Debug)]
pub struct Closure {
    facts: TripleIndex,
    lift_free: TripleIndex,
    provenance: PMap<Fact, Provenance>,
    /// Per-fact support count: the number of *registered* supporting
    /// firings — base presence contributes one, the first recorded
    /// derivation one, and an exactness upgrade one. [`retract`]'s delete
    /// wave decrements these and over-deletes facts that reach zero.
    support: PMap<Fact, u32>,
    /// Reverse derivation index: for every registered firing, the head is
    /// listed under each distinct body fact. This is what makes removal
    /// O(consequences) — the delete wave walks this index instead of
    /// rescanning the closure.
    dependents: PMap<Fact, Vec<Fact>>,
    domain: DomainCounts,
    violations: Vec<Violation>,
    stats: ClosureStats,
}

impl Closure {
    /// Exact membership test against materialized facts (virtual facts are
    /// the view layer's job).
    pub fn contains(&self, f: &Fact) -> bool {
        self.facts.contains(f)
    }

    /// Pattern retrieval over materialized facts.
    pub fn matching(&self, p: Pattern) -> loosedb_store::index::MatchIter<'_> {
        self.facts.matching(p)
    }

    /// Count of matches of a pattern.
    pub fn count(&self, p: Pattern) -> usize {
        self.facts.count(p)
    }

    /// Count of matches, capped (planner estimates).
    pub fn count_up_to(&self, p: Pattern, cap: usize) -> usize {
        self.facts.count_up_to(p, cap)
    }

    /// All materialized facts.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.facts.iter()
    }

    /// Total number of materialized facts (base + derived).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if the closure is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// True if the fact has a target-lift-free ("exact") derivation —
    /// the facts inversion may be applied to (see the paper's footnote 1
    /// and DESIGN.md decision 3/8).
    pub fn is_exact(&self, f: &Fact) -> bool {
        always_exact(f.r) || self.lift_free.contains(f)
    }

    /// Why `f` is in the closure (`None` for base facts and unknown facts).
    pub fn provenance(&self, f: &Fact) -> Option<&Provenance> {
        self.provenance.get(f)
    }

    /// The integrity violations found (§2.5: the database is valid iff
    /// this is empty).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True if the closure is free of contradictions.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Computation statistics.
    pub fn stats(&self) -> ClosureStats {
        self.stats
    }

    /// The distinct relationship entities appearing in the closure.
    pub fn relationships(&self) -> Vec<EntityId> {
        self.facts.relationships()
    }

    /// The incrementally maintained active domain (entity occurrence
    /// counts over the materialized closure).
    pub fn domain(&self) -> &DomainCounts {
        &self.domain
    }

    /// The registered support count of a fact (0 for unknown facts).
    /// Base presence, the first recorded derivation and an exactness
    /// upgrade each contribute one — see [`retract`].
    pub fn support(&self, f: &Fact) -> u32 {
        self.support.get(f).copied().unwrap_or(0)
    }
}

/// Computes the closure of the store's facts under the configured rules.
///
/// Takes `&mut FactStore` because composition interns new path entities;
/// with composition disabled the store is not modified.
pub fn compute(
    store: &mut FactStore,
    kinds: &KindRegistry,
    rules: &RuleSet,
    config: &InferenceConfig,
    strategy: Strategy,
) -> Result<Closure, ClosureError> {
    if config.composition_enabled() && config.composition_limit > 64 {
        // 2^64 chain lengths are indistinguishable from unbounded; cycles
        // in the data would make the closure astronomically large long
        // before the limit binds.
        return Err(ClosureError::UnboundedComposition);
    }

    let mut engine = Engine {
        kinds,
        rules,
        config,
        all: TripleIndex::new(),
        lift_free: TripleIndex::new(),
        provenance: PMap::new(),
        support: PMap::new(),
        dependents: PMap::new(),
        domain: DomainCounts::default(),
        added_rels: BTreeSet::new(),
        stats: ClosureStats::default(),
        pending: Vec::new(),
        violations: Vec::new(),
    };

    let mut span = loosedb_obs::span!("engine.closure.compute", base_facts = store.len());

    let base: Vec<Fact> = store.iter().collect();
    engine.stats.base_facts = base.len();
    for f in &base {
        if engine.all.insert(*f) {
            engine.domain.add_fact(f);
            engine.support.insert(*f, 1); // base presence
        }
        engine.lift_free.insert(*f);
    }

    let mut delta: Vec<Fact> = base;
    while !delta.is_empty() {
        engine.stats.rounds += 1;
        let effective_delta: Vec<Fact> = match strategy {
            Strategy::SemiNaive => delta.clone(),
            Strategy::Naive => engine.all.iter().collect(),
        };
        engine.round(&effective_delta, store.interner_mut())?;
        delta = engine.commit()?;
    }

    engine.check_consistency(store.interner());

    span.record("rounds", engine.stats.rounds);
    span.record("derived_facts", engine.stats.derived_facts);

    Ok(Closure {
        facts: engine.all,
        lift_free: engine.lift_free,
        provenance: engine.provenance,
        support: engine.support,
        dependents: engine.dependents,
        domain: engine.domain,
        violations: engine.violations,
        stats: engine.stats,
    })
}

/// Extends an existing closure with newly inserted base facts — the
/// incremental-maintenance fast path for monotone updates.
///
/// `new_facts` must already be inserted in `store`; the closure must have
/// been computed over the store's previous contents with the *same*
/// kinds, rules and configuration (the `Database` cache guarantees this).
/// Because the rules are monotone and the old fact set is closed, running
/// the semi-naive rounds seeded with just the new facts reaches exactly
/// the closure of the union — verified against full recomputation by a
/// property test.
///
/// Removals are maintained incrementally too, by the dual [`retract`]
/// path (support-counted delete-and-rederive).
pub fn extend(
    closure: &mut Closure,
    store: &mut FactStore,
    kinds: &KindRegistry,
    rules: &RuleSet,
    config: &InferenceConfig,
    new_facts: &[Fact],
) -> Result<ExtendDelta, ClosureError> {
    if config.composition_enabled() && config.composition_limit > 64 {
        return Err(ClosureError::UnboundedComposition);
    }
    let mut engine = Engine {
        kinds,
        rules,
        config,
        all: std::mem::take(&mut closure.facts),
        lift_free: std::mem::take(&mut closure.lift_free),
        provenance: std::mem::take(&mut closure.provenance),
        support: std::mem::take(&mut closure.support),
        dependents: std::mem::take(&mut closure.dependents),
        domain: std::mem::take(&mut closure.domain),
        added_rels: BTreeSet::new(),
        stats: closure.stats,
        pending: Vec::new(),
        // Emit-time violations of the previous run are kept; the final
        // consistency scan deduplicates against them.
        violations: std::mem::take(&mut closure.violations),
    };

    let mut span = loosedb_obs::span!("engine.closure.extend", new_facts = new_facts.len());

    let rounds_before = engine.stats.rounds;
    let mut delta: Vec<Fact> = Vec::new();
    for &f in new_facts {
        debug_assert!(store.contains(&f), "extend() requires facts already in the store");
        if engine.all.insert(f) {
            engine.lift_free.insert(f);
            engine.domain.add_fact(&f);
            engine.support.insert(f, 1); // base presence
            engine.added_rels.insert(f.r);
            engine.stats.base_facts += 1;
            delta.push(f);
        } else {
            // Base assertion of an already-derived fact: the base
            // presence is an extra support, and a base fact is exact by
            // definition — an exactness upgrade re-enters the delta so
            // inversion gets a chance at the fact.
            engine.bump_support(f);
            engine.stats.base_facts += 1;
            if engine.lift_free.insert(f) {
                engine.added_rels.insert(f.r);
                delta.push(f);
            }
        }
    }

    while !delta.is_empty() {
        engine.stats.rounds += 1;
        engine.round(&delta, store.interner_mut())?;
        delta = engine.commit()?;
    }

    engine.check_consistency(store.interner());

    span.record("rounds", engine.stats.rounds - rounds_before);
    span.record("delta_rels", engine.added_rels.len());

    closure.facts = engine.all;
    closure.lift_free = engine.lift_free;
    closure.provenance = engine.provenance;
    closure.support = engine.support;
    closure.dependents = engine.dependents;
    closure.domain = engine.domain;
    closure.violations = engine.violations;
    closure.stats = engine.stats;
    Ok(ExtendDelta { rels: engine.added_rels })
}

/// Shrinks an existing closure after base-fact removals — the
/// incremental counterpart of [`extend`], replacing the old
/// full-recomputation fallback with a support-counted
/// delete-and-rederive wave (DRed-style):
///
/// 1. **Delete wave** — starting from the retracted base facts, walk the
///    reverse derivation index, decrementing the support count of each
///    registered consequence. A fact is *over-deleted* when its count
///    reaches zero, when its recorded derivation lost a body, or —
///    conservatively — when it was exact and any of its supporting
///    firings died (the dead firing may have been the exactness
///    evidence). Facts still asserted in the store are never deleted:
///    base presence is an inviolable support.
/// 2. **Rederive** — over-deleted facts are checked for one-step
///    derivability from the surviving set by running the rules
///    *backward* (same gating and provenance shape as the forward
///    rules), in waves until a fixpoint; wide waves fan the structural
///    checks out across the closure worker pool. Because the rules are
///    monotone, the rederivable subset of the over-deleted facts is
///    exactly what the from-scratch closure of the shrunken store would
///    contain — verified against full recomputation by a property test.
/// 3. **Prune** — violations whose participating facts left the closure
///    (or whose deriving user-rule instance no longer holds) are
///    dropped; removals never create violations.
///
/// `removed` must already be removed from `store`; the cost is
/// O(consequences of the removed facts), independent of closure size.
/// The returned delta's relationship set is precise, so publishers never
/// degrade to a full cache invalidation on removal.
pub fn retract(
    closure: &mut Closure,
    store: &mut FactStore,
    kinds: &KindRegistry,
    rules: &RuleSet,
    config: &InferenceConfig,
    removed: &[Fact],
) -> Result<RetractDelta, ClosureError> {
    let mut engine = Engine {
        kinds,
        rules,
        config,
        all: std::mem::take(&mut closure.facts),
        lift_free: std::mem::take(&mut closure.lift_free),
        provenance: std::mem::take(&mut closure.provenance),
        support: std::mem::take(&mut closure.support),
        dependents: std::mem::take(&mut closure.dependents),
        domain: std::mem::take(&mut closure.domain),
        added_rels: BTreeSet::new(),
        stats: closure.stats,
        pending: Vec::new(),
        violations: std::mem::take(&mut closure.violations),
    };

    let mut span = loosedb_obs::span!("engine.closure.retract", removed = removed.len());

    let mut delta = RetractDelta::default();
    let mut queue: std::collections::VecDeque<Fact> = std::collections::VecDeque::new();
    let mut deleted: Vec<Fact> = Vec::new();

    // Phase 1: the delete wave. Seed by withdrawing the base-presence
    // support of each retracted fact, then walk the reverse index.
    for &f in removed {
        debug_assert!(
            !store.contains(&f),
            "retract() requires facts already removed from the store"
        );
        delta.rels.insert(f.r);
        if !engine.all.contains(&f) {
            continue;
        }
        engine.stats.base_facts = engine.stats.base_facts.saturating_sub(1);
        engine.decrement_support(&f, &mut delta.stats);
        engine.consider_deletion(f, store, &mut queue, &mut deleted, &mut delta);
    }
    while let Some(b) = queue.pop_front() {
        let Some(deps) = engine.dependents.remove(&b) else { continue };
        for h in deps {
            if !engine.all.contains(&h) {
                continue; // already condemned (or a stale registration)
            }
            engine.decrement_support(&h, &mut delta.stats);
            engine.consider_deletion(h, store, &mut queue, &mut deleted, &mut delta);
        }
    }

    // Phase 2: rederive survivors of the over-delete from the stable set,
    // in waves until the fixpoint. Rederived-but-inexact facts are
    // retried each wave: a later rederival may restore their exactness
    // evidence (which in turn can re-enable inversion consequences).
    let mut remaining = deleted;
    let mut inexact: Vec<Fact> = Vec::new();
    while !remaining.is_empty() || !inexact.is_empty() {
        delta.stats.waves += 1;
        let found = engine.rederive_pass(&remaining, store.interner_mut(), false)?;
        let upgrades = engine.rederive_pass(&inexact, store.interner_mut(), true)?;
        if found.is_empty() && upgrades.is_empty() {
            break;
        }
        let found_set: std::collections::HashSet<Fact> = found.iter().map(|(h, _, _)| *h).collect();
        remaining.retain(|h| !found_set.contains(h));
        for (h, prov, exact) in found {
            engine.all.insert(h);
            engine.domain.add_fact(&h);
            if exact || always_exact(h.r) {
                engine.lift_free.insert(h);
            } else {
                inexact.push(h);
            }
            engine.register_support(h, &prov);
            engine.provenance.insert(h, prov);
            delta.stats.rederived += 1;
        }
        for (h, prov, _) in upgrades {
            // Exactness upgrade: mirrors commit()'s upgrade path — the
            // firing is registered as a support, the original recorded
            // derivation is kept.
            engine.lift_free.insert(h);
            engine.register_support(h, &prov);
        }
        inexact.retain(|h| !engine.lift_free.contains(h));
    }

    // Phase 3: prune violations that lost a participating fact or, for
    // virtual math heads, their deriving user-rule instance. Retraction
    // only ever *removes* violations (the rules are monotone).
    engine.prune_violations(store.interner())?;

    span.record("over_deleted", delta.stats.over_deleted);
    span.record("rederived", delta.stats.rederived);
    span.record("waves", delta.stats.waves);

    closure.facts = engine.all;
    closure.lift_free = engine.lift_free;
    closure.provenance = engine.provenance;
    closure.support = engine.support;
    closure.dependents = engine.dependents;
    closure.domain = engine.domain;
    closure.violations = engine.violations;
    closure.stats = engine.stats;
    Ok(delta)
}

struct Engine<'a> {
    kinds: &'a KindRegistry,
    rules: &'a RuleSet,
    config: &'a InferenceConfig,
    all: TripleIndex,
    /// Facts with at least one *target-lift-free* derivation. The target
    /// of an ordinary fact lifted by G3/M2 reads existentially (the
    /// paper's footnote 1: "works for *at least one* department");
    /// inversion (§3.4) is sound only for facts with an exact — lift-free
    /// — derivation, so the engine tracks this sub-relation through the
    /// fixpoint. `≺`/`∈`/`≈`/`⁺`/`⊥` facts are always exact (their
    /// "lifts" are crisp set-theoretic consequences).
    lift_free: TripleIndex,
    provenance: PMap<Fact, Provenance>,
    /// Support counts and the reverse derivation index (see [`Closure`]).
    support: PMap<Fact, u32>,
    dependents: PMap<Fact, Vec<Fact>>,
    /// Active-domain occurrence counts, bumped for every fact that enters
    /// `all` so publishers never rescan the closure.
    domain: DomainCounts,
    /// Relationships of facts added this run (reported by [`extend`]).
    added_rels: BTreeSet<EntityId>,
    stats: ClosureStats,
    pending: Vec<(Fact, Provenance, bool)>,
    violations: Vec<Violation>,
}

/// True if facts with this relationship are always exact (see
/// `Engine::lift_free`).
fn always_exact(r: EntityId) -> bool {
    matches!(r, special::GEN | special::ISA | special::SYN | special::INV | special::CONTRA)
}

/// An owned, shareable snapshot of the structural-rule state for one
/// fixpoint round. The fact indexes are *moved* in from the engine (no
/// copy — they are immutable during a round) and reclaimed afterwards;
/// the registry and configuration are small and cloned.
struct RoundCtx {
    kinds: KindRegistry,
    config: InferenceConfig,
    all: TripleIndex,
    lift_free: TripleIndex,
}

impl RoundCtx {
    fn structural(&self) -> StructuralCtx<'_> {
        StructuralCtx {
            kinds: &self.kinds,
            config: &self.config,
            all: &self.all,
            lift_free: &self.lift_free,
        }
    }
}

/// Candidate derivations produced by one chunk of a round. For
/// [`JobKind::Rederive`] chunks the tuples are `(head, provenance,
/// exactness)` of the facts that *were* rederivable.
type RoundOut = Vec<(Fact, Provenance, bool)>;

/// What a worker does with its chunk: apply the structural rules forward
/// (a fixpoint round) or backward (a retraction rederive wave).
#[derive(Clone, Copy)]
enum JobKind {
    Derive,
    Rederive,
}

/// One chunk of a round's delta, dispatched to the worker pool.
pub(crate) struct RoundJob {
    ctx: Arc<RoundCtx>,
    chunk: Vec<Fact>,
    seq: usize,
    kind: JobKind,
    results: mpsc::Sender<(usize, RoundOut)>,
}

/// An opaque closure dispatched to the pool by [`crate::pool`] (the
/// query layer's partitioned joins). The completion channel carries the
/// panic payload, if any, so the submitter can resume the unwind on its
/// own thread.
pub(crate) struct TaskJob {
    pub(crate) run: Box<dyn FnOnce() + Send>,
    pub(crate) done: mpsc::Sender<std::thread::Result<()>>,
}

/// A unit of work accepted by the shared worker pool.
pub(crate) enum PoolJob {
    Round(RoundJob),
    Task(TaskJob),
}

/// The process-wide closure worker pool: long-lived threads fed chunked
/// rounds over a shared queue. Earlier the engine spawned a fresh
/// `crossbeam::thread::scope` per fixpoint round, paying thread setup and
/// teardown every round (measured in E13); the pool spawns its threads
/// once, on first use, and they block on the queue between rounds. The
/// same threads also serve generic [`TaskJob`]s submitted through
/// [`crate::pool::run_scoped`].
pub(crate) struct WorkerPool {
    /// The job queue. Guarded by a mutex so concurrent closure
    /// computations (e.g. parallel tests) can share the one pool.
    pub(crate) jobs: Mutex<mpsc::Sender<PoolJob>>,
    pub(crate) workers: usize,
}

/// Pool size: `LOOSEDB_WORKERS` when set to a positive integer (warning
/// on stderr otherwise), else the machine's available parallelism.
fn pool_size() -> usize {
    let detected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match std::env::var("LOOSEDB_WORKERS") {
        Err(_) => detected,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "loosedb: ignoring invalid LOOSEDB_WORKERS={raw:?} \
                     (expected a positive integer); using {detected}"
                );
                detected
            }
        },
    }
}

pub(crate) fn worker_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = pool_size();
        let (jobs, queue) = mpsc::channel::<PoolJob>();
        let queue = Arc::new(Mutex::new(queue));
        for i in 0..workers {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("loosedb-closure-{i}"))
                .spawn(move || loop {
                    // Hold the queue lock only while dequeuing.
                    let job = match queue.lock().expect("pool queue").recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    };
                    let RoundJob { ctx, chunk, seq, kind, results } = match job {
                        PoolJob::Round(job) => job,
                        PoolJob::Task(TaskJob { run, done }) => {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                            let _ = done.send(result);
                            continue;
                        }
                    };
                    let mut out = RoundOut::new();
                    {
                        let rules = ctx.structural();
                        match kind {
                            JobKind::Derive => {
                                for &f in &chunk {
                                    rules.apply_structural(f, &mut out);
                                }
                            }
                            JobKind::Rederive => {
                                for &h in &chunk {
                                    if let Some((prov, exact)) = rules.rederive_structural(h) {
                                        out.push((h, prov, exact));
                                    }
                                }
                            }
                        }
                    }
                    // Release our share of the round state *before*
                    // reporting, so the engine thread's Arc::try_unwrap
                    // reclaims the indexes as soon as all results are in.
                    drop(ctx);
                    let _ = results.send((seq, out));
                })
                .expect("spawn closure worker");
        }
        WorkerPool { jobs: Mutex::new(jobs), workers }
    })
}

impl Engine<'_> {
    /// The borrowed structural-rule state of this engine.
    fn structural(&self) -> StructuralCtx<'_> {
        StructuralCtx {
            kinds: self.kinds,
            config: self.config,
            all: &self.all,
            lift_free: &self.lift_free,
        }
    }

    /// Applies every enabled rule to the delta, accumulating candidate
    /// derivations in `pending`.
    ///
    /// The structural rule groups (§3.1–3.4) are pure joins against the
    /// immutable fact set of the previous round, so large deltas are
    /// processed on all cores (chunks merged in order — the result is
    /// deterministic and identical to the sequential path). Composition
    /// (which interns path entities) and user rules run sequentially.
    fn round(&mut self, delta: &[Fact], interner: &mut Interner) -> Result<(), ClosureError> {
        let structural = self.config.generalization
            || self.config.membership
            || self.config.synonym
            || self.config.inversion;
        if structural {
            // The pool is only consulted (and lazily spawned) for deltas
            // wide enough to clear the threshold.
            let pool = (delta.len() >= self.config.parallel_threshold).then(worker_pool);
            match pool {
                Some(pool) if pool.workers > 1 => self.parallel_structural(delta, pool),
                _ => {
                    let rules = self.structural();
                    let mut out = Vec::new();
                    for &f in delta {
                        rules.apply_structural(f, &mut out);
                    }
                    self.pending.extend(out);
                }
            }
        }
        if self.config.composition_enabled() {
            let mut out = Vec::new();
            for &f in delta {
                self.composition_rules(f, interner, &mut out);
            }
            self.pending.extend(out);
        }
        if self.config.user_rules {
            self.user_rules(delta, interner)?;
        }
        Ok(())
    }

    /// Fans one round's delta out to the long-lived worker pool. The fact
    /// indexes are *moved* (not copied) into a shared [`RoundCtx`], the
    /// chunks are processed on the pool threads, the per-chunk outputs are
    /// merged in chunk order — so the result is identical to the
    /// sequential path — and the indexes are reclaimed afterwards.
    fn parallel_structural(&mut self, delta: &[Fact], pool: &WorkerPool) {
        for out in self.fan_out(delta, pool, JobKind::Derive) {
            self.pending.extend(out);
        }
    }

    /// The chunked worker-pool dispatch shared by the forward fixpoint
    /// rounds and the retraction rederive waves; returns the per-chunk
    /// outputs in chunk order.
    fn fan_out(&mut self, delta: &[Fact], pool: &WorkerPool, kind: JobKind) -> Vec<RoundOut> {
        let chunk_size = delta.len().div_ceil(pool.workers);
        let mut ctx = Arc::new(RoundCtx {
            kinds: self.kinds.clone(),
            config: self.config.clone(),
            all: std::mem::take(&mut self.all),
            lift_free: std::mem::take(&mut self.lift_free),
        });
        let (results, collect) = mpsc::channel();
        let mut sent = 0;
        {
            let jobs = pool.jobs.lock().expect("pool queue");
            for (seq, chunk) in delta.chunks(chunk_size).enumerate() {
                jobs.send(PoolJob::Round(RoundJob {
                    ctx: Arc::clone(&ctx),
                    chunk: chunk.to_vec(),
                    seq,
                    kind,
                    results: results.clone(),
                }))
                .expect("worker pool alive");
                sent += 1;
            }
        }
        drop(results);
        let mut outs: Vec<RoundOut> = (0..sent).map(|_| RoundOut::new()).collect();
        for _ in 0..sent {
            let (seq, out) = collect.recv().expect("closure worker panicked");
            outs[seq] = out;
        }
        // Every worker drops its Arc before reporting its result, so once
        // all results are in, the indexes can be reclaimed without a copy.
        // The yield loop covers the tiny window between a worker's final
        // drop and the refcount becoming visible here.
        let ctx = loop {
            match Arc::try_unwrap(ctx) {
                Ok(owned) => break owned,
                Err(shared) => {
                    ctx = shared;
                    std::thread::yield_now();
                }
            }
        };
        self.all = ctx.all;
        self.lift_free = ctx.lift_free;
        outs
    }

    /// Adds one registered support to a fact's count.
    fn bump_support(&mut self, fact: Fact) {
        match self.support.get_mut(&fact) {
            Some(c) => *c += 1,
            None => {
                self.support.insert(fact, 1);
            }
        }
    }

    /// Registers one supporting firing: the head gains a support and is
    /// listed under each distinct body fact in the reverse index, so a
    /// later [`retract`] wave can find it in O(consequences).
    fn register_support(&mut self, head: Fact, prov: &Provenance) {
        self.bump_support(head);
        let from = match prov {
            Provenance::Builtin { from, .. } | Provenance::User { from, .. } => from,
        };
        for (i, b) in from.iter().enumerate() {
            if from[..i].contains(b) {
                continue;
            }
            match self.dependents.get_mut(b) {
                Some(v) => v.push(head),
                None => {
                    self.dependents.insert(*b, vec![head]);
                }
            }
        }
    }

    /// Moves pending derivations into the fact set, handling virtual
    /// heads, and returns the genuinely new facts.
    fn commit(&mut self) -> Result<Vec<Fact>, ClosureError> {
        let mut fresh = Vec::new();
        for (fact, prov, lift_free) in std::mem::take(&mut self.pending) {
            if self.all.contains(&fact) {
                // A known fact re-derived exactly for the first time is an
                // *upgrade*: it re-enters the delta so inversion (which
                // fires on exact facts only) gets a chance at it. The
                // upgrading firing is registered as a support of its own:
                // retraction must notice when the exactness evidence dies.
                if lift_free && self.lift_free.insert(fact) {
                    self.register_support(fact, &prov);
                    self.added_rels.insert(fact.r);
                    fresh.push(fact);
                } else {
                    self.stats.duplicate_derivations += 1;
                }
                continue;
            }
            self.all.insert(fact);
            self.domain.add_fact(&fact);
            self.added_rels.insert(fact.r);
            if lift_free {
                self.lift_free.insert(fact);
            }
            self.stats.derived_facts += 1;
            if matches!(prov, Provenance::Builtin { rule: Builtin::Composition, .. }) {
                self.stats.composition_facts += 1;
            }
            self.register_support(fact, &prov);
            self.provenance.insert(fact, prov);
            fresh.push(fact);
            if self.all.len() > self.config.max_closure_facts {
                return Err(ClosureError::TooLarge { limit: self.config.max_closure_facts });
            }
        }
        Ok(fresh)
    }

    /// True if the fact has a known target-lift-free derivation.
    fn is_lift_free(&self, f: &Fact) -> bool {
        always_exact(f.r) || self.lift_free.contains(f)
    }

    // ------------------------------------------------------------------
    // Retraction: the support-counted delete wave and backward rederive.
    // ------------------------------------------------------------------

    /// Withdraws one support from a fact (saturating at zero — an
    /// over-decrement only causes an extra over-delete, which the
    /// rederive phase repairs).
    fn decrement_support(&mut self, f: &Fact, stats: &mut RetractStats) {
        stats.support_decrements += 1;
        if let Some(c) = self.support.get_mut(f) {
            *c = c.saturating_sub(1);
        }
    }

    /// True if the recorded derivation of `f` references a fact that has
    /// left the closure.
    fn provenance_is_stale(&self, f: &Fact) -> bool {
        match self.provenance.get(f) {
            Some(Provenance::Builtin { from, .. }) | Some(Provenance::User { from, .. }) => {
                from.iter().any(|b| !self.all.contains(b))
            }
            None => false,
        }
    }

    /// Decides the fate of a fact that just lost a support. Facts still
    /// asserted in the store always survive (base presence is an
    /// inviolable support); everything else is over-deleted when its
    /// count reaches zero, its recorded derivation went stale, or it was
    /// exact (the dead firing may have been the exactness evidence — the
    /// rederive phase recomputes exactness from scratch).
    fn consider_deletion(
        &mut self,
        h: Fact,
        store: &FactStore,
        queue: &mut std::collections::VecDeque<Fact>,
        deleted: &mut Vec<Fact>,
        delta: &mut RetractDelta,
    ) {
        if store.contains(&h) {
            // Floor the count at the base presence and shed a stale
            // recorded derivation: the fact is justified as base alone.
            match self.support.get_mut(&h) {
                Some(c) if *c == 0 => *c = 1,
                Some(_) => {}
                None => {
                    self.support.insert(h, 1);
                }
            }
            if self.provenance_is_stale(&h) {
                self.drop_provenance_registrations(&h);
                self.provenance.remove(&h);
            }
            self.lift_free.insert(h); // base facts are exact
            return;
        }
        let count = self.support.get(&h).copied().unwrap_or(0);
        let over_delete = count == 0
            || self.provenance_is_stale(&h)
            || (!always_exact(h.r) && self.lift_free.contains(&h));
        if !over_delete {
            return;
        }
        self.all.remove(&h);
        self.lift_free.remove(&h);
        self.domain.remove_fact(&h);
        self.support.remove(&h);
        self.drop_provenance_registrations(&h);
        self.provenance.remove(&h);
        delta.rels.insert(h.r);
        delta.stats.over_deleted += 1;
        deleted.push(h);
        queue.push_back(h);
    }

    /// Unregisters `h` from the reverse index of its recorded
    /// derivation's bodies (one occurrence per distinct body).
    fn drop_provenance_registrations(&mut self, h: &Fact) {
        let from = match self.provenance.get(h) {
            Some(Provenance::Builtin { from, .. }) | Some(Provenance::User { from, .. }) => {
                from.clone()
            }
            None => return,
        };
        for (i, b) in from.iter().enumerate() {
            if from[..i].contains(b) {
                continue;
            }
            if let Some(v) = self.dependents.get_mut(b) {
                if let Some(pos) = v.iter().position(|x| x == h) {
                    v.swap_remove(pos);
                }
            }
        }
    }

    /// One rederivation wave: checks every candidate for one-step
    /// derivability against the wave-start closure (frozen state, so the
    /// result is deterministic and chunkable). Structural checks fan out
    /// across the worker pool for wide waves; composition and user rules
    /// run sequentially (they need the interner). With `exact_only`, only
    /// exact instances are reported (the exactness-upgrade retry).
    fn rederive_pass(
        &mut self,
        candidates: &[Fact],
        interner: &mut Interner,
        exact_only: bool,
    ) -> Result<Vec<(Fact, Provenance, bool)>, ClosureError> {
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let structural_enabled = self.config.generalization
            || self.config.membership
            || self.config.synonym
            || self.config.inversion;
        // Pre-compute structural results in parallel for wide waves.
        let mut hints: Option<std::collections::HashMap<Fact, (Provenance, bool)>> = None;
        if structural_enabled && candidates.len() >= self.config.parallel_threshold {
            let pool = worker_pool();
            if pool.workers > 1 {
                let mut map = std::collections::HashMap::new();
                for out in self.fan_out(candidates, pool, JobKind::Rederive) {
                    for (h, prov, exact) in out {
                        map.insert(h, (prov, exact));
                    }
                }
                hints = Some(map);
            }
        }
        let mut found = Vec::new();
        for &h in candidates {
            let structural = match &hints {
                Some(map) => map.get(&h).cloned(),
                None if structural_enabled => self.structural().rederive_structural(h),
                None => None,
            };
            let mut best: Option<(Provenance, bool)> = None;
            if let Some((prov, exact)) = structural {
                best = Some((prov, exact));
            }
            if !matches!(best, Some((_, true))) && self.config.composition_enabled() {
                if let Some((prov, exact)) = self.rederive_composition(h, interner) {
                    if exact || best.is_none() {
                        best = Some((prov, exact));
                    }
                }
            }
            if !matches!(best, Some((_, true))) && self.config.user_rules {
                if let Some(prov) = self.rederive_user(h, interner)? {
                    best = Some((prov, true)); // user-rule heads are exact
                }
            }
            if let Some((prov, exact)) = best {
                if !exact_only || exact {
                    found.push((h, prov, exact));
                }
            }
        }
        Ok(found)
    }

    /// Backward composition check: splits the head's path relationship at
    /// each odd (entity) position and probes for the two composing facts.
    fn rederive_composition(&self, h: Fact, interner: &mut Interner) -> Option<(Provenance, bool)> {
        let parts: Vec<EntityId> = interner.resolve(h.r).as_path()?.to_vec();
        let limit = self.config.composition_limit;
        let mut best: Option<(Provenance, bool)> = None;
        for i in (1..parts.len()).step_by(2) {
            let mid = parts[i];
            // Sub-chains of length one are plain relationships; longer
            // ones are path entities (already interned if the composing
            // fact exists — interning here is a cheap idempotent lookup).
            let sub_rel = |interner: &mut Interner, ps: &[EntityId]| -> EntityId {
                if ps.len() == 1 {
                    ps[0]
                } else {
                    interner.intern(EntityValue::Path(ps.to_vec().into()))
                }
            };
            let r1 = sub_rel(interner, &parts[..i]);
            let r2 = sub_rel(interner, &parts[i + 1..]);
            if !composable_rel(r1) || !composable_rel(r2) {
                continue;
            }
            if chain_len(interner, r1) + chain_len(interner, r2) > limit {
                continue;
            }
            let f = Fact::new(h.s, r1, mid);
            let g = Fact::new(mid, r2, h.t);
            if self.all.contains(&f) && self.all.contains(&g) && g.t != f.s {
                let exact = self.is_lift_free(&f) && self.is_lift_free(&g);
                let prov = Provenance::Builtin { rule: Builtin::Composition, from: vec![f, g] };
                if exact {
                    return Some((prov, true));
                }
                if best.is_none() {
                    best = Some((prov, false));
                }
            }
        }
        best
    }

    /// Backward user-rule check: unifies the head templates with `h` and
    /// joins the full rule body against the surviving closure.
    fn rederive_user(
        &self,
        h: Fact,
        interner: &Interner,
    ) -> Result<Option<Provenance>, ClosureError> {
        let rules: Vec<_> = self.rules.enabled().cloned().collect();
        for rule in &rules {
            for head in rule.head() {
                let Some(bindings) = head.unify(&h, &Bindings::new()) else { continue };
                let atoms: Vec<(usize, Template)> =
                    rule.body().iter().copied().enumerate().collect();
                let mut results: Vec<(Bindings, Vec<(usize, Fact)>)> = Vec::new();
                self.join(&atoms, bindings, Vec::new(), interner, &mut results)?;
                if let Some((_, mut support)) = results.into_iter().next() {
                    support.sort_by_key(|(i, _)| *i);
                    let from: Vec<Fact> = support.into_iter().map(|(_, f)| f).collect();
                    return Ok(Some(Provenance::User { rule: rule.name().to_string(), from }));
                }
            }
        }
        Ok(None)
    }

    /// Drops violations invalidated by the delete wave: contradictions
    /// that lost a participant, stored math violations whose fact left
    /// the closure, and virtual math heads whose deriving user-rule
    /// instance no longer holds.
    fn prune_violations(&mut self, interner: &Interner) -> Result<(), ClosureError> {
        if self.violations.is_empty() {
            return Ok(());
        }
        let mut kept = Vec::new();
        for v in std::mem::take(&mut self.violations) {
            let keep = match &v {
                Violation::Contradiction { fact, conflicting, via } => {
                    self.all.contains(fact)
                        && self.all.contains(via)
                        && (special::is_math(conflicting.r) || self.all.contains(conflicting))
                }
                Violation::MathFalse { fact, .. } | Violation::MathUndefined { fact, .. } => {
                    // Stored math facts keep their violation while stored;
                    // virtual (user-rule-derived) math heads must still be
                    // derivable by some enabled rule.
                    self.all.contains(fact)
                        || (self.config.user_rules
                            && self.rederive_user(*fact, interner)?.is_some())
                }
            };
            if keep {
                kept.push(v);
            }
        }
        self.violations = kept;
        Ok(())
    }

    /// Queues a derivation unless it is a virtual fact.
    ///
    /// Virtual heads: true mathematical facts are skipped (their truth is
    /// answered at match time); false/undefined ones are violations;
    /// reflexive/bound generalizations are skipped.
    fn emit(&mut self, fact: Fact, prov: Provenance, interner: &Interner) {
        if special::is_math(fact.r) {
            let source = match &prov {
                Provenance::User { rule, .. } => Some(rule.clone()),
                Provenance::Builtin { .. } => None,
            };
            let violation = match mathrel::eval(interner, &fact).expect("is_math checked") {
                MathTruth::True => return,
                MathTruth::False => Violation::MathFalse { fact, source },
                MathTruth::Undefined => Violation::MathUndefined { fact, source },
            };
            // The same required math fact is typically derived through
            // many bindings; report it once.
            if !self.violations.contains(&violation) {
                self.violations.push(violation);
            }
            return;
        }
        if is_virtual_gen(&fact) {
            return;
        }
        // Derivations that merely re-route through Δ/∇ are dropped:
        // (s, Δ, t), (s, r, Δ) and (∇, r, t) are answered virtually by the
        // view layer.
        if fact.r == special::TOP || fact.t == special::TOP || fact.s == special::BOT {
            return;
        }
        // User-rule heads state exact facts (like base assertions).
        self.pending.push((fact, prov, true));
    }
}

/// The borrowed state the §3.1–3.4 structural rule groups read: pure joins
/// against the immutable fact set of the previous round. Factored out of
/// [`Engine`] so the same rule code runs both inline on the engine's
/// thread and, for wide deltas, on the long-lived worker pool (which gets
/// an owned, shareable snapshot of this state — see [`RoundCtx`]).
struct StructuralCtx<'a> {
    kinds: &'a KindRegistry,
    config: &'a InferenceConfig,
    all: &'a TripleIndex,
    lift_free: &'a TripleIndex,
}

impl StructuralCtx<'_> {
    /// The §3.1–3.4 rule groups for one delta fact.
    fn apply_structural(&self, f: Fact, out: &mut Vec<(Fact, Provenance, bool)>) {
        if self.config.generalization {
            self.gen_rules(f, out);
        }
        if self.config.membership {
            self.member_rules(f, out);
        }
        if self.config.synonym {
            self.syn_rules(f, out);
        }
        if self.config.inversion {
            self.inv_rules(f, out);
        }
    }

    /// True if the fact has a known target-lift-free derivation.
    fn is_lift_free(&self, f: &Fact) -> bool {
        always_exact(f.r) || self.lift_free.contains(f)
    }

    // ------------------------------------------------------------------
    // Built-in rule groups (§3), each as a pair of semi-naive delta cases.
    // ------------------------------------------------------------------

    fn gen_rules(&self, f: Fact, out: &mut Vec<(Fact, Provenance, bool)>) {
        // Case A: f = (s, r, t) with r individual — join with gen facts.
        if self.kinds.is_individual(f.r) {
            // G1: (s', ≺, s) specializes the source.
            let children: Vec<Fact> =
                self.all.matching(Pattern::new(None, Some(special::GEN), Some(f.s))).collect();
            let exact = self.is_lift_free(&f);
            for g in children {
                push_nonvirtual(
                    out,
                    Fact::new(g.s, f.r, f.t),
                    Provenance::Builtin { rule: Builtin::GenSource, from: vec![f, g] },
                    exact,
                );
            }
            // G2: (r, ≺, r') generalizes the relationship.
            let rel_parents: Vec<Fact> =
                self.all.matching(Pattern::new(Some(f.r), Some(special::GEN), None)).collect();
            let exact = self.is_lift_free(&f);
            for g in rel_parents {
                push_nonvirtual(
                    out,
                    Fact::new(f.s, g.t, f.t),
                    Provenance::Builtin { rule: Builtin::GenRel, from: vec![f, g] },
                    exact,
                );
            }
            // G3: (t, ≺, t') generalizes the target.
            let target_parents: Vec<Fact> =
                self.all.matching(Pattern::new(Some(f.t), Some(special::GEN), None)).collect();
            // Target lifts of ordinary facts are existential; lifts of
            // ≺ facts (transitivity) stay exact.
            let exact = f.r == special::GEN && self.is_lift_free(&f);
            for g in target_parents {
                push_nonvirtual(
                    out,
                    Fact::new(f.s, f.r, g.t),
                    Provenance::Builtin { rule: Builtin::GenTarget, from: vec![f, g] },
                    exact,
                );
            }
        }
        // Case B: f is itself a generalization fact (s', ≺, s) — join the
        // other way around.
        if f.r == special::GEN {
            // G1: facts whose source is f.t flow down to f.s.
            let down: Vec<Fact> = self
                .all
                .matching(Pattern::from_source(f.t))
                .filter(|h| self.kinds.is_individual(h.r))
                .collect();
            for h in down {
                push_nonvirtual(
                    out,
                    Fact::new(f.s, h.r, h.t),
                    Provenance::Builtin { rule: Builtin::GenSource, from: vec![h, f] },
                    self.is_lift_free(&h),
                );
            }
            // G2: facts whose relationship is f.s lift to f.t.
            let via: Vec<Fact> = self
                .all
                .matching(Pattern::from_rel(f.s))
                .filter(|h| self.kinds.is_individual(h.r))
                .collect();
            for h in via {
                push_nonvirtual(
                    out,
                    Fact::new(h.s, f.t, h.t),
                    Provenance::Builtin { rule: Builtin::GenRel, from: vec![h, f] },
                    self.is_lift_free(&h),
                );
            }
            // G3: facts whose target is f.s lift to f.t.
            let up: Vec<Fact> = self
                .all
                .matching(Pattern::from_target(f.s))
                .filter(|h| self.kinds.is_individual(h.r))
                .collect();
            for h in up {
                push_nonvirtual(
                    out,
                    Fact::new(h.s, h.r, f.t),
                    Provenance::Builtin { rule: Builtin::GenTarget, from: vec![h, f] },
                    h.r == special::GEN && self.is_lift_free(&h),
                );
            }
        }
    }

    fn member_rules(&self, f: Fact, out: &mut Vec<(Fact, Provenance, bool)>) {
        let member_applicable =
            |kinds: &KindRegistry, r: EntityId| kinds.is_individual(r) && r != special::GEN;
        // Case A: f = (s, r, t) with r individual (but not ≺: instancehood
        // must not turn class-level subclassing into instance subclassing).
        if member_applicable(self.kinds, f.r) {
            // M1: (s', ∈, s) — class-level fact applies to each instance.
            let instances: Vec<Fact> =
                self.all.matching(Pattern::new(None, Some(special::ISA), Some(f.s))).collect();
            let exact = self.is_lift_free(&f);
            for g in instances {
                push_nonvirtual(
                    out,
                    Fact::new(g.s, f.r, f.t),
                    Provenance::Builtin { rule: Builtin::MemberSource, from: vec![f, g] },
                    exact,
                );
            }
            // M2: (t, ∈, t') — a fact about an instance lifts to its class.
            let classes: Vec<Fact> =
                self.all.matching(Pattern::new(Some(f.t), Some(special::ISA), None)).collect();
            for g in classes {
                push_nonvirtual(
                    out,
                    Fact::new(f.s, f.r, g.t),
                    Provenance::Builtin { rule: Builtin::MemberTarget, from: vec![f, g] },
                    false, // target lift: existential (footnote 1)
                );
            }
        }
        // Case B: f = (s', ∈, s) — join the other way, plus upward closure.
        if f.r == special::ISA {
            let class_facts: Vec<Fact> = self
                .all
                .matching(Pattern::from_source(f.t))
                .filter(|h| member_applicable(self.kinds, h.r))
                .collect();
            for h in class_facts {
                push_nonvirtual(
                    out,
                    Fact::new(f.s, h.r, h.t),
                    Provenance::Builtin { rule: Builtin::MemberSource, from: vec![h, f] },
                    self.is_lift_free(&h),
                );
            }
            let instance_targets: Vec<Fact> = self
                .all
                .matching(Pattern::from_target(f.s))
                .filter(|h| member_applicable(self.kinds, h.r))
                .collect();
            for h in instance_targets {
                push_nonvirtual(
                    out,
                    Fact::new(h.s, h.r, f.t),
                    Provenance::Builtin { rule: Builtin::MemberTarget, from: vec![h, f] },
                    false, // target lift: existential (footnote 1)
                );
            }
            // MemberUp: (s, ∈, t) ∧ (t, ≺, t') ⇒ (s, ∈, t').
            let ups: Vec<Fact> =
                self.all.matching(Pattern::new(Some(f.t), Some(special::GEN), None)).collect();
            for g in ups {
                push_nonvirtual(
                    out,
                    Fact::new(f.s, special::ISA, g.t),
                    Provenance::Builtin { rule: Builtin::MemberUp, from: vec![f, g] },
                    true, // ∈ through ≺ is a crisp consequence
                );
            }
        }
        // Case C: f = (t, ≺, t') — MemberUp joined from the gen side.
        if f.r == special::GEN && self.config.membership {
            let members: Vec<Fact> =
                self.all.matching(Pattern::new(None, Some(special::ISA), Some(f.s))).collect();
            for g in members {
                push_nonvirtual(
                    out,
                    Fact::new(g.s, special::ISA, f.t),
                    Provenance::Builtin { rule: Builtin::MemberUp, from: vec![g, f] },
                    true,
                );
            }
        }
    }

    fn syn_rules(&self, f: Fact, out: &mut Vec<(Fact, Provenance, bool)>) {
        // Case A: f = (s, ≈, t).
        if f.r == special::SYN && f.s != f.t {
            // Symmetry and the defining mutual generalization.
            push_nonvirtual(
                out,
                Fact::new(f.t, special::SYN, f.s),
                Provenance::Builtin { rule: Builtin::SynDefines, from: vec![f] },
                true,
            );
            push_nonvirtual(
                out,
                Fact::new(f.s, special::GEN, f.t),
                Provenance::Builtin { rule: Builtin::SynDefines, from: vec![f] },
                true,
            );
            push_nonvirtual(
                out,
                Fact::new(f.t, special::GEN, f.s),
                Provenance::Builtin { rule: Builtin::SynDefines, from: vec![f] },
                true,
            );
            // Substitution: replace f.s with f.t in every fact mentioning
            // f.s (symmetry will cover the other direction next round).
            let mentioning: Vec<Fact> = self
                .all
                .matching(Pattern::from_source(f.s))
                .chain(self.all.matching(Pattern::from_rel(f.s)))
                .chain(self.all.matching(Pattern::from_target(f.s)))
                .collect();
            for h in mentioning {
                let exact = self.is_lift_free(&h);
                for variant in substitute_all(&h, f.s, f.t) {
                    push_nonvirtual(
                        out,
                        variant,
                        Provenance::Builtin { rule: Builtin::SynSubst, from: vec![h, f] },
                        exact,
                    );
                }
            }
        }
        // Case B: a new ordinary fact mentioning a known synonym.
        for position in 0..3 {
            let e = f.positions()[position];
            let partners: Vec<Fact> =
                self.all.matching(Pattern::new(Some(e), Some(special::SYN), None)).collect();
            let exact = self.is_lift_free(&f);
            for syn in partners {
                if syn.t == e {
                    continue;
                }
                for variant in substitute_all(&f, e, syn.t) {
                    push_nonvirtual(
                        out,
                        variant,
                        Provenance::Builtin { rule: Builtin::SynSubst, from: vec![f, syn] },
                        exact,
                    );
                }
            }
        }
        // Case C: mutual generalization defines synonymy.
        if f.r == special::GEN
            && f.s != f.t
            && self.all.contains(&Fact::new(f.t, special::GEN, f.s))
        {
            let reverse = Fact::new(f.t, special::GEN, f.s);
            push_nonvirtual(
                out,
                Fact::new(f.s, special::SYN, f.t),
                Provenance::Builtin { rule: Builtin::SynFromGen, from: vec![f, reverse] },
                true,
            );
        }
    }

    fn inv_rules(&self, f: Fact, out: &mut Vec<(Fact, Provenance, bool)>) {
        // Case A: f = (r, ⁺, r') — inverses come in pairs, and all facts
        // with relationship r flip.
        if f.r == special::INV {
            push_nonvirtual(
                out,
                Fact::new(f.t, special::INV, f.s),
                Provenance::Builtin { rule: Builtin::Inversion, from: vec![f] },
                true,
            );
            let with_rel: Vec<Fact> = self.all.matching(Pattern::from_rel(f.s)).collect();
            for h in with_rel {
                if !self.is_lift_free(&h) {
                    continue;
                }
                push_nonvirtual(
                    out,
                    h.flipped(f.t),
                    Provenance::Builtin { rule: Builtin::Inversion, from: vec![h, f] },
                    true,
                );
            }
        }
        // Case B: a new ordinary (exact) fact whose relationship has an
        // inverse. Existential target lifts are never inverted — see the
        // `lift_free` field docs.
        if !self.is_lift_free(&f) {
            return;
        }
        let inverses: Vec<Fact> =
            self.all.matching(Pattern::new(Some(f.r), Some(special::INV), None)).collect();
        for inv in inverses {
            push_nonvirtual(
                out,
                f.flipped(inv.t),
                Provenance::Builtin { rule: Builtin::Inversion, from: vec![f, inv] },
                true,
            );
        }
    }

    // ------------------------------------------------------------------
    // Backward checks (retraction rederive): for a candidate head `h`,
    // search for a surviving rule instance deriving it. Each check
    // mirrors its forward rule exactly — same kind/config gating, same
    // `from` ordering — so a rederived fact is indistinguishable from a
    // freshly derived one. Exact instances are preferred (early exit);
    // failing that, the first inexact instance found is reported.
    // ------------------------------------------------------------------

    /// One-step backward derivability of `h` under the structural groups.
    fn rederive_structural(&self, h: Fact) -> Option<(Provenance, bool)> {
        let mut best: Option<(Provenance, bool)> = None;
        // Returns true when the search can stop (an exact instance).
        let note = |best: &mut Option<(Provenance, bool)>, prov: Provenance, exact: bool| {
            if exact {
                *best = Some((prov, true));
                return true;
            }
            if best.is_none() {
                *best = Some((prov, false));
            }
            false
        };

        if self.config.generalization {
            if self.kinds.is_individual(h.r) {
                // G1 backward: h = (s', r, t) ⇐ (s, r, t) ∧ (s', ≺, s).
                let gens: Vec<Fact> =
                    self.all.matching(Pattern::new(Some(h.s), Some(special::GEN), None)).collect();
                for g in gens {
                    let f = Fact::new(g.t, h.r, h.t);
                    if self.all.contains(&f) {
                        let exact = self.is_lift_free(&f);
                        let prov =
                            Provenance::Builtin { rule: Builtin::GenSource, from: vec![f, g] };
                        if note(&mut best, prov, exact) {
                            return best;
                        }
                    }
                }
                // G3 backward: h = (s, r, t') ⇐ (s, r, t) ∧ (t, ≺, t').
                let tgts: Vec<Fact> =
                    self.all.matching(Pattern::new(None, Some(special::GEN), Some(h.t))).collect();
                for g in tgts {
                    let f = Fact::new(h.s, h.r, g.s);
                    if self.all.contains(&f) {
                        let exact = h.r == special::GEN && self.is_lift_free(&f);
                        let prov =
                            Provenance::Builtin { rule: Builtin::GenTarget, from: vec![f, g] };
                        if note(&mut best, prov, exact) {
                            return best;
                        }
                    }
                }
            }
            // G2 backward: h = (s, r', t) ⇐ (s, r, t) ∧ (r, ≺, r').
            let rels: Vec<Fact> =
                self.all.matching(Pattern::new(None, Some(special::GEN), Some(h.r))).collect();
            for g in rels {
                if !self.kinds.is_individual(g.s) {
                    continue;
                }
                let f = Fact::new(h.s, g.s, h.t);
                if self.all.contains(&f) {
                    let exact = self.is_lift_free(&f);
                    let prov = Provenance::Builtin { rule: Builtin::GenRel, from: vec![f, g] };
                    if note(&mut best, prov, exact) {
                        return best;
                    }
                }
            }
        }

        if self.config.membership {
            let member_applicable =
                |kinds: &KindRegistry, r: EntityId| kinds.is_individual(r) && r != special::GEN;
            if member_applicable(self.kinds, h.r) {
                // M1 backward: h = (s', r, t) ⇐ (s, r, t) ∧ (s', ∈, s).
                let isas: Vec<Fact> =
                    self.all.matching(Pattern::new(Some(h.s), Some(special::ISA), None)).collect();
                for g in isas {
                    let f = Fact::new(g.t, h.r, h.t);
                    if self.all.contains(&f) {
                        let exact = self.is_lift_free(&f);
                        let prov =
                            Provenance::Builtin { rule: Builtin::MemberSource, from: vec![f, g] };
                        if note(&mut best, prov, exact) {
                            return best;
                        }
                    }
                }
                // M2 backward: h = (s, r, t') ⇐ (s, r, t) ∧ (t, ∈, t').
                let classes: Vec<Fact> =
                    self.all.matching(Pattern::new(None, Some(special::ISA), Some(h.t))).collect();
                for g in classes {
                    let f = Fact::new(h.s, h.r, g.s);
                    if self.all.contains(&f) {
                        let prov =
                            Provenance::Builtin { rule: Builtin::MemberTarget, from: vec![f, g] };
                        // Target lifts are existential: never exact.
                        if note(&mut best, prov, false) {
                            return best;
                        }
                    }
                }
            }
            // MemberUp backward: h = (s, ∈, t') ⇐ (s, ∈, t) ∧ (t, ≺, t').
            if h.r == special::ISA {
                let ups: Vec<Fact> =
                    self.all.matching(Pattern::new(None, Some(special::GEN), Some(h.t))).collect();
                for g in ups {
                    let f = Fact::new(h.s, special::ISA, g.s);
                    if self.all.contains(&f) {
                        let prov =
                            Provenance::Builtin { rule: Builtin::MemberUp, from: vec![f, g] };
                        if note(&mut best, prov, true) {
                            return best;
                        }
                    }
                }
            }
        }

        if self.config.synonym {
            if h.r == special::SYN {
                // Symmetry: h = (a, ≈, b) ⇐ (b, ≈, a).
                let rev = Fact::new(h.t, special::SYN, h.s);
                if self.all.contains(&rev)
                    && note(
                        &mut best,
                        Provenance::Builtin { rule: Builtin::SynDefines, from: vec![rev] },
                        true,
                    )
                {
                    return best;
                }
                // SynFromGen: h = (a, ≈, b) ⇐ (a, ≺, b) ∧ (b, ≺, a).
                let fwd = Fact::new(h.s, special::GEN, h.t);
                let bwd = Fact::new(h.t, special::GEN, h.s);
                if self.all.contains(&fwd)
                    && self.all.contains(&bwd)
                    && note(
                        &mut best,
                        Provenance::Builtin { rule: Builtin::SynFromGen, from: vec![fwd, bwd] },
                        true,
                    )
                {
                    return best;
                }
            }
            // SynDefines halves: h = (a, ≺, b) ⇐ (a, ≈, b) | (b, ≈, a).
            if h.r == special::GEN {
                for syn in [Fact::new(h.s, special::SYN, h.t), Fact::new(h.t, special::SYN, h.s)] {
                    if self.all.contains(&syn)
                        && note(
                            &mut best,
                            Provenance::Builtin { rule: Builtin::SynDefines, from: vec![syn] },
                            true,
                        )
                    {
                        return best;
                    }
                }
            }
            // SynSubst backward: some stored original with one position
            // substituted back through a synonym.
            for pos in 0..3 {
                let v = h.positions()[pos];
                let partners: Vec<Fact> =
                    self.all.matching(Pattern::new(None, Some(special::SYN), Some(v))).collect();
                for syn in partners {
                    // syn = (e, ≈, v): the forward rule substituted e → v.
                    let mut orig = h;
                    match pos {
                        0 => orig.s = syn.s,
                        1 => orig.r = syn.s,
                        _ => orig.t = syn.s,
                    }
                    if orig != h && self.all.contains(&orig) {
                        let exact = self.is_lift_free(&orig);
                        let prov =
                            Provenance::Builtin { rule: Builtin::SynSubst, from: vec![orig, syn] };
                        if note(&mut best, prov, exact) {
                            return best;
                        }
                    }
                }
            }
        }

        if self.config.inversion {
            // Pairing: h = (r', ⁺, r) ⇐ (r, ⁺, r').
            if h.r == special::INV {
                let rev = Fact::new(h.t, special::INV, h.s);
                if self.all.contains(&rev)
                    && note(
                        &mut best,
                        Provenance::Builtin { rule: Builtin::Inversion, from: vec![rev] },
                        true,
                    )
                {
                    return best;
                }
            }
            // Flip: h = (t, r', s) ⇐ exact (s, r, t) ∧ (r, ⁺, r').
            let invs: Vec<Fact> =
                self.all.matching(Pattern::new(None, Some(special::INV), Some(h.r))).collect();
            for inv in invs {
                let f = Fact::new(h.t, inv.s, h.s);
                if self.all.contains(&f) && self.is_lift_free(&f) {
                    let prov = Provenance::Builtin { rule: Builtin::Inversion, from: vec![f, inv] };
                    if note(&mut best, prov, true) {
                        return best;
                    }
                }
            }
        }

        best
    }
}

impl Engine<'_> {
    fn composition_rules(
        &self,
        f: Fact,
        interner: &mut Interner,
        out: &mut Vec<(Fact, Provenance, bool)>,
    ) {
        if special::is_special(f.r) && f.r != special::GEN && f.r != special::ISA {
            // Synonym/inversion/contradiction bookkeeping facts do not
            // describe paths worth composing.
            return;
        }
        let f_len = chain_len(interner, f.r);
        let limit = self.config.composition_limit;
        if f_len >= limit {
            return;
        }
        // f ∘ g: facts starting where f ends.
        let successors: Vec<Fact> =
            self.all.matching(Pattern::from_source(f.t)).filter(|g| composable_rel(g.r)).collect();
        for g in successors {
            if g.t == f.s {
                continue; // §3.7 cyclic-composition guard (s ≠ u)
            }
            if f_len + chain_len(interner, g.r) > limit {
                continue;
            }
            let rel = compose_rels(interner, f.r, f.t, g.r);
            let exact = self.is_lift_free(&f) && self.is_lift_free(&g);
            push_nonvirtual(
                out,
                Fact::new(f.s, rel, g.t),
                Provenance::Builtin { rule: Builtin::Composition, from: vec![f, g] },
                exact,
            );
        }
        // g ∘ f: facts ending where f starts.
        let predecessors: Vec<Fact> =
            self.all.matching(Pattern::from_target(f.s)).filter(|g| composable_rel(g.r)).collect();
        for g in predecessors {
            if g.s == f.t {
                continue;
            }
            if chain_len(interner, g.r) + f_len > limit {
                continue;
            }
            let rel = compose_rels(interner, g.r, f.s, f.r);
            let exact = self.is_lift_free(&g) && self.is_lift_free(&f);
            push_nonvirtual(
                out,
                Fact::new(g.s, rel, f.t),
                Provenance::Builtin { rule: Builtin::Composition, from: vec![g, f] },
                exact,
            );
        }
    }

    // ------------------------------------------------------------------
    // User rules: generic conjunctive join, semi-naive on the delta.
    // ------------------------------------------------------------------

    fn user_rules(&mut self, delta: &[Fact], interner: &Interner) -> Result<(), ClosureError> {
        let rules: Vec<_> = self.rules.enabled().cloned().collect();
        for rule in &rules {
            for pivot in 0..rule.body().len() {
                let pivot_tpl = rule.body()[pivot];
                if pivot_tpl.r.as_const().is_some_and(special::is_math) {
                    // Math atoms have no delta (virtual, unchanging); they
                    // are evaluated inside the join.
                    continue;
                }
                for &d in delta {
                    let Some(bindings) = pivot_tpl.unify(&d, &Bindings::new()) else {
                        continue;
                    };
                    let remaining: Vec<(usize, Template)> = rule
                        .body()
                        .iter()
                        .copied()
                        .enumerate()
                        .filter(|(i, _)| *i != pivot)
                        .collect();
                    let mut results: Vec<(Bindings, Vec<(usize, Fact)>)> = Vec::new();
                    self.join(&remaining, bindings, Vec::new(), interner, &mut results)?;
                    for (solution, mut support) in results {
                        support.push((pivot, d));
                        support.sort_by_key(|(i, _)| *i);
                        let from: Vec<Fact> = support.into_iter().map(|(_, f)| f).collect();
                        for head in rule.head() {
                            let fact = head
                                .instantiate(&solution)
                                .expect("range restriction validated at build time");
                            self.emit(
                                fact,
                                Provenance::User {
                                    rule: rule.name().to_string(),
                                    from: from.clone(),
                                },
                                interner,
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Backtracking join of the remaining body atoms against the full fact
    /// set, choosing the most-bound atom next (math atoms last unless
    /// enumerable).
    fn join(
        &self,
        atoms: &[(usize, Template)],
        bindings: Bindings,
        support: Vec<(usize, Fact)>,
        interner: &Interner,
        out: &mut Vec<(Bindings, Vec<(usize, Fact)>)>,
    ) -> Result<(), ClosureError> {
        if atoms.is_empty() {
            out.push((bindings, support));
            return Ok(());
        }
        // Pick the atom with the most bound positions; prefer non-math on
        // ties so math checks run once their operands are known.
        let (choice_idx, _) = atoms
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, tpl))| {
                let bound = tpl.to_pattern(&bindings).bound_count();
                let is_math = tpl.r.as_const().is_some_and(special::is_math);
                (bound, !is_math as u32)
            })
            .expect("non-empty");
        let (atom_pos, tpl) = atoms[choice_idx];
        let rest: Vec<(usize, Template)> =
            atoms.iter().enumerate().filter(|(i, _)| *i != choice_idx).map(|(_, a)| *a).collect();

        let pattern = tpl.to_pattern(&bindings);
        let candidates: Vec<Fact> = if pattern.r.is_some_and(special::is_math) {
            mathrel::matches(interner, pattern)?
        } else {
            self.all.matching(pattern).collect()
        };
        for fact in candidates {
            if let Some(extended) = tpl.unify(&fact, &bindings) {
                let mut support = support.clone();
                support.push((atom_pos, fact));
                self.join(&rest, extended, support, interner, out)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Consistency (§2.5, §3.5, §3.6)
    // ------------------------------------------------------------------

    fn check_consistency(&mut self, interner: &Interner) {
        // Stored facts asserting mathematical relationships must agree
        // with mathematics.
        let math_rels =
            [special::LT, special::GT, special::EQ, special::NE, special::LE, special::GE];
        for rel in math_rels {
            let stored: Vec<Fact> = self.all.matching(Pattern::from_rel(rel)).collect();
            for f in stored {
                let source = self.provenance.get(&f).and_then(|p| match p {
                    Provenance::User { rule, .. } => Some(rule.clone()),
                    Provenance::Builtin { .. } => None,
                });
                let violation = match mathrel::eval(interner, &f).expect("math rel") {
                    MathTruth::True => continue,
                    MathTruth::False => Violation::MathFalse { fact: f, source },
                    MathTruth::Undefined => Violation::MathUndefined { fact: f, source },
                };
                if !self.violations.contains(&violation) {
                    self.violations.push(violation);
                }
            }
        }

        // Contradiction facts: (r, ⊥, r') means no pair may be related by
        // both r and r'. ⊥ is symmetric (§3.5): a single stored direction
        // covers both, and each unordered conflict is reported once.
        let contra_facts: Vec<Fact> =
            self.all.matching(Pattern::from_rel(special::CONTRA)).collect();
        let mut reported: std::collections::HashSet<(Fact, Fact)> =
            std::collections::HashSet::new();
        for via in contra_facts {
            let (r, r_conflict) = (via.s, via.t);
            let with_r: Vec<Fact> = self.all.matching(Pattern::from_rel(r)).collect();
            for f in with_r {
                let candidate = Fact::new(f.s, r_conflict, f.t);
                if r == r_conflict && f == candidate {
                    continue;
                }
                let conflicts = if special::is_math(r_conflict) {
                    mathrel::eval(interner, &candidate) == Some(MathTruth::True)
                } else {
                    self.all.contains(&candidate)
                };
                if conflicts {
                    let key = if f <= candidate { (f, candidate) } else { (candidate, f) };
                    if reported.insert(key) {
                        let violation =
                            Violation::Contradiction { fact: f, conflicting: candidate, via };
                        // `contains` guards duplicate reports across
                        // incremental extend() calls; the symmetric form
                        // may already be recorded from the other via.
                        let symmetric = Violation::Contradiction {
                            fact: candidate,
                            conflicting: f,
                            via: Fact::new(via.t, via.r, via.s),
                        };
                        if !self.violations.contains(&violation)
                            && !self.violations.contains(&symmetric)
                        {
                            self.violations.push(violation);
                        }
                    }
                }
            }
        }
    }
}

/// Queues a structural-rule derivation unless it is virtual (reflexive or
/// `Δ`/`∇`-bounded generalization, a `Δ`/`∇` projection, or a
/// mathematical fact, all answered at match time) or already known.
fn push_nonvirtual(
    out: &mut Vec<(Fact, Provenance, bool)>,
    fact: Fact,
    prov: Provenance,
    lift_free: bool,
) {
    if is_virtual_gen(&fact)
        || fact.r == special::TOP
        || fact.t == special::TOP
        || fact.s == special::BOT
        || special::is_math(fact.r)
        // ≈ is reflexive for every entity (mutual reflexive ≺, §3.3);
        // answered virtually like the reflexive ≺ facts.
        || (fact.r == special::SYN && fact.s == fact.t)
    {
        return;
    }
    out.push((fact, prov, lift_free));
}

/// All single-position substitutions of `from` by `to` in a fact — the
/// synonym substitution rule of §3.3 (multi-position substitutions are
/// reached by iterating to the fixpoint).
fn substitute_all(f: &Fact, from: EntityId, to: EntityId) -> Vec<Fact> {
    let mut out = Vec::new();
    if f.s == from {
        out.push(Fact::new(to, f.r, f.t));
    }
    if f.r == from {
        out.push(Fact::new(f.s, to, f.t));
    }
    if f.t == from {
        out.push(Fact::new(f.s, f.r, to));
    }
    out
}

/// True for a virtual generalization fact: reflexivity `(E, ≺, E)` and the
/// hierarchy bounds `(E, ≺, Δ)`, `(∇, ≺, E)` (§2.3).
pub fn is_virtual_gen(f: &Fact) -> bool {
    f.r == special::GEN && (f.s == f.t || f.t == special::TOP || f.s == special::BOT)
}

/// The chain length (in base facts) a relationship entity represents:
/// 1 for plain relationships, `ops + 1` for composed paths.
pub fn chain_len(interner: &Interner, rel: EntityId) -> usize {
    interner.resolve(rel).composition_ops().map_or(1, |ops| ops + 1)
}

/// True if facts with this relationship participate in composition.
fn composable_rel(r: EntityId) -> bool {
    !special::is_special(r) || r == special::GEN || r == special::ISA
}

/// Builds (interning if necessary) the composed relationship
/// `r1 · mid · r2`, flattening already-composed operands.
pub fn compose_rels(
    interner: &mut Interner,
    r1: EntityId,
    mid: EntityId,
    r2: EntityId,
) -> EntityId {
    let mut parts: Vec<EntityId> = Vec::new();
    match interner.resolve(r1).as_path() {
        Some(p) => parts.extend_from_slice(p),
        None => parts.push(r1),
    }
    parts.push(mid);
    match interner.resolve(r2).as_path() {
        Some(p) => parts.extend_from_slice(p),
        None => parts.push(r2),
    }
    interner.intern(EntityValue::Path(parts.into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;

    struct World {
        store: FactStore,
        kinds: KindRegistry,
        rules: RuleSet,
        config: InferenceConfig,
    }

    impl World {
        fn new() -> Self {
            World {
                store: FactStore::new(),
                kinds: KindRegistry::new(),
                rules: RuleSet::new(),
                config: InferenceConfig::default(),
            }
        }

        fn closure(&mut self) -> Closure {
            compute(&mut self.store, &self.kinds, &self.rules, &self.config, Strategy::SemiNaive)
                .expect("closure")
        }

        fn closure_naive(&mut self) -> Closure {
            compute(&mut self.store, &self.kinds, &self.rules, &self.config, Strategy::Naive)
                .expect("closure")
        }

        fn has(&mut self, c: &Closure, s: &str, r: &str, t: &str) -> bool {
            let f = Fact::new(self.store.entity(s), self.store.entity(r), self.store.entity(t));
            c.contains(&f)
        }

        /// Removes a base fact from the store and retracts it from the
        /// closure, returning the precise delta.
        fn retract(&mut self, c: &mut Closure, s: &str, r: &str, t: &str) -> RetractDelta {
            let f = Fact::new(self.store.entity(s), self.store.entity(r), self.store.entity(t));
            assert!(self.store.remove(&f), "base fact not in store");
            super::retract(c, &mut self.store, &self.kinds, &self.rules, &self.config, &[f])
                .expect("retract")
        }

        /// Asserts the incrementally maintained closure is
        /// indistinguishable from a from-scratch recompute over the
        /// current store: same facts, exactness, violations and domain.
        fn assert_matches_recompute(&mut self, c: &Closure) {
            let mut fresh_store = self.store.clone();
            let fresh = compute(
                &mut fresh_store,
                &self.kinds,
                &self.rules,
                &self.config,
                Strategy::SemiNaive,
            )
            .expect("recompute");
            let got: std::collections::BTreeSet<Fact> = c.iter().collect();
            let want: std::collections::BTreeSet<Fact> = fresh.iter().collect();
            for f in got.symmetric_difference(&want) {
                let side = if got.contains(f) { "incremental-only" } else { "recompute-only" };
                eprintln!("{side}: {}", self.store.display_fact(f));
            }
            assert_eq!(got, want, "fact sets diverge");
            for f in &got {
                assert_eq!(
                    c.is_exact(f),
                    fresh.is_exact(f),
                    "exactness diverges for {}",
                    self.store.display_fact(f)
                );
            }
            assert_eq!(c.violations().len(), fresh.violations().len(), "violations diverge");
            assert_eq!(c.domain().to_vec(), fresh.domain().to_vec(), "domain diverges");
        }
    }

    #[test]
    fn gen_source_paper_example() {
        // (EMPLOYEE, WORKS-FOR, DEPARTMENT) ∧ (MANAGER, ≺, EMPLOYEE)
        // ⇒ (MANAGER, WORKS-FOR, DEPARTMENT)
        let mut w = World::new();
        w.store.add("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
        w.store.add("MANAGER", "gen", "EMPLOYEE");
        let c = w.closure();
        assert!(w.has(&c, "MANAGER", "WORKS-FOR", "DEPARTMENT"));
    }

    #[test]
    fn gen_target_paper_example() {
        // (EMPLOYEE, EARNS, SALARY) ∧ (SALARY, ≺, COMPENSATION)
        // ⇒ (EMPLOYEE, EARNS, COMPENSATION)
        let mut w = World::new();
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        w.store.add("SALARY", "gen", "COMPENSATION");
        let c = w.closure();
        assert!(w.has(&c, "EMPLOYEE", "EARNS", "COMPENSATION"));
    }

    #[test]
    fn gen_rel_paper_example() {
        // (JOHN, WORKS-FOR, SHIPPING) ∧ (WORKS-FOR, ≺, IS-PAID-BY)
        // ⇒ (JOHN, IS-PAID-BY, SHIPPING)
        let mut w = World::new();
        w.store.add("JOHN", "WORKS-FOR", "SHIPPING");
        w.store.add("WORKS-FOR", "gen", "IS-PAID-BY");
        let c = w.closure();
        assert!(w.has(&c, "JOHN", "IS-PAID-BY", "SHIPPING"));
    }

    #[test]
    fn gen_transitivity_falls_out_of_g1() {
        let mut w = World::new();
        w.store.add("FRESHMAN", "gen", "STUDENT");
        w.store.add("STUDENT", "gen", "PERSON");
        w.store.add("PERSON", "gen", "ANIMATE");
        let c = w.closure();
        assert!(w.has(&c, "FRESHMAN", "gen", "PERSON"));
        assert!(w.has(&c, "FRESHMAN", "gen", "ANIMATE"));
        assert!(w.has(&c, "STUDENT", "gen", "ANIMATE"));
    }

    #[test]
    fn membership_paper_examples() {
        // (JOHN, ∈, EMPLOYEE) ∧ (EMPLOYEE, WORKS-FOR, DEPARTMENT)
        // ⇒ (JOHN, WORKS-FOR, DEPARTMENT)
        let mut w = World::new();
        w.store.add("JOHN", "isa", "EMPLOYEE");
        w.store.add("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
        // (TOM, WORKS-FOR, SHIPPING) ∧ (SHIPPING, ∈, DEPARTMENT)
        // ⇒ (TOM, WORKS-FOR, DEPARTMENT)
        w.store.add("TOM", "WORKS-FOR", "SHIPPING");
        w.store.add("SHIPPING", "isa", "DEPARTMENT");
        let c = w.closure();
        assert!(w.has(&c, "JOHN", "WORKS-FOR", "DEPARTMENT"));
        assert!(w.has(&c, "TOM", "WORKS-FOR", "DEPARTMENT"));
    }

    #[test]
    fn membership_upward_closure() {
        // (JOHN, ∈, EMPLOYEE) ∧ (EMPLOYEE, ≺, PERSON) ⇒ (JOHN, ∈, PERSON)
        let mut w = World::new();
        w.store.add("JOHN", "isa", "EMPLOYEE");
        w.store.add("EMPLOYEE", "gen", "PERSON");
        let c = w.closure();
        assert!(w.has(&c, "JOHN", "isa", "PERSON"));
        // But NOT (JOHN, ≺, PERSON): instances are not subclasses.
        assert!(!w.has(&c, "JOHN", "gen", "PERSON"));
    }

    #[test]
    fn class_relationships_do_not_flow() {
        // (EMPLOYEE, TOTAL-NUMBER, 180) is a class relationship; it must
        // not apply to John even though John is an employee (§2.2).
        let mut w = World::new();
        w.store.add("JOHN", "isa", "EMPLOYEE");
        let total = w.store.entity("TOTAL-NUMBER");
        w.kinds.declare_class(total);
        w.store.add("EMPLOYEE", "TOTAL-NUMBER", "180-COUNT");
        w.store.add("MANAGER", "gen", "EMPLOYEE");
        let c = w.closure();
        assert!(!w.has(&c, "JOHN", "TOTAL-NUMBER", "180-COUNT"));
        assert!(!w.has(&c, "MANAGER", "TOTAL-NUMBER", "180-COUNT"));
    }

    #[test]
    fn synonym_substitution_paper_example() {
        // (JOHN, EARNS, 25000) ∧ (JOHN, ≈, JOHNNY) ⇒ (JOHNNY, EARNS, 25000)
        let mut w = World::new();
        w.store.add("JOHN", "EARNS", "25000-DOLLARS");
        w.store.add("JOHN", "syn", "JOHNNY");
        let c = w.closure();
        assert!(w.has(&c, "JOHNNY", "EARNS", "25000-DOLLARS"));
        // Symmetry and the defining mutual generalization.
        assert!(w.has(&c, "JOHNNY", "syn", "JOHN"));
        assert!(w.has(&c, "JOHN", "gen", "JOHNNY"));
        assert!(w.has(&c, "JOHNNY", "gen", "JOHN"));
    }

    #[test]
    fn synonym_transitivity_via_generalization() {
        // (SALARY, ≈, WAGE) ∧ (SALARY, ≈, PAY) ⇒ (WAGE, ≈, PAY) (§3.3).
        let mut w = World::new();
        w.store.add("SALARY", "syn", "WAGE");
        w.store.add("SALARY", "syn", "PAY");
        let c = w.closure();
        assert!(w.has(&c, "WAGE", "syn", "PAY"));
        assert!(w.has(&c, "PAY", "syn", "WAGE"));
    }

    #[test]
    fn synonym_in_relationship_position() {
        let mut w = World::new();
        w.store.add("JOHN", "SALARY", "PILE-25000");
        w.store.add("SALARY", "syn", "WAGE");
        let c = w.closure();
        assert!(w.has(&c, "JOHN", "WAGE", "PILE-25000"));
    }

    #[test]
    fn mutual_generalization_defines_synonyms() {
        let mut w = World::new();
        w.store.add("CAR", "gen", "AUTOMOBILE");
        w.store.add("AUTOMOBILE", "gen", "CAR");
        let c = w.closure();
        assert!(w.has(&c, "CAR", "syn", "AUTOMOBILE"));
    }

    #[test]
    fn inversion_paper_example() {
        // (INSTRUCTOR, TEACHES, COURSE) ∧ (TEACHES, ⁺, TAUGHT-BY)
        // ⇒ (COURSE, TAUGHT-BY, INSTRUCTOR)
        let mut w = World::new();
        w.store.add("INSTRUCTOR", "TEACHES", "COURSE");
        w.store.add("TEACHES", "inv", "TAUGHT-BY");
        let c = w.closure();
        assert!(w.has(&c, "COURSE", "TAUGHT-BY", "INSTRUCTOR"));
        // Inverses come in pairs: (TAUGHT-BY, ⁺, TEACHES) is inferred.
        assert!(w.has(&c, "TAUGHT-BY", "inv", "TEACHES"));
        // And flows back: a TAUGHT-BY fact yields a TEACHES fact.
    }

    #[test]
    fn inversion_flows_both_directions() {
        let mut w = World::new();
        w.store.add("TEACHES", "inv", "TAUGHT-BY");
        w.store.add("CS100", "TAUGHT-BY", "HARRY");
        let c = w.closure();
        assert!(w.has(&c, "HARRY", "TEACHES", "CS100"));
    }

    #[test]
    fn inversion_skips_existential_target_lifts() {
        // (CRS, TAUGHT-BY, INST) ∧ (INST, ∈, INSTRUCTOR) lifts to
        // (CRS, TAUGHT-BY, INSTRUCTOR) — "taught by SOME instructor".
        // Inverting that lift would claim every instructor teaches CRS.
        let mut w = World::new();
        w.store.add("TAUGHT-BY", "inv", "TEACHES");
        w.store.add("CRS", "TAUGHT-BY", "INST");
        w.store.add("INST", "isa", "INSTRUCTOR");
        w.store.add("OTHER-INST", "isa", "INSTRUCTOR");
        let c = w.closure();
        // The honest inversion exists…
        assert!(w.has(&c, "INST", "TEACHES", "CRS"));
        // …and the lift itself exists…
        assert!(w.has(&c, "CRS", "TAUGHT-BY", "INSTRUCTOR"));
        // …but the lift is not inverted, so OTHER-INST does not teach CRS.
        assert!(!w.has(&c, "INSTRUCTOR", "TEACHES", "CRS"));
        assert!(!w.has(&c, "OTHER-INST", "TEACHES", "CRS"));
    }

    #[test]
    fn composition_paper_example() {
        // (TOM, ENROLLED-IN, CS100) ∧ (CS100, TAUGHT-BY, HARRY)
        // ⇒ (TOM, ENROLLED-IN·CS100·TAUGHT-BY, HARRY)
        let mut w = World::new();
        w.config.limit(2);
        w.store.add("TOM", "ENROLLED-IN", "CS100");
        w.store.add("CS100", "TAUGHT-BY", "HARRY");
        let c = w.closure();
        let tom = w.store.lookup_symbol("TOM").unwrap();
        let harry = w.store.lookup_symbol("HARRY").unwrap();
        let composed: Vec<Fact> = c.matching(Pattern::new(Some(tom), None, Some(harry))).collect();
        assert_eq!(composed.len(), 1);
        assert_eq!(w.store.display(composed[0].r), "ENROLLED-IN.CS100.TAUGHT-BY");
        assert_eq!(c.stats().composition_facts, 1);
    }

    #[test]
    fn composition_cycle_guard() {
        // (JOHN, LOVES, MARY) ∧ (MARY, LOVES, JOHN): composing would give
        // source = target, which §3.7 forbids.
        let mut w = World::new();
        w.config.limit(4);
        w.store.add("JOHN", "LOVES", "MARY");
        w.store.add("MARY", "LOVES", "JOHN");
        let c = w.closure();
        assert_eq!(c.stats().composition_facts, 0);
    }

    #[test]
    fn composition_limit_bounds_chain_length() {
        let mut w = World::new();
        w.store.add("A", "R1", "B");
        w.store.add("B", "R2", "C");
        w.store.add("C", "R3", "D");
        w.config.limit(2);
        let c2 = w.closure();
        // Chains of 2: A→C, B→D. Chains of 3 (A→D) are out.
        assert_eq!(c2.stats().composition_facts, 2);
        w.config.limit(3);
        let c3 = w.closure();
        // Now also A→D, but only via one of the two association orders
        // (the path entity is the same either way).
        assert_eq!(c3.stats().composition_facts, 3);
        let a = w.store.lookup_symbol("A").unwrap();
        let d = w.store.lookup_symbol("D").unwrap();
        let ad: Vec<Fact> = c3.matching(Pattern::new(Some(a), None, Some(d))).collect();
        assert_eq!(ad.len(), 1);
        assert_eq!(w.store.display(ad[0].r), "R1.B.R2.C.R3");
    }

    #[test]
    fn unbounded_composition_rejected() {
        let mut w = World::new();
        w.config.composition_limit = usize::MAX;
        w.store.add("A", "R", "B");
        let err =
            compute(&mut w.store, &w.kinds, &w.rules, &w.config, Strategy::SemiNaive).unwrap_err();
        assert_eq!(err, ClosureError::UnboundedComposition);
    }

    #[test]
    fn user_rule_paper_section_2_4() {
        // (x, ∈, EMPLOYEE) ⇒ (x, EARN, SALARY)
        let mut w = World::new();
        let isa = special::ISA;
        let employee = w.store.entity("EMPLOYEE");
        let earn = w.store.entity("EARN");
        let salary = w.store.entity("SALARY");
        let mut b = Rule::builder("employees-earn");
        let x = b.var("x");
        w.rules.add(b.when(x, isa, employee).then(x, earn, salary).build().unwrap()).unwrap();
        w.store.add("JOHN", "isa", "EMPLOYEE");
        w.store.add("TOM", "isa", "EMPLOYEE");
        let c = w.closure();
        assert!(w.has(&c, "JOHN", "EARN", "SALARY"));
        assert!(w.has(&c, "TOM", "EARN", "SALARY"));
    }

    #[test]
    fn user_rule_with_math_body() {
        // Well-paid: (x, EARNS, y) ∧ (y, >, 20000) ⇒ (x, isa, WELL-PAID)
        let mut w = World::new();
        let earns = w.store.entity("EARNS");
        let well_paid = w.store.entity("WELL-PAID");
        let n20000 = w.store.entity(20000i64);
        let mut b = Rule::builder("well-paid");
        let x = b.var("x");
        let y = b.var("y");
        w.rules
            .add(
                b.when(x, earns, y)
                    .when(y, special::GT, n20000)
                    .then(x, special::ISA, well_paid)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        w.store.add("JOHN", "EARNS", 25000i64);
        w.store.add("MARY", "EARNS", 15000i64);
        let c = w.closure();
        assert!(w.has(&c, "JOHN", "isa", "WELL-PAID"));
        assert!(!w.has(&c, "MARY", "isa", "WELL-PAID"));
    }

    #[test]
    fn integrity_rule_detects_math_violation() {
        // (x, ∈, AGE) ⇒ (x, >, 0): ages must be positive (§2.5).
        let mut w = World::new();
        let age = w.store.entity("AGE");
        let zero = w.store.entity(0i64);
        let mut b = Rule::builder("age-positive");
        let x = b.var("x");
        w.rules
            .add(
                b.constraint()
                    .when(x, special::ISA, age)
                    .then(x, special::GT, zero)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        w.store.add(30i64, "isa", "AGE");
        let c = w.closure();
        assert!(c.is_consistent());

        w.store.add(-5i64, "isa", "AGE");
        let c = w.closure();
        assert!(!c.is_consistent());
        assert!(matches!(
            &c.violations()[0],
            Violation::MathFalse { source: Some(name), .. } if name == "age-positive"
        ));
    }

    #[test]
    fn integrity_rule_detects_undefined_math() {
        let mut w = World::new();
        let age = w.store.entity("AGE");
        let zero = w.store.entity(0i64);
        let mut b = Rule::builder("age-positive");
        let x = b.var("x");
        w.rules
            .add(
                b.constraint()
                    .when(x, special::ISA, age)
                    .then(x, special::GT, zero)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        w.store.add("BOGUS", "isa", "AGE");
        let c = w.closure();
        assert!(matches!(&c.violations()[0], Violation::MathUndefined { .. }));
    }

    #[test]
    fn contradiction_facts_paper_example() {
        // (LOVES, ⊥, HATES): loving and hating the same entity conflict.
        let mut w = World::new();
        w.store.add("LOVES", "contra", "HATES");
        w.store.add("JOHN", "LOVES", "MARY");
        let c = w.closure();
        assert!(c.is_consistent());

        w.store.add("JOHN", "HATES", "MARY");
        let c = w.closure();
        assert_eq!(c.violations().len(), 1);
        assert!(matches!(&c.violations()[0], Violation::Contradiction { .. }));
    }

    #[test]
    fn stored_false_math_fact_is_a_violation() {
        let mut w = World::new();
        let n3 = w.store.entity(3i64);
        let n5 = w.store.entity(5i64);
        w.store.insert(Fact::new(n5, special::LT, n3));
        let c = w.closure();
        assert!(matches!(&c.violations()[0], Violation::MathFalse { source: None, .. }));
    }

    #[test]
    fn true_math_heads_are_not_materialized() {
        let mut w = World::new();
        let earns = w.store.entity("EARNS");
        let mut b = Rule::builder("tautology");
        let x = b.var("x");
        let y = b.var("y");
        w.rules.add(b.when(x, earns, y).then(y, special::GE, y).build().unwrap()).unwrap();
        w.store.add("JOHN", "EARNS", 25000i64);
        let c = w.closure();
        assert!(c.is_consistent());
        let n = w.store.entity(25000i64);
        assert!(!c.contains(&Fact::new(n, special::GE, n)));
    }

    #[test]
    fn virtual_gen_facts_not_materialized() {
        let mut w = World::new();
        w.store.add("EMPLOYEE", "gen", "PERSON");
        let c = w.closure();
        let employee = w.store.lookup_symbol("EMPLOYEE").unwrap();
        assert!(!c.contains(&Fact::new(employee, special::GEN, employee)));
        assert!(!c.contains(&Fact::new(employee, special::GEN, special::TOP)));
        assert!(!c.contains(&Fact::new(special::BOT, special::GEN, employee)));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let mut w = World::new();
        w.config.limit(3);
        w.store.add("JOHN", "isa", "EMPLOYEE");
        w.store.add("EMPLOYEE", "gen", "PERSON");
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        w.store.add("SALARY", "gen", "COMPENSATION");
        w.store.add("JOHN", "syn", "JOHNNY");
        w.store.add("EARNS", "inv", "EARNED-BY");
        w.store.add("JOHN", "WORKS-FOR", "SHIPPING");
        w.store.add("SHIPPING", "PART-OF", "ACME");
        let semi = w.closure();
        let naive = w.closure_naive();
        let semi_facts: std::collections::BTreeSet<Fact> = semi.iter().collect();
        let naive_facts: std::collections::BTreeSet<Fact> = naive.iter().collect();
        assert_eq!(semi_facts, naive_facts);
        assert!(naive.stats().duplicate_derivations >= semi.stats().duplicate_derivations);
    }

    #[test]
    fn closure_is_idempotent() {
        // Computing the closure of a closure adds nothing.
        let mut w = World::new();
        w.store.add("JOHN", "isa", "EMPLOYEE");
        w.store.add("EMPLOYEE", "gen", "PERSON");
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        let first = w.closure();
        let first_facts: std::collections::BTreeSet<Fact> = first.iter().collect();
        // Replace the store's facts with the closure's facts.
        w.store.clear();
        for f in &first_facts {
            w.store.insert(*f);
        }
        let second = w.closure();
        let second_facts: std::collections::BTreeSet<Fact> = second.iter().collect();
        assert_eq!(first_facts, second_facts);
        assert_eq!(second.stats().derived_facts, 0);
    }

    #[test]
    fn provenance_recorded_for_derived_facts() {
        let mut w = World::new();
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        w.store.add("MANAGER", "gen", "EMPLOYEE");
        let c = w.closure();
        let manager = w.store.lookup_symbol("MANAGER").unwrap();
        let earns = w.store.lookup_symbol("EARNS").unwrap();
        let salary = w.store.lookup_symbol("SALARY").unwrap();
        let derived = Fact::new(manager, earns, salary);
        match c.provenance(&derived) {
            Some(Provenance::Builtin { rule: Builtin::GenSource, from }) => {
                assert_eq!(from.len(), 2);
            }
            other => panic!("unexpected provenance {other:?}"),
        }
        // Base facts have no provenance.
        let employee = w.store.lookup_symbol("EMPLOYEE").unwrap();
        assert!(c.provenance(&Fact::new(employee, earns, salary)).is_none());
    }

    #[test]
    fn too_large_closure_aborts() {
        let mut w = World::new();
        w.config.max_closure_facts = 10;
        // A 12-member synonym clique explodes past 10 facts.
        for i in 0..12 {
            w.store.add("HUB", "syn", format!("ALIAS-{i}"));
        }
        let err =
            compute(&mut w.store, &w.kinds, &w.rules, &w.config, Strategy::SemiNaive).unwrap_err();
        assert_eq!(err, ClosureError::TooLarge { limit: 10 });
    }

    #[test]
    fn parallel_and_sequential_rounds_agree() {
        // A delta large enough to trigger the parallel path must produce
        // exactly the same closure as the sequential path.
        let build = |threshold: usize| {
            let mut w = World::new();
            w.config.parallel_threshold = threshold;
            for i in 0..300 {
                w.store.add(format!("P{i}"), "isa", format!("CLASS-{}", i % 10));
                w.store.add(format!("CLASS-{}", i % 10), "HAS", format!("TRAIT-{}", i % 7));
            }
            for i in 0..10 {
                w.store.add(format!("CLASS-{i}"), "gen", "THING");
            }
            w.store.add("HAS", "inv", "HAD-BY");
            let c = w.closure();
            c.iter().collect::<std::collections::BTreeSet<Fact>>()
        };
        let parallel = build(1); // everything parallel
        let sequential = build(usize::MAX); // everything sequential
        assert_eq!(parallel, sequential);
        assert!(parallel.len() > 600);
    }

    #[test]
    fn extend_matches_full_recompute() {
        // Build incrementally vs all at once: identical closures,
        // violations and exactness.
        let facts: [(&str, &str, &str); 8] = [
            ("JOHN", "isa", "EMPLOYEE"),
            ("EMPLOYEE", "gen", "PERSON"),
            ("EMPLOYEE", "EARNS", "SALARY"),
            ("SALARY", "gen", "COMPENSATION"),
            ("EARNS", "inv", "EARNED-BY"),
            ("JOHN", "syn", "JOHNNY"),
            ("LOVES", "contra", "HATES"),
            ("JOHN", "LOVES", "FELIX"),
        ];
        let kinds = KindRegistry::new();
        let rules = RuleSet::new();
        let config = InferenceConfig::default();

        // Incremental: start empty, extend fact by fact.
        let mut store_inc = FactStore::new();
        let mut inc =
            compute(&mut store_inc, &kinds, &rules, &config, Strategy::SemiNaive).unwrap();
        for (s, r, t) in facts {
            let f = store_inc.add(s, r, t);
            super::extend(&mut inc, &mut store_inc, &kinds, &rules, &config, &[f]).unwrap();
        }

        // Full recompute.
        let mut store_full = FactStore::new();
        for (s, r, t) in facts {
            store_full.add(s, r, t);
        }
        let full = compute(&mut store_full, &kinds, &rules, &config, Strategy::SemiNaive).unwrap();

        let inc_facts: std::collections::BTreeSet<String> =
            inc.iter().map(|f| store_inc.display_fact(&f)).collect();
        let full_facts: std::collections::BTreeSet<String> =
            full.iter().map(|f| store_full.display_fact(&f)).collect();
        assert_eq!(inc_facts, full_facts);
        assert_eq!(inc.violations().len(), full.violations().len());
        // Exactness agrees too.
        for f in inc.iter() {
            let mirrored = Fact::new(
                store_full.lookup_symbol(&store_inc.display(f.s)).unwrap_or(f.s),
                store_full.lookup_symbol(&store_inc.display(f.r)).unwrap_or(f.r),
                store_full.lookup_symbol(&store_inc.display(f.t)).unwrap_or(f.t),
            );
            // Ids coincide here because insertion order matches.
            assert_eq!(inc.is_exact(&f), full.is_exact(&mirrored));
        }
    }

    #[test]
    fn extend_detects_new_contradiction() {
        let mut w = World::new();
        w.store.add("LOVES", "contra", "HATES");
        w.store.add("JOHN", "LOVES", "MARY");
        let mut c = w.closure();
        assert!(c.is_consistent());
        let f = w.store.add("JOHN", "HATES", "MARY");
        super::extend(&mut c, &mut w.store, &w.kinds, &w.rules, &w.config, &[f]).unwrap();
        assert_eq!(c.violations().len(), 1);
        // Extending again with an unrelated fact does not duplicate the
        // violation.
        let g = w.store.add("TOM", "LIKES", "SUE");
        super::extend(&mut c, &mut w.store, &w.kinds, &w.rules, &w.config, &[g]).unwrap();
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn disabled_groups_do_nothing() {
        let mut w = World::new();
        w.config = InferenceConfig::none();
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        w.store.add("MANAGER", "gen", "EMPLOYEE");
        w.store.add("JOHN", "isa", "EMPLOYEE");
        w.store.add("JOHN", "syn", "JOHNNY");
        w.store.add("EARNS", "inv", "EARNED-BY");
        let c = w.closure();
        assert_eq!(c.stats().derived_facts, 0);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn retract_matches_full_recompute() {
        // Remove base facts one at a time from a world that exercises
        // generalization, membership, synonymy, inversion and
        // contradiction; after every retraction the closure must be
        // indistinguishable from a from-scratch recompute.
        let mut w = World::new();
        let facts: [(&str, &str, &str); 9] = [
            ("JOHN", "isa", "EMPLOYEE"),
            ("EMPLOYEE", "gen", "PERSON"),
            ("EMPLOYEE", "EARNS", "SALARY"),
            ("SALARY", "gen", "COMPENSATION"),
            ("EARNS", "inv", "EARNED-BY"),
            ("JOHN", "syn", "JOHNNY"),
            ("LOVES", "contra", "HATES"),
            ("JOHN", "LOVES", "FELIX"),
            ("JOHN", "HATES", "FELIX"),
        ];
        for (s, r, t) in facts {
            w.store.add(s, r, t);
        }
        let mut c = w.closure();
        // JOHN and (via synonymy) JOHNNY each settle the LOVES/HATES
        // conflict.
        assert_eq!(c.violations().len(), 2);
        // Removal order mixes taxonomy edges, ordinary facts and the
        // contradiction participants.
        for (s, r, t) in [
            ("JOHN", "HATES", "FELIX"),
            ("SALARY", "gen", "COMPENSATION"),
            ("JOHN", "isa", "EMPLOYEE"),
            ("EARNS", "inv", "EARNED-BY"),
            ("EMPLOYEE", "EARNS", "SALARY"),
            ("JOHN", "syn", "JOHNNY"),
        ] {
            w.retract(&mut c, s, r, t);
            w.assert_matches_recompute(&c);
        }
    }

    #[test]
    fn retract_removes_consequences() {
        let mut w = World::new();
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        w.store.add("MANAGER", "gen", "EMPLOYEE");
        w.store.add("JOHN", "isa", "MANAGER");
        let mut c = w.closure();
        assert!(w.has(&c, "MANAGER", "EARNS", "SALARY"));
        assert!(w.has(&c, "JOHN", "EARNS", "SALARY"));
        let d = w.retract(&mut c, "EMPLOYEE", "EARNS", "SALARY");
        assert!(!w.has(&c, "EMPLOYEE", "EARNS", "SALARY"));
        assert!(!w.has(&c, "MANAGER", "EARNS", "SALARY"));
        assert!(!w.has(&c, "JOHN", "EARNS", "SALARY"));
        // The taxonomy itself is untouched.
        assert!(w.has(&c, "MANAGER", "gen", "EMPLOYEE"));
        assert!(w.has(&c, "JOHN", "isa", "MANAGER"));
        assert!(d.stats.support_decrements > 0);
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_keeps_still_derivable_facts() {
        // MANAGER ≺ EMPLOYEE and MANAGER ≺ STAFF both generalize into
        // PERSON, so (MANAGER, gen, PERSON) has two derivations; cutting
        // one leaves the fact standing.
        let mut w = World::new();
        w.store.add("MANAGER", "gen", "EMPLOYEE");
        w.store.add("EMPLOYEE", "gen", "PERSON");
        w.store.add("MANAGER", "gen", "STAFF");
        w.store.add("STAFF", "gen", "PERSON");
        let mut c = w.closure();
        assert!(w.has(&c, "MANAGER", "gen", "PERSON"));
        w.retract(&mut c, "EMPLOYEE", "gen", "PERSON");
        assert!(w.has(&c, "MANAGER", "gen", "PERSON"));
        w.assert_matches_recompute(&c);
        w.retract(&mut c, "STAFF", "gen", "PERSON");
        assert!(!w.has(&c, "MANAGER", "gen", "PERSON"));
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_base_assertion_of_derived_fact() {
        // A fact that is both asserted and derived survives removal of
        // its base assertion — only the base-presence support dies, and
        // exactness falls back to what the derivation justifies.
        let mut w = World::new();
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        w.store.add("SALARY", "gen", "COMPENSATION");
        let mut c = w.closure();
        // G3 target lift: derived and inexact (existential target).
        let f = Fact::new(
            w.store.entity("EMPLOYEE"),
            w.store.entity("EARNS"),
            w.store.entity("COMPENSATION"),
        );
        assert!(c.contains(&f));
        assert!(!c.is_exact(&f), "target lift is inexact");
        let base = w.store.add("EMPLOYEE", "EARNS", "COMPENSATION");
        super::extend(&mut c, &mut w.store, &w.kinds, &w.rules, &w.config, &[base]).unwrap();
        assert!(c.is_exact(&f), "base assertion is exact");
        assert_eq!(c.support(&f), 2, "derived + base presence");
        w.retract(&mut c, "EMPLOYEE", "EARNS", "COMPENSATION");
        assert!(c.contains(&f), "still derivable from the taxonomy");
        assert!(!c.is_exact(&f), "back to the lifted, inexact derivation");
        assert_eq!(c.support(&f), 1);
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_through_inversion_and_synonyms() {
        let mut w = World::new();
        w.store.add("EARNS", "inv", "EARNED-BY");
        w.store.add("JOHN", "EARNS", "WAGE");
        w.store.add("JOHN", "syn", "JOHNNY");
        let mut c = w.closure();
        assert!(w.has(&c, "WAGE", "EARNED-BY", "JOHN"));
        assert!(w.has(&c, "JOHNNY", "EARNS", "WAGE"));
        w.retract(&mut c, "JOHN", "EARNS", "WAGE");
        assert!(!w.has(&c, "WAGE", "EARNED-BY", "JOHN"));
        assert!(!w.has(&c, "JOHNNY", "EARNS", "WAGE"));
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_composition_consequences() {
        // Path entities: (JOHN, WORKS-FOR.HEADED-BY, SUE) composes from
        // the two hops; removing a hop removes the composite.
        let mut w = World::new();
        w.config.limit(2);
        w.store.add("JOHN", "WORKS-FOR", "SHIPPING");
        w.store.add("SHIPPING", "HEADED-BY", "SUE");
        let mut c = w.closure();
        let john = w.store.lookup_symbol("JOHN").unwrap();
        let sue = w.store.lookup_symbol("SUE").unwrap();
        let composed: Vec<Fact> = c.matching(Pattern::new(Some(john), None, Some(sue))).collect();
        assert_eq!(composed.len(), 1);
        assert_eq!(w.store.display(composed[0].r), "WORKS-FOR.SHIPPING.HEADED-BY");
        w.retract(&mut c, "SHIPPING", "HEADED-BY", "SUE");
        assert!(!c.contains(&composed[0]));
        assert!(w.has(&c, "JOHN", "WORKS-FOR", "SHIPPING"));
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_user_rule_consequences() {
        // (x, ∈, EMPLOYEE) ⇒ (x, EARN, SALARY): dropping TOM's
        // membership drops his wage but not JOHN's.
        let mut w = World::new();
        let isa = special::ISA;
        let employee = w.store.entity("EMPLOYEE");
        let earn = w.store.entity("EARN");
        let salary = w.store.entity("SALARY");
        let mut b = Rule::builder("employees-earn");
        let x = b.var("x");
        w.rules.add(b.when(x, isa, employee).then(x, earn, salary).build().unwrap()).unwrap();
        w.store.add("JOHN", "isa", "EMPLOYEE");
        w.store.add("TOM", "isa", "EMPLOYEE");
        let mut c = w.closure();
        assert!(w.has(&c, "TOM", "EARN", "SALARY"));
        w.retract(&mut c, "TOM", "isa", "EMPLOYEE");
        assert!(!w.has(&c, "TOM", "EARN", "SALARY"));
        assert!(w.has(&c, "JOHN", "EARN", "SALARY"));
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_clears_settled_contradictions() {
        let mut w = World::new();
        w.store.add("LOVES", "contra", "HATES");
        w.store.add("JOHN", "LOVES", "MARY");
        w.store.add("JOHN", "HATES", "MARY");
        let mut c = w.closure();
        assert_eq!(c.violations().len(), 1);
        w.retract(&mut c, "JOHN", "HATES", "MARY");
        assert!(c.is_consistent(), "retraction resolves the conflict");
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_delta_rels_are_precise() {
        // The delta names the removed fact's rel and every touched
        // consequence rel — and nothing else. An unrelated rel in the
        // same world must not appear.
        let mut w = World::new();
        w.store.add("EMPLOYEE", "EARNS", "SALARY");
        w.store.add("MANAGER", "gen", "EMPLOYEE");
        w.store.add("FELIX", "OWNS", "YARN");
        let mut c = w.closure();
        let earns = w.store.entity("EARNS");
        let owns = w.store.entity("OWNS");
        let d = w.retract(&mut c, "EMPLOYEE", "EARNS", "SALARY");
        assert!(d.rels.contains(&earns));
        assert!(!d.rels.contains(&owns), "disjoint rel leaked into the delta");
        assert!(!d.rels.contains(&special::GEN), "taxonomy untouched");
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_interleaves_with_extend() {
        // Adds and removes in alternation, checking the closure against
        // a recompute at every step.
        let mut w = World::new();
        let mut c = w.closure();
        let script: [(bool, (&str, &str, &str)); 9] = [
            (true, ("EMPLOYEE", "EARNS", "SALARY")),
            (true, ("MANAGER", "gen", "EMPLOYEE")),
            (true, ("JOHN", "isa", "MANAGER")),
            (false, ("MANAGER", "gen", "EMPLOYEE")),
            (true, ("SALARY", "gen", "COMPENSATION")),
            (true, ("MANAGER", "gen", "EMPLOYEE")),
            (false, ("EMPLOYEE", "EARNS", "SALARY")),
            (false, ("JOHN", "isa", "MANAGER")),
            (true, ("EARNS", "inv", "EARNED-BY")),
        ];
        for (add, (s, r, t)) in script {
            if add {
                let f = w.store.add(s, r, t);
                super::extend(&mut c, &mut w.store, &w.kinds, &w.rules, &w.config, &[f]).unwrap();
            } else {
                w.retract(&mut c, s, r, t);
            }
            w.assert_matches_recompute(&c);
        }
    }

    #[test]
    fn retract_stats_count_the_wave() {
        let mut w = World::new();
        w.store.add("A", "gen", "B");
        w.store.add("B", "gen", "C");
        w.store.add("C", "gen", "D");
        let mut c = w.closure();
        // Chain closure: A≺C, A≺D, B≺D derived.
        let d = w.retract(&mut c, "A", "gen", "B");
        assert!(d.stats.over_deleted >= 2, "A≺C and A≺D must fall");
        assert_eq!(d.stats.rederived, 0, "nothing rederivable");
        assert!(d.stats.support_decrements >= d.stats.over_deleted);
        w.assert_matches_recompute(&c);
    }

    #[test]
    fn retract_absent_fact_is_harmless() {
        let mut w = World::new();
        w.store.add("JOHN", "LIKES", "MARY");
        let mut c = w.closure();
        let ghost =
            Fact::new(w.store.entity("TOM"), w.store.entity("LIKES"), w.store.entity("SUE"));
        let d = super::retract(&mut c, &mut w.store, &w.kinds, &w.rules, &w.config, &[ghost])
            .expect("retract");
        assert_eq!(d.stats.over_deleted, 0);
        assert!(w.has(&c, "JOHN", "LIKES", "MARY"));
        w.assert_matches_recompute(&c);
    }
}
