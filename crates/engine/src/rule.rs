//! Rules: the paper's single mechanism for inference and integrity (§2.4–2.6).
//!
//! A rule is a pair `⟨L, R⟩` of template sets: whenever the conjunction of
//! the left-hand templates matches, the instantiated right-hand templates
//! are facts of the closure. Integrity constraints are *the same
//! mechanism* (§2.5): they point out facts that must be present, and the
//! database is valid iff the closure is free of contradictions. The only
//! difference is attribution — a contradiction traced to a constraint rule
//! is reported as a violation of that constraint.

use std::collections::HashMap;
use std::fmt;

use crate::term::{Template, Term, Var};

/// Whether a rule is meant as inference or as an integrity constraint.
///
/// Mechanically identical (§2.5); the kind is used for reporting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleKind {
    /// Derives facts that enrich the closure.
    Inference,
    /// States facts that must hold; failures are integrity violations.
    Constraint,
}

/// Errors detected when constructing a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleError {
    /// The body (left-hand side) is empty; such a rule would assert its
    /// head unconditionally — assert facts directly instead.
    EmptyBody,
    /// The head (right-hand side) is empty.
    EmptyHead,
    /// A head variable does not occur in the body, so the rule is not
    /// range-restricted and its head cannot be instantiated.
    UnboundHeadVar(String),
    /// Two rules with the same name were registered.
    DuplicateName(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::EmptyBody => write!(f, "rule body is empty"),
            RuleError::EmptyHead => write!(f, "rule head is empty"),
            RuleError::UnboundHeadVar(v) => {
                write!(f, "head variable {v} does not occur in the body")
            }
            RuleError::DuplicateName(n) => write!(f, "duplicate rule name {n:?}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A validated conjunctive rule `⟨L, R⟩`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    name: String,
    kind: RuleKind,
    body: Vec<Template>,
    head: Vec<Template>,
    var_names: Vec<String>,
}

impl Rule {
    /// Starts building a rule with the given name.
    pub fn builder(name: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            name: name.into(),
            kind: RuleKind::Inference,
            body: Vec::new(),
            head: Vec::new(),
            var_names: Vec::new(),
            var_ids: HashMap::new(),
        }
    }

    /// The rule's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inference or constraint.
    pub fn kind(&self) -> RuleKind {
        self.kind
    }

    /// The body templates (left-hand side `L`).
    pub fn body(&self) -> &[Template] {
        &self.body
    }

    /// The head templates (right-hand side `R`).
    pub fn head(&self) -> &[Template] {
        &self.head
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Number of distinct variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }
}

/// Builder for [`Rule`]; obtain via [`Rule::builder`].
#[derive(Clone, Debug)]
pub struct RuleBuilder {
    name: String,
    kind: RuleKind,
    body: Vec<Template>,
    head: Vec<Template>,
    var_names: Vec<String>,
    var_ids: HashMap<String, Var>,
}

impl RuleBuilder {
    /// Returns the variable with the given name, creating it on first use.
    pub fn var(&mut self, name: impl Into<String>) -> Var {
        let name = name.into();
        if let Some(&v) = self.var_ids.get(&name) {
            return v;
        }
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.clone());
        self.var_ids.insert(name, v);
        v
    }

    /// Adds a body template.
    pub fn when(mut self, s: impl Into<Term>, r: impl Into<Term>, t: impl Into<Term>) -> Self {
        self.body.push(Template::new(s, r, t));
        self
    }

    /// Adds a head template.
    pub fn then(mut self, s: impl Into<Term>, r: impl Into<Term>, t: impl Into<Term>) -> Self {
        self.head.push(Template::new(s, r, t));
        self
    }

    /// Marks the rule as an integrity constraint.
    pub fn constraint(mut self) -> Self {
        self.kind = RuleKind::Constraint;
        self
    }

    /// Validates and finishes the rule.
    pub fn build(self) -> Result<Rule, RuleError> {
        if self.body.is_empty() {
            return Err(RuleError::EmptyBody);
        }
        if self.head.is_empty() {
            return Err(RuleError::EmptyHead);
        }
        let mut body_vars = vec![false; self.var_names.len()];
        for tpl in &self.body {
            for v in tpl.vars() {
                body_vars[v.index()] = true;
            }
        }
        for tpl in &self.head {
            for v in tpl.vars() {
                if !body_vars[v.index()] {
                    return Err(RuleError::UnboundHeadVar(self.var_names[v.index()].clone()));
                }
            }
        }
        Ok(Rule {
            name: self.name,
            kind: self.kind,
            body: self.body,
            head: self.head,
            var_names: self.var_names,
        })
    }
}

/// A registry of user rules with per-rule enablement — the `include(rule)`
/// / `exclude(rule)` operators of §6.1.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    rules: Vec<(Rule, bool)>,
    by_name: HashMap<String, usize>,
    epoch: u64,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a rule (enabled). Rule names must be unique.
    pub fn add(&mut self, rule: Rule) -> Result<(), RuleError> {
        if self.by_name.contains_key(rule.name()) {
            return Err(RuleError::DuplicateName(rule.name().to_string()));
        }
        self.by_name.insert(rule.name().to_string(), self.rules.len());
        self.rules.push((rule, true));
        self.epoch += 1;
        Ok(())
    }

    /// Enables a rule by name (§6.1 `include`). Returns false if unknown.
    pub fn include(&mut self, name: &str) -> bool {
        self.set_enabled(name, true)
    }

    /// Disables a rule by name (§6.1 `exclude`). Returns false if unknown.
    pub fn exclude(&mut self, name: &str) -> bool {
        self.set_enabled(name, false)
    }

    fn set_enabled(&mut self, name: &str, enabled: bool) -> bool {
        match self.by_name.get(name) {
            Some(&i) => {
                if self.rules[i].1 != enabled {
                    self.rules[i].1 = enabled;
                    self.epoch += 1;
                }
                true
            }
            None => false,
        }
    }

    /// True if the named rule exists and is enabled.
    pub fn is_enabled(&self, name: &str) -> bool {
        self.by_name.get(name).is_some_and(|&i| self.rules[i].1)
    }

    /// Looks up a rule by name.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.by_name.get(name).map(|&i| &self.rules[i].0)
    }

    /// Iterates over the enabled rules.
    pub fn enabled(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|(_, on)| *on).map(|(r, _)| r)
    }

    /// Iterates over all rules with their enablement.
    pub fn iter(&self) -> impl Iterator<Item = (&Rule, bool)> {
        self.rules.iter().map(|(r, on)| (r, *on))
    }

    /// Total number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// A counter bumped on every change; used for closure-cache
    /// invalidation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::EntityId;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn paper_section_2_4_inference_rule() {
        // (x, ∈, EMPLOYEE) ⇒ (x, EARN, SALARY)
        let mut b = Rule::builder("employees-earn");
        let x = b.var("x");
        let rule = b
            .when(x, e(1), e(100)) // (x, isa, EMPLOYEE)
            .then(x, e(101), e(102)) // (x, EARN, SALARY)
            .build()
            .unwrap();
        assert_eq!(rule.body().len(), 1);
        assert_eq!(rule.head().len(), 1);
        assert_eq!(rule.kind(), RuleKind::Inference);
        assert_eq!(rule.var_name(x), "x");
    }

    #[test]
    fn same_var_name_reused() {
        let mut b = Rule::builder("r");
        let x1 = b.var("x");
        let x2 = b.var("x");
        let y = b.var("y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn validation_rejects_empty_and_unbound() {
        assert_eq!(Rule::builder("r").build().unwrap_err(), RuleError::EmptyBody);

        let mut b = Rule::builder("r");
        let x = b.var("x");
        assert_eq!(b.when(x, e(1), e(2)).build().unwrap_err(), RuleError::EmptyHead);

        let mut b = Rule::builder("r");
        let x = b.var("x");
        let y = b.var("y");
        let err = b.when(x, e(1), e(2)).then(y, e(1), e(2)).build().unwrap_err();
        assert_eq!(err, RuleError::UnboundHeadVar("y".to_string()));
    }

    #[test]
    fn constraint_kind() {
        let mut b = Rule::builder("age-positive").constraint();
        let x = b.var("x");
        let rule = b.when(x, e(1), e(50)).then(x, e(8), e(60)).build().unwrap();
        assert_eq!(rule.kind(), RuleKind::Constraint);
    }

    fn trivial_rule(name: &str) -> Rule {
        let mut b = Rule::builder(name);
        let x = b.var("x");
        b.when(x, e(1), e(2)).then(x, e(3), e(4)).build().unwrap()
    }

    #[test]
    fn ruleset_include_exclude() {
        let mut rs = RuleSet::new();
        rs.add(trivial_rule("a")).unwrap();
        rs.add(trivial_rule("b")).unwrap();
        assert!(rs.is_enabled("a"));
        assert_eq!(rs.enabled().count(), 2);

        assert!(rs.exclude("a"));
        assert!(!rs.is_enabled("a"));
        assert_eq!(rs.enabled().count(), 1);

        assert!(rs.include("a"));
        assert_eq!(rs.enabled().count(), 2);
        assert!(!rs.exclude("missing"));
    }

    #[test]
    fn ruleset_rejects_duplicates() {
        let mut rs = RuleSet::new();
        rs.add(trivial_rule("a")).unwrap();
        assert_eq!(
            rs.add(trivial_rule("a")).unwrap_err(),
            RuleError::DuplicateName("a".to_string())
        );
    }

    #[test]
    fn ruleset_epoch_tracks_changes() {
        let mut rs = RuleSet::new();
        let e0 = rs.epoch();
        rs.add(trivial_rule("a")).unwrap();
        let e1 = rs.epoch();
        assert!(e1 > e0);
        rs.exclude("a");
        assert!(rs.epoch() > e1);
        let e2 = rs.epoch();
        rs.exclude("a"); // no change
        assert_eq!(rs.epoch(), e2);
    }
}
