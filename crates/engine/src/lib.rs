//! # loosedb-engine
//!
//! The data-model and inference layer of loosedb, implementing the core of
//! *Browsing in a Loosely Structured Database* (Motro, SIGMOD 1984):
//!
//! * [`term`] — templates (facts with variables, §2.4) and bindings.
//! * [`kind`] — the individual/class partition of relationships (§2.2).
//! * [`rule`] — conjunctive rules `⟨L, R⟩`, the single mechanism for both
//!   inference and integrity (§2.4–2.6), with the `include`/`exclude`
//!   operators of §6.1.
//! * [`config`] — toggles for the standard rule groups of §3 and the
//!   composition `limit(n)` operator.
//! * [`mathrel`] — the virtual mathematical relationships of §3.6.
//! * [`closure`] — semi-naive (and, for ablation, naive) forward-chaining
//!   closure with the built-in §3 rules, user rules, provenance, and
//!   contradiction detection (§3.5).
//! * [`taxonomy`] — minimal generalizations/specializations over the `≺`
//!   hierarchy, the machinery behind probing (§5.1).
//! * [`view`] — the retrieval view merging materialized and virtual facts.
//! * [`database`] — the [`Database`] type: facts + rules + cached closure,
//!   with transactional integrity-checked updates.
//! * [`durable`] — crash-safe journaling: a checksummed write-ahead log,
//!   atomic snapshot generations and fault-injectable recovery.
//!
//! ```
//! use loosedb_engine::Database;
//!
//! let mut db = Database::new();
//! db.add("JOHN", "isa", "EMPLOYEE");
//! db.add("EMPLOYEE", "EARNS", "SALARY");
//!
//! // Inference by membership (§3.2): John earns a salary.
//! let john = db.lookup_symbol("JOHN").unwrap();
//! let earns = db.lookup_symbol("EARNS").unwrap();
//! let salary = db.lookup_symbol("SALARY").unwrap();
//! let closure = db.closure().unwrap();
//! assert!(closure.contains(&loosedb_store::Fact::new(john, earns, salary)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod closure;
pub mod config;
pub mod database;
pub mod durable;
pub mod kind;
pub mod mathrel;
pub mod persist;
pub mod pool;
pub mod prove;
pub mod replica;
pub mod rule;
pub mod sharded;
pub mod shared;
pub mod taxonomy;
pub mod term;
pub mod view;

pub use closure::{
    Builtin, Closure, ClosureError, ClosureStats, DomainCounts, ExtendDelta, Provenance, Strategy,
    Violation,
};
pub use config::{InferenceConfig, RuleGroup};
pub use database::{Database, PublishDelta, TransactionError};
pub use durable::{DurableDatabase, DurableError, RecoveryInfo, SyncPolicy};
pub use kind::{KindRegistry, RelKind};
pub use mathrel::{MathMatchError, MathTruth};
pub use prove::Prover;
pub use replica::{PollReport, Replica, ReplicaError, ReplicaInfo, ReplicaOptions};
pub use rule::{Rule, RuleBuilder, RuleError, RuleKind, RuleSet};
pub use sharded::{shard_of, ShardStats, ShardedDatabase, ShardedError, ShardedSnapshot};
pub use shared::{DeltaSummary, Generation, SharedDatabase};
pub use taxonomy::Taxonomy;
pub use term::{Bindings, Template, Term, Var};
pub use view::{ClosureView, FactView};
