//! Crash-safe database journaling: a [`DurableDatabase`] wraps a
//! [`Database`] with a write-ahead log, snapshot generations and a
//! checksummed manifest, so the paper's "dynamic set of facts" (§6.1)
//! survives process crashes and torn writes.
//!
//! # On-disk layout
//!
//! A durable database owns a directory:
//!
//! ```text
//! <dir>/MANIFEST                 checksummed pointer to the live generation
//! <dir>/snap-<gen 16 digits>.lsdf  full image (facts, rules, kinds, config)
//! <dir>/wal-<gen 16 digits>.log    checksummed operation frames since it
//! ```
//!
//! The manifest records the live generation number plus the byte length
//! and CRC32 of its snapshot, and carries its own trailing CRC32; it is
//! replaced atomically (temp + fsync + rename), making the manifest write
//! the *commit point* of a checkpoint. Recovery reads the manifest, loads
//! the snapshot it vouches for, then replays the generation's WAL frame
//! by frame, stopping at the first torn or corrupt record and truncating
//! the damaged tail. If the manifest itself is damaged or stale, recovery
//! falls back to the newest snapshot that decodes, and to an empty
//! database below that.
//!
//! # What is and is not journaled
//!
//! WAL records cover base-fact insertions and removals made through
//! [`DurableDatabase::add`] / [`DurableDatabase::remove`] /
//! [`DurableDatabase::try_add`]. Rules, kind declarations and
//! configuration changes are captured by the *snapshot* at the next
//! [`DurableDatabase::checkpoint`], not by the WAL — make them before
//! writing facts, or checkpoint after changing them. Facts mentioning
//! derived path entities are applied in memory but never logged (they are
//! store-specific and re-derivable; see [`loosedb_store::FactLog`]).

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use loosedb_store::io::{atomic_write_with, crc32, RealIo, StorageIo};
use loosedb_store::log::{self as factlog, LogOp};
use loosedb_store::ship::{parse_generation, snap_name, wal_name, Manifest, MANIFEST_NAME};
use loosedb_store::{EntityValue, Fact};

use crate::database::{Database, TransactionError};
use crate::persist;

/// When WAL appends are flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every append: an acknowledged operation is durable.
    Always,
    /// Fsync after every `n` appends: at most `n` acknowledged operations
    /// can be lost to a crash (power loss; OS crash). A plain process
    /// crash loses nothing — the OS still holds the written bytes.
    EveryN(u32),
    /// Never fsync the WAL; only [`DurableDatabase::checkpoint`] (and
    /// [`DurableDatabase::sync`]) make operations durable.
    OnCheckpoint,
}

/// How a database came back at [`DurableDatabase::open_with`] time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The generation recovered into.
    pub generation: u64,
    /// True if a snapshot was loaded (false: started from empty).
    pub snapshot_loaded: bool,
    /// True if the manifest was missing/damaged and recovery had to scan
    /// for the newest decodable snapshot instead.
    pub used_fallback: bool,
    /// Operations replayed from the WAL tail.
    pub wal_ops_applied: usize,
    /// True if the WAL ended in a torn or corrupt record whose tail was
    /// truncated away.
    pub wal_tail_truncated: bool,
}

/// A [`Database`] wrapped in a crash-safe journal: every fact mutation is
/// appended to a checksummed write-ahead log before it is applied, and
/// [`checkpoint`](DurableDatabase::checkpoint) rotates the log into a new
/// atomic snapshot generation.
///
/// The I/O layer is pluggable ([`StorageIo`]) so crash-recovery tests can
/// inject faults at every I/O point; [`DurableDatabase::open`] uses the
/// real filesystem.
pub struct DurableDatabase<I: StorageIo = RealIo> {
    io: I,
    dir: PathBuf,
    db: Database,
    policy: SyncPolicy,
    generation: u64,
    /// Appends since the last fsync (for [`SyncPolicy::EveryN`]).
    unsynced: u32,
    /// Operations appended to the current WAL (recovered + new).
    wal_ops: u64,
    /// Retired WAL generations kept for lagging replication followers.
    retain_wals: u64,
    recovery: RecoveryInfo,
}

impl DurableDatabase<RealIo> {
    /// Opens (creating or recovering) a durable database directory on the
    /// real filesystem.
    pub fn open(dir: impl Into<PathBuf>, policy: SyncPolicy) -> io::Result<Self> {
        Self::open_with(RealIo, dir, policy)
    }
}

impl<I: StorageIo> DurableDatabase<I> {
    /// Opens a durable database through an explicit I/O layer.
    ///
    /// Recovery sequence: read the manifest; load the snapshot generation
    /// it vouches for (falling back to the newest snapshot that decodes,
    /// then to empty); replay the live WAL up to the first damaged frame;
    /// truncate the damaged tail if there is one.
    pub fn open_with(io: I, dir: impl Into<PathBuf>, policy: SyncPolicy) -> io::Result<Self> {
        let dir = dir.into();
        if !io.exists(&dir) {
            io.create_dir_all(&dir)?;
        }
        let mut recovery = RecoveryInfo::default();

        // 1. The snapshot the manifest vouches for.
        let mut db = None;
        let manifest_path = dir.join(MANIFEST_NAME);
        if io.exists(&manifest_path) {
            if let Some(m) = Manifest::decode(&io.read(&manifest_path)?) {
                let snap = dir.join(snap_name(m.generation));
                if let Ok(image) = io.read(&snap) {
                    if image.len() as u64 == m.snapshot_len && crc32(&image) == m.snapshot_crc {
                        if let Ok(decoded) = persist::decode(image.as_slice()) {
                            recovery.generation = m.generation;
                            recovery.snapshot_loaded = true;
                            db = Some(decoded);
                        }
                    }
                }
            }
        }

        // 2. Fallback: the newest snapshot that still decodes.
        if db.is_none() {
            let mut generations: Vec<u64> = io
                .list(&dir)
                .unwrap_or_default()
                .iter()
                .filter_map(|p| p.file_name()?.to_str().map(str::to_owned))
                .filter_map(|name| parse_generation(&name, "snap-", ".lsdf"))
                .collect();
            generations.sort_unstable_by(|a, b| b.cmp(a));
            for generation in generations {
                let Ok(image) = io.read(&dir.join(snap_name(generation))) else { continue };
                if let Ok(decoded) = persist::decode(image.as_slice()) {
                    recovery.generation = generation;
                    recovery.snapshot_loaded = true;
                    recovery.used_fallback = true;
                    db = Some(decoded);
                    break;
                }
            }
        }
        let mut db = db.unwrap_or_default();

        // 3. Replay the live WAL, leniently.
        let wal_path = dir.join(wal_name(recovery.generation));
        if io.exists(&wal_path) {
            let data = io.read(&wal_path)?;
            let mut frames = factlog::Frames::new(&data);
            for op in &mut frames {
                match op {
                    Ok(op) => {
                        apply_to_db(&mut db, op);
                        recovery.wal_ops_applied += 1;
                    }
                    Err(_) => recovery.wal_tail_truncated = true,
                }
            }
            if recovery.wal_tail_truncated {
                io.truncate(&wal_path, frames.valid_bytes() as u64)?;
            }
        }

        db.metrics().wal_recovered_ops.add(recovery.wal_ops_applied as u64);
        Ok(DurableDatabase {
            io,
            dir,
            db,
            policy,
            generation: recovery.generation,
            unsynced: 0,
            wal_ops: recovery.wal_ops_applied as u64,
            retain_wals: 0,
            recovery,
        })
    }

    /// Creates a durable database directory holding `db` at an explicit
    /// `generation` — no recovery, no journal replay. This is the
    /// promotion hook: a replica that has lost its leader converts its
    /// replayed state into a fresh writable journal with one call.
    ///
    /// Sequence: write `snap-<generation>` atomically → create its empty
    /// WAL → atomically replace the manifest (the commit point), exactly
    /// like a [`DurableDatabase::checkpoint`]. Pre-existing files in the
    /// directory are left alone.
    pub fn create_with(
        io: I,
        dir: impl Into<PathBuf>,
        db: Database,
        generation: u64,
        policy: SyncPolicy,
    ) -> io::Result<Self> {
        let dir = dir.into();
        if !io.exists(&dir) {
            io.create_dir_all(&dir)?;
        }
        let image = persist::encode(&db);
        atomic_write_with(&io, &dir.join(snap_name(generation)), &image)?;
        let wal = dir.join(wal_name(generation));
        io.write(&wal, &[])?;
        io.fsync(&wal)?;
        let manifest =
            Manifest { generation, snapshot_len: image.len() as u64, snapshot_crc: crc32(&image) };
        atomic_write_with(&io, &dir.join(MANIFEST_NAME), &manifest.encode())?;
        db.metrics().checkpoints.inc();
        Ok(DurableDatabase {
            io,
            dir,
            db,
            policy,
            generation,
            unsynced: 0,
            wal_ops: 0,
            retain_wals: 0,
            recovery: RecoveryInfo { generation, snapshot_loaded: true, ..RecoveryInfo::default() },
        })
    }

    // ------------------------------------------------------------------
    // Journaled mutations
    // ------------------------------------------------------------------

    /// Durably adds a fact: the operation is appended to the WAL (and
    /// flushed according to the [`SyncPolicy`]) *before* it is applied in
    /// memory. On error the in-memory database is unchanged.
    pub fn add(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> io::Result<Fact> {
        let (s, r, t) = (s.into(), r.into(), t.into());
        self.journal(&LogOp::Insert(s.clone(), r.clone(), t.clone()))?;
        Ok(self.db.add(s, r, t))
    }

    /// Durably removes a base fact; `Ok(false)` if it was not present
    /// (nothing is journaled then).
    pub fn remove(&mut self, f: &Fact) -> io::Result<bool> {
        if !self.db.contains_base(f) {
            return Ok(false);
        }
        let store = self.db.store();
        let op = LogOp::Remove(
            store.value(f.s).clone(),
            store.value(f.r).clone(),
            store.value(f.t).clone(),
        );
        self.journal(&op)?;
        match self.db.remove_incremental(f) {
            Ok(removed) => Ok(removed),
            // Retraction errors (e.g. unbounded composition mid-rederive)
            // leave the closure cache invalidated; the fact is gone from
            // the store and journaled, so removal still holds — the next
            // refresh recomputes.
            Err(_) => Ok(true),
        }
    }

    /// Durable transactional insert: integrity-checked in memory first
    /// (see [`Database::try_add`]), journaled only if it commits. If the
    /// WAL append then fails, the fact is rolled back out of memory and
    /// the I/O error returned — memory never runs ahead of an appendable
    /// journal.
    pub fn try_add(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Result<Fact, DurableError> {
        let (s, r, t) = (s.into(), r.into(), t.into());
        let fact = self.db.try_add(s.clone(), r.clone(), t.clone())?;
        if let Err(e) = self.journal(&LogOp::Insert(s, r, t)) {
            self.db.remove(&fact);
            return Err(DurableError::Io(e));
        }
        Ok(fact)
    }

    /// Appends one operation frame to the WAL and flushes per policy.
    /// Facts naming derived path entities are not journaled (no-op here).
    fn journal(&mut self, op: &LogOp) -> io::Result<()> {
        let values: [&EntityValue; 3] = match op {
            LogOp::Insert(s, r, t) | LogOp::Remove(s, r, t) => [s, r, t],
        };
        if values.iter().any(|v| matches!(v, EntityValue::Path(_))) {
            return Ok(());
        }
        let frame = factlog::encode_frame(op);
        let wal = self.wal_path();
        let mut span = loosedb_obs::span!("store.wal.append", bytes = frame.len());
        self.io.append(&wal, &frame)?;
        let metrics = self.db.metrics();
        metrics.wal_appends.inc();
        metrics.wal_append_bytes.add(frame.len() as u64);
        self.wal_ops += 1;
        match self.policy {
            SyncPolicy::Always => {
                self.fsync_timed(&wal)?;
                span.record("fsynced", true);
            }
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.fsync_timed(&wal)?;
                    span.record("fsynced", true);
                    self.unsynced = 0;
                }
            }
            SyncPolicy::OnCheckpoint => {}
        }
        Ok(())
    }

    /// One WAL fsync, with its latency recorded.
    fn fsync_timed(&mut self, wal: &std::path::Path) -> io::Result<()> {
        let started = Instant::now();
        let _span = loosedb_obs::span!("store.wal.fsync");
        self.io.fsync(wal)?;
        let metrics = self.db.metrics();
        metrics.wal_fsyncs.inc();
        metrics.wal_fsync_ns.record_duration(started.elapsed());
        Ok(())
    }

    /// Flushes any unsynced WAL appends to stable storage now.
    pub fn sync(&mut self) -> io::Result<()> {
        let wal = self.wal_path();
        if self.io.exists(&wal) {
            self.fsync_timed(&wal)?;
        }
        self.unsynced = 0;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Writes a new snapshot generation and rotates the WAL.
    ///
    /// Sequence: write `snap-<gen+1>` atomically → create its empty WAL →
    /// atomically replace the manifest (the commit point) → retire the
    /// previous generation's files. A crash *before* the manifest write
    /// recovers from the old generation (whose WAL still holds every
    /// operation); a crash *after* it recovers from the new one. Returns
    /// the new generation number.
    pub fn checkpoint(&mut self) -> io::Result<u64> {
        let started = Instant::now();
        let next = self.generation + 1;
        let _span = loosedb_obs::span!("store.wal.checkpoint", generation = next);
        let image = persist::encode(&self.db);
        atomic_write_with(&self.io, &self.dir.join(snap_name(next)), &image)?;

        let new_wal = self.dir.join(wal_name(next));
        self.io.write(&new_wal, &[])?;
        self.io.fsync(&new_wal)?;

        let manifest = Manifest {
            generation: next,
            snapshot_len: image.len() as u64,
            snapshot_crc: crc32(&image),
        };
        atomic_write_with(&self.io, &self.dir.join(MANIFEST_NAME), &manifest.encode())?;

        // The new generation is durable; retire everything older. Stale
        // snapshots always go (only the manifest's one matters); retired
        // WALs within the retention window stay so a lagging follower
        // can finish tailing them instead of re-bootstrapping.
        let wal_floor = next.saturating_sub(self.retain_wals);
        self.generation = next;
        self.unsynced = 0;
        self.wal_ops = 0;
        for path in self.io.list(&self.dir).unwrap_or_default() {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let stale = parse_generation(name, "snap-", ".lsdf").is_some_and(|g| g < next)
                || parse_generation(name, "wal-", ".log").is_some_and(|g| g < wal_floor);
            if stale {
                self.io.remove_file(&path)?;
            }
        }
        let metrics = self.db.metrics();
        metrics.checkpoints.inc();
        metrics.checkpoint_ns.record_duration(started.elapsed());
        Ok(next)
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// The wrapped database (closure, queries, validation…).
    pub fn database(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Read-only access to the wrapped database.
    pub fn database_ref(&self) -> &Database {
        &self.db
    }

    /// The metrics registry (shared with the wrapped database): WAL
    /// appends/fsyncs, checkpoints and recovery counters report here.
    pub fn metrics(&self) -> &std::sync::Arc<loosedb_obs::Metrics> {
        self.db.metrics()
    }

    /// How the last [`open`](DurableDatabase::open_with) recovered.
    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// The live snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Operations sitting in the current WAL (replayed + appended).
    pub fn wal_ops(&self) -> u64 {
        self.wal_ops
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying I/O layer (fault-injection tests inspect it).
    pub fn io_ref(&self) -> &I {
        &self.io
    }

    /// The current sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Changes the sync policy for subsequent appends.
    pub fn set_policy(&mut self, policy: SyncPolicy) {
        self.policy = policy;
    }

    /// Keeps the WALs of the last `n` retired generations through future
    /// checkpoints (default 0: retire immediately). A follower tailing
    /// this directory can then finish a rotated segment instead of
    /// re-bootstrapping whenever a checkpoint outruns it.
    pub fn set_retain_wals(&mut self, n: u64) {
        self.retain_wals = n;
    }

    /// Retired WAL generations kept for followers.
    pub fn retain_wals(&self) -> u64 {
        self.retain_wals
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(wal_name(self.generation))
    }
}

/// Applies a recovered WAL operation to the in-memory database.
fn apply_to_db(db: &mut Database, op: LogOp) {
    match op {
        LogOp::Insert(s, r, t) => {
            db.add(s, r, t);
        }
        LogOp::Remove(s, r, t) => {
            let f = Fact::new(db.entity(s), db.entity(r), db.entity(t));
            db.remove(&f);
        }
    }
}

/// Errors from durable transactional updates: either the transaction was
/// rejected in memory, or the journal append failed (and the update was
/// rolled back).
#[derive(Debug)]
pub enum DurableError {
    /// The in-memory transaction was rejected (integrity or closure).
    Transaction(TransactionError),
    /// Appending to the write-ahead log failed; the fact was rolled back.
    Io(io::Error),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Transaction(e) => write!(f, "{e}"),
            DurableError::Io(e) => write!(f, "journal append failed: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<TransactionError> for DurableError {
    fn from(e: TransactionError) -> Self {
        DurableError::Transaction(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::io::MemIo;
    use std::sync::Arc;

    fn dir() -> PathBuf {
        PathBuf::from("/durable")
    }

    #[test]
    fn fresh_open_add_reopen() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        db.add("JOHN", "EARNS", 25000i64).unwrap();
        db.add("JOHN", "isa", "EMPLOYEE").unwrap();
        let f = db.add("JOHN", "LIKES", "FELIX").unwrap();
        db.remove(&f).unwrap();
        drop(db);

        let db = DurableDatabase::open_with(io, dir(), SyncPolicy::Always).unwrap();
        assert_eq!(db.database_ref().base_len(), 2);
        assert_eq!(db.recovery().wal_ops_applied, 4);
        assert!(!db.recovery().snapshot_loaded);
    }

    #[test]
    fn checkpoint_rotates_and_retires() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        db.add("A", "R", "B").unwrap();
        assert_eq!(db.checkpoint().unwrap(), 1);
        assert_eq!(db.wal_ops(), 0);
        db.add("C", "R", "D").unwrap();
        drop(db);

        // Only generation-1 files plus MANIFEST remain.
        let names: Vec<String> = io
            .list(&dir())
            .unwrap()
            .iter()
            .filter_map(|p| p.file_name()?.to_str().map(str::to_owned))
            .collect();
        assert_eq!(
            names,
            vec!["MANIFEST", "snap-0000000000000001.lsdf", "wal-0000000000000001.log"]
        );

        let db = DurableDatabase::open_with(io, dir(), SyncPolicy::Always).unwrap();
        assert_eq!(db.generation(), 1);
        assert!(db.recovery().snapshot_loaded);
        assert!(!db.recovery().used_fallback);
        assert_eq!(db.recovery().wal_ops_applied, 1);
        assert_eq!(db.database_ref().base_len(), 2);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_newest_snapshot() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        db.add("A", "R", "B").unwrap();
        db.checkpoint().unwrap();
        db.add("C", "R", "D").unwrap();
        drop(db);

        let manifest = dir().join(MANIFEST_NAME);
        let mut data = io.read(&manifest).unwrap();
        data[9] ^= 0xFF;
        io.write(&manifest, &data).unwrap();

        let db = DurableDatabase::open_with(io, dir(), SyncPolicy::Always).unwrap();
        assert!(db.recovery().used_fallback);
        assert_eq!(db.generation(), 1);
        assert_eq!(db.database_ref().base_len(), 2);
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        db.add("A", "R", "B").unwrap();
        db.add("C", "R", "D").unwrap();
        drop(db);

        // Tear the last record in half.
        let wal = dir().join(wal_name(0));
        let data = io.read(&wal).unwrap();
        let torn = data.len() - 5;
        io.truncate(&wal, torn as u64).unwrap();

        let db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        assert_eq!(db.recovery().wal_ops_applied, 1);
        assert!(db.recovery().wal_tail_truncated);
        assert_eq!(db.database_ref().base_len(), 1);
        // The damaged tail is gone: a further reopen sees a clean log.
        drop(db);
        let db = DurableDatabase::open_with(io, dir(), SyncPolicy::Always).unwrap();
        assert!(!db.recovery().wal_tail_truncated);
        assert_eq!(db.recovery().wal_ops_applied, 1);
    }

    #[test]
    fn try_add_journals_commits_and_skips_rejections() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        db.add("LOVES", "contra", "HATES").unwrap();
        db.add("JOHN", "LOVES", "MARY").unwrap();
        let err = db.try_add("JOHN", "HATES", "MARY").unwrap_err();
        assert!(matches!(err, DurableError::Transaction(_)));
        db.try_add("JOHN", "LOVES", "FELIX").unwrap();
        drop(db);

        let db = DurableDatabase::open_with(io, dir(), SyncPolicy::Always).unwrap();
        assert_eq!(db.recovery().wal_ops_applied, 3);
        assert_eq!(db.database_ref().base_len(), 3);
        let john = db.database_ref().lookup_symbol("JOHN").unwrap();
        let hates = db.database_ref().lookup_symbol("HATES");
        // HATES exists as an entity (from the contra fact) but no
        // (JOHN, HATES, MARY) fact survived.
        let mary = db.database_ref().lookup_symbol("MARY").unwrap();
        assert!(!db.database_ref().contains_base(&Fact::new(john, hates.unwrap(), mary)));
    }

    #[test]
    fn path_facts_apply_in_memory_but_skip_the_journal() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        let a = db.database().entity("A");
        db.add(
            EntityValue::Path(vec![a].into()),
            EntityValue::symbol("R"),
            EntityValue::symbol("B"),
        )
        .unwrap();
        assert_eq!(db.database_ref().base_len(), 1);
        assert_eq!(db.wal_ops(), 0);
        drop(db);
        let db = DurableDatabase::open_with(io, dir(), SyncPolicy::Always).unwrap();
        assert_eq!(db.database_ref().base_len(), 0);
    }

    #[test]
    fn every_n_policy_syncs_in_batches() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::EveryN(3)).unwrap();
        for i in 0..7i64 {
            db.add(i, "isa", "N").unwrap();
        }
        // All appended ops are visible on reopen (MemIo writes always
        // land); policy only controls fsync cadence.
        drop(db);
        let db = DurableDatabase::open_with(io, dir(), SyncPolicy::EveryN(3)).unwrap();
        assert_eq!(db.recovery().wal_ops_applied, 7);
    }

    #[test]
    fn retained_wals_survive_checkpoints() {
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        db.set_retain_wals(1);
        db.add("A", "R", "B").unwrap();
        db.checkpoint().unwrap();
        db.add("C", "R", "D").unwrap();
        db.checkpoint().unwrap();
        drop(db);
        // Stale snapshots are always retired; the retention window keeps
        // exactly the previous generation's WAL for lagging followers.
        let names: Vec<String> = io
            .list(&dir())
            .unwrap()
            .iter()
            .filter_map(|p| p.file_name()?.to_str().map(str::to_owned))
            .collect();
        assert_eq!(
            names,
            vec![
                "MANIFEST",
                "snap-0000000000000002.lsdf",
                "wal-0000000000000001.log",
                "wal-0000000000000002.log"
            ]
        );
    }

    #[test]
    fn create_with_builds_a_ready_directory() {
        let mut inner = Database::new();
        inner.add("JOHN", "isa", "EMPLOYEE");
        let io = Arc::new(MemIo::new());
        let promoted = PathBuf::from("/promoted");
        let db = DurableDatabase::create_with(io.clone(), &*promoted, inner, 5, SyncPolicy::Always)
            .unwrap();
        assert_eq!(db.generation(), 5);
        drop(db);
        let mut db = DurableDatabase::open_with(io, promoted, SyncPolicy::Always).unwrap();
        assert_eq!(db.generation(), 5);
        assert!(db.recovery().snapshot_loaded);
        assert!(!db.recovery().used_fallback);
        assert_eq!(db.database_ref().base_len(), 1);
        // The promoted directory accepts writes and checkpoints.
        db.add("MARY", "isa", "EMPLOYEE").unwrap();
        assert_eq!(db.checkpoint().unwrap(), 6);
    }

    #[test]
    fn checkpoint_preserves_rules_kinds_and_config() {
        use crate::rule::Rule;
        let io = Arc::new(MemIo::new());
        let mut db = DurableDatabase::open_with(io.clone(), dir(), SyncPolicy::Always).unwrap();
        db.add("JOHN", "isa", "EMPLOYEE").unwrap();
        {
            let inner = db.database();
            let mut b = Rule::builder("custom");
            let x = b.var("x");
            let emp = inner.entity("EMPLOYEE");
            let works = inner.entity("WORKS");
            inner
                .add_rule(
                    b.when(x, loosedb_store::special::ISA, emp)
                        .then(x, works, emp)
                        .build()
                        .unwrap(),
                )
                .unwrap();
            let total = inner.entity("TOTAL");
            inner.declare_class(total);
            inner.limit(4);
        }
        db.checkpoint().unwrap();
        db.add("MARY", "isa", "EMPLOYEE").unwrap();
        drop(db);

        let mut db = DurableDatabase::open_with(io, dir(), SyncPolicy::Always).unwrap();
        assert!(db.database_ref().rules().get("custom").is_some());
        let total = db.database_ref().lookup_symbol("TOTAL").unwrap();
        assert!(db.database_ref().kinds().is_class(total));
        assert_eq!(db.database_ref().config().composition_limit, 4);
        // The restored rule still fires, including on post-checkpoint facts.
        let mary = db.database_ref().lookup_symbol("MARY").unwrap();
        let works = db.database_ref().lookup_symbol("WORKS").unwrap();
        let emp = db.database_ref().lookup_symbol("EMPLOYEE").unwrap();
        let closure = db.database().closure().unwrap();
        assert!(closure.contains(&Fact::new(mary, works, emp)));
    }
}
