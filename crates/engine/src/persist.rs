//! Full-database persistence: facts *and* rules, kinds, configuration.
//!
//! [`loosedb_store::snapshot`] captures the fact heap; a loosely
//! structured database also carries its rule set ⟨L,R⟩ (§2.6: "a database
//! is a set of facts P and a set of rules R"), the individual/class
//! partition (§2.2) and the inference configuration (§6.1 toggles). This
//! module serializes all four into one image, so a database round-trips
//! completely — including its integrity constraints.
//!
//! Format: `LSDF` magic + version, a length-prefixed store snapshot
//! (delegated to [`loosedb_store::snapshot`]), then the rule, kind and
//! configuration sections. Rule templates reference entity ids of the
//! embedded snapshot, which re-interns deterministically.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use loosedb_store::codec::{self, CodecError};
use loosedb_store::{snapshot, EntityId};

use crate::config::InferenceConfig;
use crate::database::Database;
use crate::rule::{Rule, RuleKind};
use crate::term::{Template, Term, Var};

const MAGIC: &[u8; 4] = b"LSDF";
const VERSION: u16 = 1;

/// Serializes a database — facts, rules, kinds, configuration — into one
/// buffer.
pub fn encode(db: &Database) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);

    // Store section, length-prefixed.
    let store_bytes = snapshot::encode(db.store());
    out.put_u64_le(store_bytes.len() as u64);
    out.put_slice(&store_bytes);

    // Rules.
    let rules: Vec<(&Rule, bool)> = db.rules().iter().collect();
    out.put_u32_le(rules.len() as u32);
    for (rule, enabled) in rules {
        put_str(&mut out, rule.name());
        out.put_u8(match rule.kind() {
            RuleKind::Inference => 0,
            RuleKind::Constraint => 1,
        });
        out.put_u8(enabled as u8);
        out.put_u32_le(rule.var_count() as u32);
        for i in 0..rule.var_count() {
            put_str(&mut out, rule.var_name(Var(i as u32)));
        }
        put_templates(&mut out, rule.body());
        put_templates(&mut out, rule.head());
    }

    // Kinds: explicitly declared class relationships.
    let class_rels: Vec<EntityId> = db
        .store()
        .interner()
        .ids()
        .filter(|&id| !loosedb_store::special::is_special(id) && db.kinds().is_class(id))
        .collect();
    out.put_u32_le(class_rels.len() as u32);
    for id in class_rels {
        out.put_u32_le(id.0);
    }

    // Configuration.
    let c = db.config();
    out.put_u8(c.generalization as u8);
    out.put_u8(c.membership as u8);
    out.put_u8(c.synonym as u8);
    out.put_u8(c.inversion as u8);
    out.put_u8(c.user_rules as u8);
    out.put_u64_le(c.composition_limit as u64);
    out.put_u64_le(c.parallel_threshold as u64);
    out.put_u64_le(c.max_closure_facts as u64);

    out.freeze()
}

/// Reconstructs a database from a full image.
pub fn decode(mut input: impl Buf) -> Result<Database, CodecError> {
    if input.remaining() < 6 {
        return Err(CodecError::UnexpectedEof);
    }
    let mut magic = [0u8; 4];
    input.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = input.get_u16_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }

    let store_len = codec::get_u64(&mut input)? as usize;
    if input.remaining() < store_len {
        return Err(CodecError::UnexpectedEof);
    }
    let store_bytes = input.copy_to_bytes(store_len);
    let store = snapshot::decode(store_bytes)?;
    let max_id = store.entity_count() as u32;
    let mut db = Database::from_store(store);

    // Rules.
    let rule_count = codec::get_u32(&mut input)?;
    for _ in 0..rule_count {
        let name = get_str(&mut input)?;
        let kind = codec::get_u8(&mut input)?;
        let enabled = codec::get_u8(&mut input)? != 0;
        let var_count = codec::get_u32(&mut input)? as usize;
        if var_count > input.remaining() {
            return Err(CodecError::BadLength(var_count));
        }
        let mut builder = Rule::builder(&name);
        if kind == 1 {
            builder = builder.constraint();
        }
        let mut vars = Vec::with_capacity(var_count);
        for _ in 0..var_count {
            let var_name = get_str(&mut input)?;
            vars.push(builder.var(var_name));
        }
        for tpl in get_templates(&mut input, max_id, vars.len())? {
            builder = builder.when(tpl.s, tpl.r, tpl.t);
        }
        for tpl in get_templates(&mut input, max_id, vars.len())? {
            builder = builder.then(tpl.s, tpl.r, tpl.t);
        }
        let rule = builder.build().map_err(|_| CodecError::BadTag(0xFE))?;
        db.add_rule(rule).map_err(|_| CodecError::BadTag(0xFD))?;
        if !enabled {
            db.exclude_rule(&name);
        }
    }

    // Kinds.
    let class_count = codec::get_u32(&mut input)?;
    for _ in 0..class_count {
        let raw = codec::get_u32(&mut input)?;
        if raw >= max_id {
            return Err(CodecError::IdOutOfRange(raw));
        }
        db.declare_class(EntityId(raw));
    }

    // Configuration.
    let config = InferenceConfig {
        generalization: codec::get_u8(&mut input)? != 0,
        membership: codec::get_u8(&mut input)? != 0,
        synonym: codec::get_u8(&mut input)? != 0,
        inversion: codec::get_u8(&mut input)? != 0,
        user_rules: codec::get_u8(&mut input)? != 0,
        composition_limit: codec::get_u64(&mut input)? as usize,
        parallel_threshold: codec::get_u64(&mut input)? as usize,
        max_closure_facts: codec::get_u64(&mut input)? as usize,
    };
    if config.composition_limit == 0 {
        return Err(CodecError::BadLength(0));
    }
    *db.config_mut() = config;

    Ok(db)
}

/// Writes a full database image to a file atomically (temp + fsync +
/// rename), so a crash mid-save leaves any previous image intact.
pub fn save(db: &Database, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    loosedb_store::io::atomic_write(path, &encode(db))
}

/// Loads a full database image from a file.
pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Database> {
    let data = std::fs::read(path)?;
    decode(data.as_slice())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(input: &mut impl Buf) -> Result<String, CodecError> {
    let len = codec::get_u32(input)? as usize;
    if len > input.remaining() {
        return Err(CodecError::BadLength(len));
    }
    let mut buf = vec![0u8; len];
    input.copy_to_slice(&mut buf);
    String::from_utf8(buf).map_err(|_| CodecError::BadUtf8)
}

fn put_templates(out: &mut BytesMut, templates: &[Template]) {
    out.put_u32_le(templates.len() as u32);
    for tpl in templates {
        for term in tpl.terms() {
            match term {
                Term::Const(e) => {
                    out.put_u8(0);
                    out.put_u32_le(e.0);
                }
                Term::Var(v) => {
                    out.put_u8(1);
                    out.put_u32_le(v.0);
                }
            }
        }
    }
}

fn get_templates(
    input: &mut impl Buf,
    max_id: u32,
    var_count: usize,
) -> Result<Vec<Template>, CodecError> {
    let count = codec::get_u32(input)? as usize;
    if count.checked_mul(15).is_none_or(|bytes| bytes > input.remaining()) {
        return Err(CodecError::BadLength(count));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut terms = [Term::Var(Var(0)); 3];
        for slot in &mut terms {
            let tag = codec::get_u8(input)?;
            let raw = codec::get_u32(input)?;
            *slot = match tag {
                0 => {
                    if raw >= max_id {
                        return Err(CodecError::IdOutOfRange(raw));
                    }
                    Term::Const(EntityId(raw))
                }
                1 => {
                    if raw as usize >= var_count {
                        return Err(CodecError::IdOutOfRange(raw));
                    }
                    Term::Var(Var(raw))
                }
                other => return Err(CodecError::BadTag(other)),
            };
        }
        out.push(Template::new(terms[0], terms[1], terms[2]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::special;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("EMPLOYEE", "EARNS", "SALARY");
        db.add(30i64, "isa", "AGE");
        let age = db.entity("AGE");
        let zero = db.entity(0i64);
        let total = db.entity("TOTAL-NUMBER");
        db.declare_class(total);
        let mut b = Rule::builder("age-positive");
        let x = b.var("x");
        db.add_rule(
            b.constraint().when(x, special::ISA, age).then(x, special::GT, zero).build().unwrap(),
        )
        .unwrap();
        let mut b = Rule::builder("disabled-rule");
        let y = b.var("y");
        let r = db.entity("R");
        let c = db.entity("C");
        db.add_rule(b.when(y, r, c).then(y, special::ISA, c).build().unwrap()).unwrap();
        db.exclude_rule("disabled-rule");
        db.limit(3);
        db
    }

    #[test]
    fn full_roundtrip_preserves_everything() {
        let mut original = sample_db();
        let mut restored = decode(encode(&original)).expect("decode");

        // Facts.
        assert_eq!(restored.base_len(), original.base_len());
        // Rules: names, kinds, enablement.
        let rule = restored.rules().get("age-positive").expect("rule");
        assert_eq!(rule.kind(), RuleKind::Constraint);
        assert!(restored.rules().is_enabled("age-positive"));
        assert!(!restored.rules().is_enabled("disabled-rule"));
        // Kinds.
        let total = restored.lookup_symbol("TOTAL-NUMBER").unwrap();
        assert!(restored.kinds().is_class(total));
        // Config.
        assert_eq!(restored.config().composition_limit, 3);
        assert_eq!(restored.config(), original.config());
        // Behaviour: the constraint still guards updates.
        assert!(restored.try_add(-1i64, "isa", "AGE").is_err());
        assert!(original.try_add(-1i64, "isa", "AGE").is_err());
        // Closures agree.
        let facts_of = |db: &mut Database| -> std::collections::BTreeSet<String> {
            let facts: Vec<_> = db.closure().unwrap().iter().collect();
            facts.into_iter().map(|f| db.store().display_fact(&f)).collect()
        };
        assert_eq!(facts_of(&mut original), facts_of(&mut restored));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let data = encode(&sample_db()).to_vec();
        for cut in (0..data.len()).step_by(7) {
            assert!(decode(&data[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut data = encode(&sample_db()).to_vec();
        data[0] = b'X';
        assert!(matches!(decode(data.as_slice()), Err(CodecError::BadMagic)));
        let mut data = encode(&sample_db()).to_vec();
        data[4] = 0xFF;
        assert!(matches!(decode(data.as_slice()), Err(CodecError::BadVersion(_))));
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("loosedb-full-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.lsdf");
        save(&db, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.base_len(), db.base_len());
        assert_eq!(restored.rules().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_database_roundtrip() {
        let db = Database::new();
        let restored = decode(encode(&db)).expect("decode");
        assert_eq!(restored.base_len(), 0);
        assert!(restored.rules().is_empty());
    }
}
