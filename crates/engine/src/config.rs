//! Inference configuration: the `include`/`exclude`/`limit` operators of
//! §6.1 applied to the standard rule groups of §3.
//!
//! The paper makes the inference system dynamically editable: "This allows
//! us to turn inference rules off and on, at will. For example, if
//! inference by composition is undesirable because it is too powerful (and
//! expensive) it may be switched on ... before a particular retrieval, and
//! switched off afterwards."

use std::fmt;

/// The standard inference-rule groups of §3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleGroup {
    /// Inference by generalization, rules G1–G3 (§3.1).
    Generalization,
    /// Inference by membership, rules M1–M2 and upward closure (§3.2).
    Membership,
    /// Synonym facts and substitution (§3.3).
    Synonym,
    /// Inversion facts (§3.4).
    Inversion,
    /// Inference by composition (§3.7); bounded by the composition limit.
    Composition,
    /// User-defined rules (inference and integrity, §2.4–2.5).
    UserRules,
}

impl RuleGroup {
    /// All groups.
    pub const ALL: [RuleGroup; 6] = [
        RuleGroup::Generalization,
        RuleGroup::Membership,
        RuleGroup::Synonym,
        RuleGroup::Inversion,
        RuleGroup::Composition,
        RuleGroup::UserRules,
    ];

    /// The group's operator name (`include("membership")`).
    pub fn name(self) -> &'static str {
        match self {
            RuleGroup::Generalization => "generalization",
            RuleGroup::Membership => "membership",
            RuleGroup::Synonym => "synonym",
            RuleGroup::Inversion => "inversion",
            RuleGroup::Composition => "composition",
            RuleGroup::UserRules => "user-rules",
        }
    }

    /// Parses a group name.
    pub fn from_name(name: &str) -> Option<RuleGroup> {
        RuleGroup::ALL.into_iter().find(|g| g.name() == name)
    }
}

impl fmt::Display for RuleGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Toggles and limits for the inference system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InferenceConfig {
    /// Inference by generalization (G1–G3) enabled.
    pub generalization: bool,
    /// Inference by membership (M1–M2, upward closure) enabled.
    pub membership: bool,
    /// Synonym inference enabled.
    pub synonym: bool,
    /// Inversion inference enabled.
    pub inversion: bool,
    /// User rules applied during closure.
    pub user_rules: bool,
    /// Maximum composition chain length, counted in *base facts* — the
    /// paper's `limit(n)` (§6.1): `1` disables composition, `2` allows
    /// single compositions whose results cannot compose further, etc.
    pub composition_limit: usize,
    /// Delta size at or above which the structural rule groups of one
    /// fixpoint round are applied on all cores (chunks merged in order,
    /// so the result is byte-identical to the sequential path). Set to
    /// `usize::MAX` to force sequential execution (the experiment E13
    /// ablation baseline).
    pub parallel_threshold: usize,
    /// Safety valve: closure computation aborts with an error once this
    /// many facts have been derived. The paper notes composition "may have
    /// serious effect on the cost of query processing"; this bound turns a
    /// runaway closure into a reportable error.
    pub max_closure_facts: usize,
}

impl Default for InferenceConfig {
    /// Everything on except composition (`limit(1)`), matching the paper's
    /// advice that composition is switched on only around particular
    /// retrievals.
    fn default() -> Self {
        InferenceConfig {
            generalization: true,
            membership: true,
            synonym: true,
            inversion: true,
            user_rules: true,
            composition_limit: 1,
            parallel_threshold: 8192,
            max_closure_facts: 10_000_000,
        }
    }
}

impl InferenceConfig {
    /// A configuration with every group disabled (raw facts only).
    pub fn none() -> Self {
        InferenceConfig {
            generalization: false,
            membership: false,
            synonym: false,
            inversion: false,
            user_rules: false,
            composition_limit: 1,
            parallel_threshold: 8192,
            max_closure_facts: 10_000_000,
        }
    }

    /// Enables a rule group (`include`, §6.1). Enabling
    /// [`RuleGroup::Composition`] with a limit still at 1 raises it to 2.
    pub fn include(&mut self, group: RuleGroup) -> &mut Self {
        match group {
            RuleGroup::Generalization => self.generalization = true,
            RuleGroup::Membership => self.membership = true,
            RuleGroup::Synonym => self.synonym = true,
            RuleGroup::Inversion => self.inversion = true,
            RuleGroup::UserRules => self.user_rules = true,
            RuleGroup::Composition => {
                if self.composition_limit <= 1 {
                    self.composition_limit = 2;
                }
            }
        }
        self
    }

    /// Disables a rule group (`exclude`, §6.1).
    pub fn exclude(&mut self, group: RuleGroup) -> &mut Self {
        match group {
            RuleGroup::Generalization => self.generalization = false,
            RuleGroup::Membership => self.membership = false,
            RuleGroup::Synonym => self.synonym = false,
            RuleGroup::Inversion => self.inversion = false,
            RuleGroup::UserRules => self.user_rules = false,
            RuleGroup::Composition => self.composition_limit = 1,
        }
        self
    }

    /// True if the group is enabled.
    pub fn is_enabled(&self, group: RuleGroup) -> bool {
        match group {
            RuleGroup::Generalization => self.generalization,
            RuleGroup::Membership => self.membership,
            RuleGroup::Synonym => self.synonym,
            RuleGroup::Inversion => self.inversion,
            RuleGroup::UserRules => self.user_rules,
            RuleGroup::Composition => self.composition_limit > 1,
        }
    }

    /// Sets the composition chain-length limit (`limit(n)`, §6.1).
    ///
    /// # Panics
    /// Panics if `n == 0`; a chain always contains at least the base fact.
    pub fn limit(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "limit(n) requires n >= 1 (1 disables composition)");
        self.composition_limit = n;
        self
    }

    /// True if composition is active.
    pub fn composition_enabled(&self) -> bool {
        self.composition_limit > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_advice() {
        let c = InferenceConfig::default();
        assert!(c.generalization && c.membership && c.synonym && c.inversion && c.user_rules);
        assert!(!c.composition_enabled());
    }

    #[test]
    fn include_exclude_roundtrip() {
        let mut c = InferenceConfig::none();
        for g in RuleGroup::ALL {
            assert!(!c.is_enabled(g), "{g} starts disabled");
            c.include(g);
            assert!(c.is_enabled(g), "{g} enabled");
            c.exclude(g);
            assert!(!c.is_enabled(g), "{g} disabled again");
        }
    }

    #[test]
    fn limit_semantics() {
        let mut c = InferenceConfig::default();
        c.limit(1);
        assert!(!c.composition_enabled());
        c.limit(3);
        assert!(c.composition_enabled());
        assert_eq!(c.composition_limit, 3);
        c.exclude(RuleGroup::Composition);
        assert_eq!(c.composition_limit, 1);
    }

    #[test]
    fn include_composition_raises_limit() {
        let mut c = InferenceConfig::none();
        c.include(RuleGroup::Composition);
        assert_eq!(c.composition_limit, 2);
        c.limit(5);
        c.include(RuleGroup::Composition); // keeps an explicit higher limit
        assert_eq!(c.composition_limit, 5);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn limit_zero_rejected() {
        InferenceConfig::default().limit(0);
    }

    #[test]
    fn group_names_roundtrip() {
        for g in RuleGroup::ALL {
            assert_eq!(RuleGroup::from_name(g.name()), Some(g));
        }
        assert_eq!(RuleGroup::from_name("nonsense"), None);
    }
}
