//! Relationship kinds: the paper's partition of `R` into individual and
//! class relationships (§2.2).
//!
//! *Individual* relationships characterize an entity because they apply to
//! every instance of it (`EARN` applies to every employee); *class*
//! relationships characterize the aggregate (`TOTAL-NUMBER` does not apply
//! to any single employee). The standard inference rules of §3 are
//! quantified over the individual relationships: a class-level fact
//! `(EMPLOYEE, TOTAL-NUMBER, 180)` must *not* flow to instances or along
//! the hierarchy.

use std::collections::HashMap;

use loosedb_store::{special, EntityId};

/// The kind of a relationship (§2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelKind {
    /// Applies to every instance of its source/target (element of `R_i`).
    Individual,
    /// Characterizes the aggregate only (element of `R_c`).
    Class,
}

/// Registry mapping relationship entities to their kind.
///
/// Relationships default to [`RelKind::Individual`] — the common case for
/// domain relationships like `EARNS` or `WORKS-FOR` — and may be declared
/// class explicitly. The special entities have fixed kinds:
///
/// * `≺` is individual (the paper states this in §2.3; it is what makes
///   generalization transitive under rule G1).
/// * `∈` is class (§2.3): membership must not flow to instances of
///   instances through the §3 rules.
/// * `≈`, `⁺`, `⊥` and the mathematical comparators are class: they state
///   meta-level properties that must not propagate along the hierarchy
///   (a specialization of a synonym is not itself a synonym).
#[derive(Clone, Debug, Default)]
pub struct KindRegistry {
    class: HashMap<EntityId, ()>,
    individual_overrides: HashMap<EntityId, ()>,
    epoch: u64,
}

impl KindRegistry {
    /// Creates a registry with only the fixed special kinds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relationship to be a class relationship.
    ///
    /// # Panics
    /// Panics if `rel` is a special entity, whose kind is fixed.
    pub fn declare_class(&mut self, rel: EntityId) {
        assert!(!special::is_special(rel), "special entity kinds are fixed");
        self.individual_overrides.remove(&rel);
        if self.class.insert(rel, ()).is_none() {
            self.epoch += 1;
        }
    }

    /// Declares a relationship to be an individual relationship
    /// (the default; this undoes a previous [`declare_class`]).
    ///
    /// [`declare_class`]: KindRegistry::declare_class
    ///
    /// # Panics
    /// Panics if `rel` is a special entity, whose kind is fixed.
    pub fn declare_individual(&mut self, rel: EntityId) {
        assert!(!special::is_special(rel), "special entity kinds are fixed");
        if self.class.remove(&rel).is_some() {
            self.epoch += 1;
        }
        self.individual_overrides.insert(rel, ());
    }

    /// A counter bumped on every effective change; used for closure-cache
    /// invalidation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The kind of `rel`.
    pub fn kind(&self, rel: EntityId) -> RelKind {
        if special::is_special(rel) {
            if rel == special::GEN {
                RelKind::Individual
            } else {
                RelKind::Class
            }
        } else if self.class.contains_key(&rel) {
            RelKind::Class
        } else {
            RelKind::Individual
        }
    }

    /// True if `rel` ∈ `R_i` (participates in the §3 rules).
    #[inline]
    pub fn is_individual(&self, rel: EntityId) -> bool {
        self.kind(rel) == RelKind::Individual
    }

    /// True if `rel` ∈ `R_c`.
    #[inline]
    pub fn is_class(&self, rel: EntityId) -> bool {
        self.kind(rel) == RelKind::Class
    }

    /// Number of explicit class declarations.
    pub fn declared_class_count(&self) -> usize {
        self.class.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let reg = KindRegistry::new();
        assert_eq!(reg.kind(EntityId(100)), RelKind::Individual);
    }

    #[test]
    fn special_kinds_fixed() {
        let reg = KindRegistry::new();
        assert_eq!(reg.kind(special::GEN), RelKind::Individual);
        assert_eq!(reg.kind(special::ISA), RelKind::Class);
        assert_eq!(reg.kind(special::SYN), RelKind::Class);
        assert_eq!(reg.kind(special::INV), RelKind::Class);
        assert_eq!(reg.kind(special::CONTRA), RelKind::Class);
        assert_eq!(reg.kind(special::LT), RelKind::Class);
        assert_eq!(reg.kind(special::EQ), RelKind::Class);
    }

    #[test]
    fn declare_and_undeclare() {
        let mut reg = KindRegistry::new();
        let total = EntityId(100);
        reg.declare_class(total);
        assert!(reg.is_class(total));
        reg.declare_individual(total);
        assert!(reg.is_individual(total));
    }

    #[test]
    #[should_panic(expected = "fixed")]
    fn cannot_redeclare_special() {
        let mut reg = KindRegistry::new();
        reg.declare_class(special::GEN);
    }
}
