//! Sharded worlds: hash-partitioned stores behind one write router.
//!
//! A [`ShardedDatabase`] splits the fact base across N in-process
//! [`SharedDatabase`] shards, partitioned by **source entity**: the fact
//! `(s, r, t)` lives on `shard(s) = hash(s) mod N`. Each shard keeps its
//! own generation chain and O(delta) publish path, so a write touches one
//! shard's closure (1/N of the data) instead of the whole world — the
//! scale-out half of the story PR 8's parallel joins started inside one
//! store.
//!
//! # The broadcast invariant
//!
//! Source-hash partitioning alone would break inference: the membership
//! rule `(x, ∈, c) ∧ (c, r, z) ⇒ (x, r, z)` joins a fact on `shard(x)`
//! with one on `shard(c)`. Instead of moving data at inference time, the
//! router *broadcasts* to every shard each base fact that any §3 rule can
//! consume away from its owner shard:
//!
//! * **structural facts** — `≺`, `∈`, `syn`, `inv`, `⊥` — so every shard
//!   holds the full taxonomy and rule graph;
//! * facts whose source is **class-like** — the target of any base `≺` or
//!   `∈` fact, either side of a `syn` fact, or a reserved entity — the
//!   ordinary premises of membership, inheritance and synonymy;
//! * facts whose relationship is **broadcast-active** — it reaches, via
//!   upward `≺` chains, either side of an `inv` fact (or a user-rule body
//!   that needs it): the ordinary premises of inversion.
//!
//! Everything else routes to its owner shard only. Under this invariant
//! every closure fact `(s, r, t)` is derivable on `shard(s)` (each rule's
//! premises are either sourced at `s`, broadcast, or virtual/math), so:
//! the union of the shard closures equals the single-store closure, a
//! query whose atoms all share one source term can be answered per shard
//! with no data movement (the *collocated* fast path), and integrity
//! violations — whose premises always share a source — surface on the
//! owner shard.
//!
//! Structural inserts can *promote* an entity into the class-like set (or
//! a relationship into the broadcast-active set) after facts it governs
//! were already routed; the router then re-broadcasts those existing base
//! facts. Demotion on removal is deliberately not attempted: a stale copy
//! is still a genuine base fact, so closures stay correct and removals
//! simply fan out to every shard. User rules whose body and head do not
//! all share one source variable degrade the router to full replication
//! (`broadcast_all`) — sharding keeps correctness and loses partitioning,
//! never the reverse.
//!
//! # Interner alignment
//!
//! Every write interns its three entity values into *all* shards, in
//! shard order, before any shard stores the fact. Interners are
//! append-only, so identical insertion order means identical id
//! assignment: an `EntityId` is valid on every shard and gathered rows
//! never need translation. (This requires composition to stay disabled —
//! the default — because materialized composition interns path entities
//! mid-closure, outside the router's control.)
//!
//! Writes serialize on the router (one route lock), exactly as
//! [`SharedDatabase`] serializes on its writer mutex; reads are lock-free
//! per shard and never blocked by the router.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use loosedb_obs::{Metrics, MetricsSnapshot};
use loosedb_store::{special, EntityId, EntityValue, Fact, FactStore, Interner, Pattern};

use crate::closure::{ClosureError, Violation};
use crate::config::RuleGroup;
use crate::database::{Database, TransactionError};
use crate::durable::{DurableDatabase, SyncPolicy};
use crate::rule::{Rule, RuleError};
use crate::shared::{DeltaSummary, Generation, SharedDatabase};
use crate::term::Term;
use crate::view::ClosureView;

/// Errors surfaced by sharded-router operations.
#[derive(Debug)]
pub enum ShardedError {
    /// Closure computation failed on some shard.
    Closure(ClosureError),
    /// A rule was rejected (duplicate name, unbound head variable, …).
    Rule(RuleError),
    /// A transactional insert was rejected.
    Transaction(TransactionError),
    /// A durable shard's journal failed.
    Io(io::Error),
}

impl fmt::Display for ShardedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardedError::Closure(e) => write!(f, "shard closure failed: {e}"),
            ShardedError::Rule(e) => write!(f, "rule rejected: {e}"),
            ShardedError::Transaction(e) => write!(f, "{e}"),
            ShardedError::Io(e) => write!(f, "shard journal failed: {e}"),
        }
    }
}

impl std::error::Error for ShardedError {}

impl From<ClosureError> for ShardedError {
    fn from(e: ClosureError) -> Self {
        ShardedError::Closure(e)
    }
}
impl From<RuleError> for ShardedError {
    fn from(e: RuleError) -> Self {
        ShardedError::Rule(e)
    }
}
impl From<TransactionError> for ShardedError {
    fn from(e: TransactionError) -> Self {
        ShardedError::Transaction(e)
    }
}
impl From<io::Error> for ShardedError {
    fn from(e: io::Error) -> Self {
        ShardedError::Io(e)
    }
}

/// The partition function: which of `n` shards owns source entity `e`.
///
/// Fibonacci hashing on the raw id — ids are dense small integers, so
/// multiplicative spreading (not `id % n`) keeps consecutive entities off
/// the same shard.
#[inline]
pub fn shard_of(e: EntityId, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let spread = (e.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (spread % n as u64) as usize
}

/// True for the five structural relationships every shard must replicate.
#[inline]
fn is_structural(r: EntityId) -> bool {
    matches!(r, special::GEN | special::ISA | special::SYN | special::INV | special::CONTRA)
}

/// Newly broadcast-eligible entities/relationships produced by one
/// structural observation; existing base facts they govern must be
/// re-broadcast.
#[derive(Default)]
struct Promotion {
    /// Entities that just became class-like.
    entities: Vec<EntityId>,
    /// Relationships that just became broadcast-active.
    rels: Vec<EntityId>,
    /// The router just degraded to full replication.
    all: bool,
}

impl Promotion {
    fn is_empty(&self) -> bool {
        self.entities.is_empty() && self.rels.is_empty() && !self.all
    }
}

/// The routing metadata: which sources and relationships force broadcast.
/// Derived entirely from base structural facts and registered user rules,
/// so it can be reconstructed from the stored facts at recovery.
#[derive(Default)]
struct RouteMeta {
    /// Targets of base `≺`/`∈` facts and both sides of base `syn` facts.
    class_like: BTreeSet<EntityId>,
    /// Either side of a base `inv` fact (plus user-rule extensions):
    /// the seeds of the broadcast-active relationship set.
    broadcast_seeds: BTreeSet<EntityId>,
    /// `broadcast_seeds` closed downward under base `≺` edges: every
    /// relationship whose facts can derive (via rel-generalization) into
    /// a relationship some rule consumes off-shard.
    active_rels: BTreeSet<EntityId>,
    /// Base `≺` edges, reversed: target → sources. Drives the downward
    /// closure above.
    gen_down: BTreeMap<EntityId, BTreeSet<EntityId>>,
    /// Head relationships of registered user rules: if one becomes
    /// broadcast-active, collocated firing no longer suffices and the
    /// router degrades to full replication.
    user_head_rels: BTreeSet<EntityId>,
    /// Replicate everything: a user rule (or rule/taxonomy interaction)
    /// escaped the collocated analysis.
    broadcast_all: bool,
}

impl RouteMeta {
    /// Must fact `(s, r, _)` be on every shard?
    fn must_broadcast(&self, s: EntityId, r: EntityId) -> bool {
        self.broadcast_all
            || is_structural(r)
            || special::is_special(s)
            || self.class_like.contains(&s)
            || self.active_rels.contains(&r)
    }

    /// Marks `rel` and everything that `≺`-reaches it as broadcast-active,
    /// returning the newly activated relationships.
    fn activate(&mut self, rel: EntityId) -> Vec<EntityId> {
        let mut fresh = Vec::new();
        let mut stack = vec![rel];
        while let Some(r) = stack.pop() {
            if self.active_rels.insert(r) {
                fresh.push(r);
                if let Some(below) = self.gen_down.get(&r) {
                    stack.extend(below.iter().copied());
                }
            }
        }
        fresh
    }

    /// Records a base fact's structural consequences, returning any
    /// promotions (already-routed facts that must now be re-broadcast).
    fn observe(&mut self, f: Fact) -> Promotion {
        let mut promo = Promotion::default();
        match f.r {
            special::GEN => {
                self.gen_down.entry(f.t).or_default().insert(f.s);
                if self.class_like.insert(f.t) {
                    promo.entities.push(f.t);
                }
                // A new ≺ edge below an active relationship extends the
                // downward closure through the new source.
                if self.active_rels.contains(&f.t) {
                    promo.rels.extend(self.activate(f.s));
                }
            }
            special::ISA if self.class_like.insert(f.t) => promo.entities.push(f.t),
            special::SYN => {
                for e in [f.s, f.t] {
                    if self.class_like.insert(e) {
                        promo.entities.push(e);
                    }
                }
            }
            special::INV => {
                for r in [f.s, f.t] {
                    if self.broadcast_seeds.insert(r) {
                        promo.rels.extend(self.activate(r));
                    }
                }
            }
            _ => {}
        }
        if !self.broadcast_all && promo.rels.iter().any(|r| self.user_head_rels.contains(r)) {
            self.broadcast_all = true;
            promo.all = true;
        }
        promo
    }

    /// Analyzes a user rule against the collocated-firing condition:
    /// every head template's source and every ordinary body template's
    /// source must be one shared variable. Rules that fail the condition
    /// degrade the router to full replication — correctness over
    /// partitioning.
    fn observe_rule(&mut self, rule: &Rule) -> Promotion {
        let mut promo = Promotion::default();
        let mut shared_source: Option<Term> = None;
        let mut collocated = true;
        let mut note_source = |term: Term, collocated: &mut bool| match term {
            Term::Const(_) => *collocated = false,
            Term::Var(_) => match shared_source {
                None => shared_source = Some(term),
                Some(prev) => {
                    if prev != term {
                        *collocated = false;
                    }
                }
            },
        };
        for h in rule.head() {
            match h.r {
                Term::Var(_) => collocated = false,
                Term::Const(r) => {
                    if is_structural(r) {
                        // A rule deriving taxonomy facts invalidates the
                        // "structural closure is identical everywhere"
                        // invariant unless everything is replicated.
                        collocated = false;
                    }
                    if !special::is_math(r) {
                        self.user_head_rels.insert(r);
                        if self.active_rels.contains(&r) {
                            collocated = false;
                        }
                    }
                }
            }
            note_source(h.s, &mut collocated);
        }
        for b in rule.body() {
            match b.r {
                Term::Var(_) => collocated = false,
                Term::Const(r) => {
                    if !is_structural(r) && !special::is_math(r) {
                        note_source(b.s, &mut collocated);
                    }
                }
            }
        }
        if !collocated && !self.broadcast_all {
            self.broadcast_all = true;
            promo.all = true;
        }
        promo
    }
}

/// Per-shard status for monitoring (`:shards` in the REPL).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Current epoch of the shard's generation chain.
    pub epoch: u64,
    /// Base facts stored on the shard (owned + broadcast copies).
    pub base_facts: usize,
    /// Facts in the shard's published closure.
    pub closure_facts: usize,
    /// Generations the shard has published.
    pub publishes: u64,
}

/// A durable shard journal: a [`DurableDatabase`] mirroring exactly the
/// facts routed to its in-memory shard, WAL-appended *before* the
/// in-memory apply. The mirror keeps its own (shard-local) interner; ops
/// are journaled by value, so recovery re-interns into fresh aligned
/// shards.
struct ShardJournal {
    wal: Mutex<DurableDatabase>,
}

/// A hash-partitioned database: N [`SharedDatabase`] shards behind one
/// write router. See the module docs for the partition function and the
/// broadcast invariant.
///
/// ```
/// use loosedb_engine::{FactView, ShardedDatabase};
///
/// let db = ShardedDatabase::new(4).unwrap();
/// db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
/// db.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
///
/// let snap = db.snapshot();
/// let john = snap.lookup_symbol("JOHN").unwrap();
/// let earns = snap.lookup_symbol("EARNS").unwrap();
/// let salary = snap.lookup_symbol("SALARY").unwrap();
/// // Membership inference ran on JOHN's shard: the derived fact is
/// // visible through the owner shard's view.
/// let owner = &snap.views()[db.shard_of(john)];
/// assert!(owner.holds(&loosedb_store::Fact::new(john, earns, salary)));
/// ```
pub struct ShardedDatabase {
    shards: Vec<SharedDatabase>,
    /// Routing metadata; doubles as the router's write lock — every
    /// mutation holds it end to end so interner alignment and the
    /// broadcast invariant never race.
    route: Mutex<RouteMeta>,
    /// Optional per-shard WAL journals (durable mode).
    journals: Option<Vec<ShardJournal>>,
    /// Router-level metrics (`shard.*`); each shard keeps its own full
    /// registry with per-shard publish/query histograms.
    metrics: Arc<Metrics>,
}

impl ShardedDatabase {
    /// Creates `n` empty shards with default inference configuration.
    pub fn new(n: usize) -> Result<Self, ShardedError> {
        Self::with_setup(n, |_| {})
    }

    /// Creates `n` empty shards, applying `setup` (kind declarations,
    /// rule-group toggles, …) to each shard's database before the first
    /// generation is published. Composition must stay disabled — the
    /// router owns interner alignment (see the module docs).
    pub fn with_setup(
        n: usize,
        mut setup: impl FnMut(&mut Database),
    ) -> Result<Self, ShardedError> {
        let n = n.max(1);
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let mut db = Database::new();
            setup(&mut db);
            assert!(
                db.config().composition_limit <= 1,
                "sharded databases require composition to stay disabled: \
                 materialized composition interns path entities outside the router"
            );
            shards.push(SharedDatabase::new(db)?);
        }
        let metrics = Arc::new(Metrics::new());
        metrics.shard_count.set(n as u64);
        Ok(ShardedDatabase {
            shards,
            route: Mutex::new(RouteMeta::default()),
            journals: None,
            metrics,
        })
    }

    /// Bulk-loads an existing store into `n` shards: one interner pass
    /// aligns every shard's ids with the source store's, the routing
    /// metadata is derived from the full fact set up front (no mid-load
    /// promotions), and each shard computes its closure once.
    pub fn from_store(n: usize, store: &FactStore) -> Result<Self, ShardedError> {
        Self::from_store_with_setup(n, store, |_| {})
    }

    /// [`Self::from_store`] with a per-shard setup hook (rule-group
    /// toggles, kind declarations) applied before loading, under the
    /// same composition restriction as [`Self::with_setup`].
    pub fn from_store_with_setup(
        n: usize,
        store: &FactStore,
        mut setup: impl FnMut(&mut Database),
    ) -> Result<Self, ShardedError> {
        let n = n.max(1);
        let mut dbs: Vec<Database> = (0..n)
            .map(|_| {
                let mut db = Database::new();
                setup(&mut db);
                assert!(
                    db.config().composition_limit <= 1,
                    "sharded databases require composition to stay disabled: \
                     materialized composition interns path entities outside the router"
                );
                db
            })
            .collect();
        for db in &mut dbs {
            for (_, value) in store.interner().iter() {
                db.entity(value.clone());
            }
            debug_assert_eq!(db.store().interner().len(), store.interner().len());
        }
        let mut meta = RouteMeta::default();
        for f in store.iter() {
            meta.observe(f);
        }
        for f in store.iter() {
            if meta.must_broadcast(f.s, f.r) {
                for db in &mut dbs {
                    db.insert(f);
                }
            } else {
                dbs[shard_of(f.s, n)].insert(f);
            }
        }
        let mut shards = Vec::with_capacity(n);
        for db in dbs {
            shards.push(SharedDatabase::new(db)?);
        }
        let metrics = Arc::new(Metrics::new());
        metrics.shard_count.set(n as u64);
        Ok(ShardedDatabase { shards, route: Mutex::new(meta), journals: None, metrics })
    }

    /// Opens (creating or recovering) a durable sharded database: shard
    /// `i` journals to `dir/shard-i` through a [`DurableDatabase`] WAL,
    /// appended *before* the in-memory apply. Recovery replays each
    /// journal, then re-interns every recovered fact by value into fresh
    /// aligned shards and re-derives the routing metadata.
    pub fn open_durable(
        dir: impl Into<PathBuf>,
        n: usize,
        policy: SyncPolicy,
    ) -> Result<Self, ShardedError> {
        let dir: PathBuf = dir.into();
        let n = n.max(1);
        let mut journals = Vec::with_capacity(n);
        for i in 0..n {
            journals.push(DurableDatabase::open(shard_dir(&dir, i), policy)?);
        }

        // Recovered facts, per shard, as values (mirror interners are
        // shard-local; values are the portable identity).
        let mut recovered: Vec<Vec<(EntityValue, EntityValue, EntityValue)>> =
            Vec::with_capacity(n);
        for j in &journals {
            let store = j.database_ref().store();
            recovered.push(
                store
                    .iter()
                    .map(|f| {
                        (
                            store.value(f.s).clone(),
                            store.value(f.r).clone(),
                            store.value(f.t).clone(),
                        )
                    })
                    .collect(),
            );
        }

        let mut sharded = Self::new(n)?;
        sharded.journals =
            Some(journals.into_iter().map(|wal| ShardJournal { wal: Mutex::new(wal) }).collect());

        // Replay by value through the normal routed write path, journal
        // suppressed (the ops are already in the WALs). This re-derives
        // the routing metadata and re-materializes the broadcast
        // invariant; shard placement of owner-routed facts is identical
        // because re-interning in recovery order reproduces the ids.
        for (i, facts) in recovered.iter().enumerate() {
            for (s, r, t) in facts {
                // A broadcast copy appears in several journals; routing
                // the first occurrence re-creates the others, and the
                // duplicate replays are absorbed as no-ops.
                let _ = i;
                sharded.insert_impl(s.clone(), r.clone(), t.clone(), false)?;
            }
        }
        Ok(sharded)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns facts sourced at `e`.
    pub fn shard_of(&self, e: EntityId) -> usize {
        shard_of(e, self.shards.len())
    }

    /// One shard's [`SharedDatabase`].
    pub fn shard(&self, i: usize) -> &SharedDatabase {
        &self.shards[i]
    }

    /// All shards, in partition order.
    pub fn shards(&self) -> &[SharedDatabase] {
        &self.shards
    }

    /// Router-level metrics (`shard.*`).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Typed snapshot of the router-level metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// A point-in-time snapshot of every shard's current generation.
    /// Per-shard snapshots are individually consistent; the vector is
    /// assembled without a global lock, so a concurrent write may land
    /// between two shards' snapshots (single-fact writes touch one shard
    /// — or all, atomically per shard — so collocated reads are always
    /// consistent).
    pub fn snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot { gens: self.shards.iter().map(|s| s.snapshot()).collect() }
    }

    /// Every shard's current epoch, in partition order. The cache key for
    /// sharded sessions: compare element-wise and merge the per-shard
    /// delta rings with [`ShardedDatabase::delta_between`].
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// Merges the per-shard delta rings across an epoch-vector span:
    /// [`DeltaSummary::Precise`] with the union of touched relationships
    /// when every shard's span is precise, degrading to the weakest
    /// shard's answer otherwise. `FullAt` carries a shard-local epoch —
    /// meaningful only as "some shard had a full publish in the span".
    pub fn delta_between(&self, from: &[u64], to: &[u64]) -> DeltaSummary {
        if from.len() != self.shards.len() || to.len() != self.shards.len() {
            return DeltaSummary::Unknown;
        }
        let mut rels = BTreeSet::new();
        let mut full_at = None;
        for (i, shard) in self.shards.iter().enumerate() {
            match shard.delta_between(from[i], to[i]) {
                DeltaSummary::Precise(r) => rels.extend(r),
                DeltaSummary::FullAt(e) => full_at = Some(full_at.map_or(e, |f: u64| f.min(e))),
                DeltaSummary::Unknown => return DeltaSummary::Unknown,
            }
        }
        match full_at {
            Some(e) => DeltaSummary::FullAt(e),
            None => DeltaSummary::Precise(rels),
        }
    }

    /// The union of relationships touched by any shard's publishes in the
    /// span, or `None` if any shard cannot answer precisely.
    pub fn rels_changed_between(&self, from: &[u64], to: &[u64]) -> Option<BTreeSet<EntityId>> {
        match self.delta_between(from, to) {
            DeltaSummary::Precise(rels) => Some(rels),
            _ => None,
        }
    }

    /// Per-shard status, in partition order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let g = s.snapshot();
                ShardStats {
                    epoch: g.epoch(),
                    base_facts: g.store().len(),
                    closure_facts: g.closure().len(),
                    publishes: s.metrics().publishes.get(),
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Writes (serialized on the route lock)
    // ------------------------------------------------------------------

    /// Interns the three values into every shard, in shard order, and
    /// returns the (identical everywhere) fact ids. Caller holds the
    /// route lock.
    fn intern_everywhere(&self, s: &EntityValue, r: &EntityValue, t: &EntityValue) -> Fact {
        let mut fact = Fact::new(special::TOP, special::TOP, special::TOP);
        for (i, shard) in self.shards.iter().enumerate() {
            let ids = shard.extend_interner(|interner| {
                (interner.intern(s.clone()), interner.intern(r.clone()), interner.intern(t.clone()))
            });
            if i == 0 {
                fact = Fact::new(ids.0, ids.1, ids.2);
            } else {
                debug_assert_eq!(
                    (fact.s, fact.r, fact.t),
                    ids,
                    "shard interners diverged — router invariant broken"
                );
            }
        }
        fact
    }

    /// Copies existing base facts governed by a promotion to every shard.
    /// Caller holds the route lock.
    fn apply_promotion(&self, meta: &RouteMeta, promo: Promotion) -> Result<(), ShardedError> {
        if promo.is_empty() {
            return Ok(());
        }
        let n = self.shards.len();
        // Collect the values of every fact that must now be everywhere.
        let mut triples: BTreeSet<(EntityValue, EntityValue, EntityValue)> = BTreeSet::new();
        let mut collect = |shard: &SharedDatabase, pattern: Pattern| {
            shard.read_writer(|db| {
                let store = db.store();
                for f in store.matching(pattern) {
                    triples.insert((
                        store.value(f.s).clone(),
                        store.value(f.r).clone(),
                        store.value(f.t).clone(),
                    ));
                }
            });
        };
        if promo.all {
            for shard in &self.shards {
                collect(shard, Pattern::ANY);
            }
        } else {
            for &e in &promo.entities {
                // Facts sourced at a newly class-like entity live on its
                // owner shard (plus any earlier broadcast copies).
                collect(&self.shards[shard_of(e, n)], Pattern::from_source(e));
            }
            for &r in &promo.rels {
                // Facts of a newly active relationship may be owner-routed
                // anywhere: scan all shards.
                for shard in &self.shards {
                    collect(shard, Pattern::from_rel(r));
                }
            }
        }
        let _ = meta;
        if triples.is_empty() {
            return Ok(());
        }
        self.metrics.shard_route_rebroadcast.add(triples.len() as u64);
        for (i, shard) in self.shards.iter().enumerate() {
            shard.write_if_changed(|db| {
                for (s, r, t) in &triples {
                    db.add_incremental(s.clone(), r.clone(), t.clone())?;
                }
                Ok(())
            })?;
            self.journal_inserts(i, triples.iter())?;
        }
        Ok(())
    }

    /// Journals inserts to shard `i`'s WAL mirror (durable mode only).
    /// The mirror already holding a fact absorbs the append as a no-op
    /// at the database level but would double-journal; filter first.
    fn journal_inserts<'a>(
        &self,
        i: usize,
        triples: impl Iterator<Item = &'a (EntityValue, EntityValue, EntityValue)>,
    ) -> Result<(), ShardedError> {
        let Some(journals) = &self.journals else { return Ok(()) };
        let mut wal = journals[i].wal.lock();
        for (s, r, t) in triples {
            let mirror = wal.database_ref();
            let present = match (mirror.lookup(s), mirror.lookup(r), mirror.lookup(t)) {
                (Some(s), Some(r), Some(t)) => mirror.store().contains(&Fact::new(s, r, t)),
                _ => false,
            };
            if !present {
                wal.add(s.clone(), r.clone(), t.clone())?;
            }
        }
        Ok(())
    }

    /// Inserts a fact (unchecked, [`Database::add`] semantics): broadcast
    /// facts publish on every shard, others on their owner shard only.
    pub fn insert(
        &self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Result<Fact, ShardedError> {
        self.insert_impl(s.into(), r.into(), t.into(), true)
    }

    fn insert_impl(
        &self,
        s: EntityValue,
        r: EntityValue,
        t: EntityValue,
        journal: bool,
    ) -> Result<Fact, ShardedError> {
        let mut meta = self.route.lock();
        let started = Instant::now();
        let fact = self.intern_everywhere(&s, &r, &t);
        let promo = meta.observe(fact);
        self.apply_promotion(&meta, promo)?;
        let triple = (s, r, t);
        if meta.must_broadcast(fact.s, fact.r) {
            self.metrics.shard_route_broadcast.inc();
            for (i, shard) in self.shards.iter().enumerate() {
                if journal {
                    self.journal_inserts(i, std::iter::once(&triple))?;
                }
                shard.insert(triple.0.clone(), triple.1.clone(), triple.2.clone())?;
            }
        } else {
            let owner = shard_of(fact.s, self.shards.len());
            self.metrics.shard_route_owner.inc();
            if journal {
                self.journal_inserts(owner, std::iter::once(&triple))?;
            }
            self.shards[owner].insert(triple.0, triple.1, triple.2)?;
        }
        self.metrics.shard_publish_ns.record_duration(started.elapsed());
        Ok(fact)
    }

    /// Transactionally inserts a fact ([`Database::try_add`] semantics).
    /// Broadcast facts commit on every shard or none: a rejection on any
    /// shard rolls the earlier shards back before returning the error.
    pub fn try_insert(
        &self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Result<Fact, ShardedError> {
        let (s, r, t) = (s.into(), r.into(), t.into());
        let mut meta = self.route.lock();
        let started = Instant::now();
        let fact = self.intern_everywhere(&s, &r, &t);
        let promo = meta.observe(fact);
        self.apply_promotion(&meta, promo)?;
        let targets: Vec<usize> = if meta.must_broadcast(fact.s, fact.r) {
            self.metrics.shard_route_broadcast.inc();
            (0..self.shards.len()).collect()
        } else {
            self.metrics.shard_route_owner.inc();
            vec![shard_of(fact.s, self.shards.len())]
        };
        let mut committed = Vec::new();
        for &i in &targets {
            match self.shards[i].try_insert(s.clone(), r.clone(), t.clone()) {
                Ok(_) => committed.push(i),
                Err(e) => {
                    for &j in &committed {
                        self.shards[j].remove(&fact)?;
                    }
                    return Err(e.into());
                }
            }
        }
        // Journal after the all-shard commit (memory never runs behind a
        // journaled op that later rolls back).
        let triple = (s, r, t);
        for &i in &targets {
            self.journal_inserts(i, std::iter::once(&triple))?;
        }
        self.metrics.shard_publish_ns.record_duration(started.elapsed());
        Ok(fact)
    }

    /// Removes a base fact from every shard holding it (broadcast copies
    /// included — a stale copy must never outlive the real deletion).
    /// Returns whether any shard held it.
    pub fn remove(&self, f: &Fact) -> Result<bool, ShardedError> {
        let _meta = self.route.lock();
        let started = Instant::now();
        self.metrics.shard_route_removals.inc();
        // Journal first, by value, on every shard whose mirror holds it.
        if let Some(journals) = &self.journals {
            let (s, r, t) = self.shards[0].read_writer(|db| {
                let store = db.store();
                (store.value(f.s).clone(), store.value(f.r).clone(), store.value(f.t).clone())
            });
            for j in journals {
                let mut wal = j.wal.lock();
                let mirror_fact = {
                    let mirror = wal.database_ref();
                    match (mirror.lookup(&s), mirror.lookup(&r), mirror.lookup(&t)) {
                        (Some(s), Some(r), Some(t)) => Some(Fact::new(s, r, t)),
                        _ => None,
                    }
                };
                if let Some(mf) = mirror_fact {
                    wal.remove(&mf)?;
                }
            }
        }
        let mut removed = false;
        for shard in &self.shards {
            removed |= shard.remove(f)?;
        }
        self.metrics.shard_publish_ns.record_duration(started.elapsed());
        Ok(removed)
    }

    /// Interns an entity into every shard (no fact is stored), returning
    /// its — everywhere identical — id. Use this to obtain ids for rule
    /// constants before [`ShardedDatabase::add_rule`].
    pub fn entity(&self, value: impl Into<EntityValue>) -> EntityId {
        let value = value.into();
        let _meta = self.route.lock();
        self.intern_everywhere(&value, &value, &value).s
    }

    /// Registers a user rule on every shard. Rules whose body and head do
    /// not all share one source variable degrade the router to full
    /// replication (see the module docs); the rule itself is always
    /// applied everywhere.
    pub fn add_rule(&self, rule: Rule) -> Result<(), ShardedError> {
        let mut meta = self.route.lock();
        let promo = meta.observe_rule(&rule);
        self.apply_promotion(&meta, promo)?;
        for shard in &self.shards {
            shard.write(|db| db.add_rule(rule.clone()))??;
        }
        Ok(())
    }

    /// Declares a relationship as class-kind on every shard.
    pub fn declare_class(&self, rel: impl Into<EntityValue>) -> Result<(), ShardedError> {
        let rel = rel.into();
        let _meta = self.route.lock();
        let fact = self.intern_everywhere(&rel, &rel, &rel);
        for shard in &self.shards {
            shard.write(|db| db.declare_class(fact.s))?;
        }
        Ok(())
    }

    /// Declares a relationship as individual-kind on every shard.
    pub fn declare_individual(&self, rel: impl Into<EntityValue>) -> Result<(), ShardedError> {
        let rel = rel.into();
        let _meta = self.route.lock();
        let fact = self.intern_everywhere(&rel, &rel, &rel);
        for shard in &self.shards {
            shard.write(|db| db.declare_individual(fact.s))?;
        }
        Ok(())
    }

    /// Enables a §3 rule group on every shard.
    pub fn include(&self, group: RuleGroup) -> Result<(), ShardedError> {
        let _meta = self.route.lock();
        for shard in &self.shards {
            shard.write(|db| db.include(group))?;
        }
        Ok(())
    }

    /// Disables a §3 rule group on every shard.
    pub fn exclude(&self, group: RuleGroup) -> Result<(), ShardedError> {
        let _meta = self.route.lock();
        for shard in &self.shards {
            shard.write(|db| db.exclude(group))?;
        }
        Ok(())
    }

    /// Flushes every durable shard's WAL to stable storage.
    pub fn sync(&self) -> Result<(), ShardedError> {
        if let Some(journals) = &self.journals {
            for j in journals {
                j.wal.lock().sync()?;
            }
        }
        Ok(())
    }

    /// Checkpoints every durable shard: snapshot + WAL rotation per
    /// shard directory. No-op (returning 0) when not durable.
    pub fn checkpoint(&self) -> Result<u64, ShardedError> {
        let mut latest = 0;
        if let Some(journals) = &self.journals {
            for j in journals {
                latest = j.wal.lock().checkpoint()?;
            }
        }
        Ok(latest)
    }
}

/// The per-shard WAL directory: `dir/shard-0`, `dir/shard-1`, …
fn shard_dir(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i}"))
}

/// A point-in-time snapshot of every shard's generation: the sharded
/// analogue of one [`Generation`], with merged views of the domain and
/// violations.
pub struct ShardedSnapshot {
    gens: Vec<Arc<Generation>>,
}

impl ShardedSnapshot {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.gens.len()
    }

    /// The per-shard generations, in partition order.
    pub fn generations(&self) -> &[Arc<Generation>] {
        &self.gens
    }

    /// Per-shard epochs, in partition order.
    pub fn epochs(&self) -> Vec<u64> {
        self.gens.iter().map(|g| g.epoch()).collect()
    }

    /// The longest shard interner. The router keeps all shard interners
    /// identical, but the per-shard snapshots are taken without a global
    /// lock, so one may be a prefix of another; the longest is an
    /// extension of every other and resolves every id any shard mentions.
    pub fn interner(&self) -> &Interner {
        self.gens.iter().map(|g| g.interner()).max_by_key(|i| i.len()).expect("at least one shard")
    }

    /// Looks up an entity across the aligned interners.
    pub fn lookup(&self, value: &EntityValue) -> Option<EntityId> {
        self.interner().lookup(value)
    }

    /// Looks up a symbol by name across the aligned interners.
    pub fn lookup_symbol(&self, name: &str) -> Option<EntityId> {
        self.interner().lookup_symbol(name)
    }

    /// Renders an entity for display.
    pub fn display(&self, id: EntityId) -> String {
        self.interner().display(id)
    }

    /// Per-shard retrieval views, all resolving entities through the
    /// longest interner (see [`ShardedSnapshot::interner`]). Feed these
    /// to the query layer's scatter-gather union view or evaluate them
    /// individually on the collocated fast path.
    pub fn views(&self) -> Vec<ClosureView<'_>> {
        let interner = self.interner();
        self.gens.iter().map(|g| g.view_with_interner(interner)).collect()
    }

    /// Per-shard views resolving through a caller-provided extension
    /// interner (the sharded analogue of
    /// [`Generation::view_with_interner`]).
    pub fn views_with_interner<'a>(&'a self, interner: &'a Interner) -> Vec<ClosureView<'a>> {
        self.gens.iter().map(|g| g.view_with_interner(interner)).collect()
    }

    /// Whether a closure fact has an exact (target-lift-free) derivation,
    /// judged by its owner shard — the shard that holds every derivation
    /// of the fact under the broadcast invariant.
    pub fn is_exact(&self, f: &Fact) -> bool {
        self.gens[shard_of(f.s, self.gens.len())].closure().is_exact(f)
    }

    /// The merged active domain: every entity occurring in any shard's
    /// closure, sorted and deduplicated.
    pub fn domain(&self) -> Vec<EntityId> {
        let mut merged: BTreeSet<EntityId> = BTreeSet::new();
        for g in &self.gens {
            merged.extend(g.closure().domain().iter());
        }
        merged.into_iter().collect()
    }

    /// The union of every shard's integrity violations, deduplicated.
    /// Violations' premises always share a source entity, so each global
    /// violation surfaces on (at least) the owner shard, and a broadcast
    /// fact's violation may surface on several — hence the dedup.
    pub fn violations(&self) -> Vec<Violation> {
        let mut merged: Vec<Violation> = Vec::new();
        for g in &self.gens {
            for v in g.closure().violations() {
                if !merged.contains(v) {
                    merged.push(v.clone());
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::FactView;

    fn ids(snap: &ShardedSnapshot, names: &[&str]) -> Vec<EntityId> {
        names.iter().map(|n| snap.lookup_symbol(n).expect(n)).collect()
    }

    /// Union of all shard closures, as display strings (portable across
    /// interners).
    fn union_facts(snap: &ShardedSnapshot) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for g in snap.generations() {
            for f in g.closure().iter() {
                out.insert(format!(
                    "({}, {}, {})",
                    snap.display(f.s),
                    snap.display(f.r),
                    snap.display(f.t)
                ));
            }
        }
        out
    }

    fn single_facts(db: &mut Database) -> BTreeSet<String> {
        db.refresh().unwrap();
        let store_display: Vec<(Fact, String)> = {
            let closure = db.closure().unwrap();
            closure.iter().map(|f| (f, String::new())).collect()
        };
        store_display
            .into_iter()
            .map(|(f, _)| {
                format!(
                    "({}, {}, {})",
                    db.store().display(f.s),
                    db.store().display(f.r),
                    db.store().display(f.t)
                )
            })
            .collect()
    }

    #[test]
    fn interners_stay_aligned_across_shards() {
        let db = ShardedDatabase::new(4).unwrap();
        db.insert("A", "R", "B").unwrap();
        db.insert("C", "R", "D").unwrap();
        db.insert("E", "gen", "F").unwrap();
        let snap = db.snapshot();
        let reference: Vec<(EntityId, EntityValue)> =
            snap.gens[0].interner().iter().map(|(id, v)| (id, v.clone())).collect();
        for g in snap.generations() {
            let this: Vec<(EntityId, EntityValue)> =
                g.interner().iter().map(|(id, v)| (id, v.clone())).collect();
            assert_eq!(this, reference);
        }
    }

    #[test]
    fn structural_facts_are_broadcast() {
        let db = ShardedDatabase::new(3).unwrap();
        db.insert("EMPLOYEE", "gen", "PERSON").unwrap();
        let snap = db.snapshot();
        let [employee, gen, person] = ids(&snap, &["EMPLOYEE", "gen", "PERSON"])[..] else {
            unreachable!()
        };
        for g in snap.generations() {
            assert!(g.closure().contains(&Fact::new(employee, gen, person)));
        }
    }

    #[test]
    fn ordinary_facts_route_to_owner_only() {
        let db = ShardedDatabase::new(4).unwrap();
        db.insert("JOHN", "LIKES", "FELIX").unwrap();
        let snap = db.snapshot();
        let john = snap.lookup_symbol("JOHN").unwrap();
        let holders: Vec<usize> = (0..4).filter(|&i| !snap.gens[i].store().is_empty()).collect();
        assert_eq!(holders, vec![db.shard_of(john)]);
        assert_eq!(db.metrics_snapshot().shard.route_owner, 1);
    }

    #[test]
    fn membership_inference_is_locally_complete() {
        // (JOHN ∈ EMPLOYEE) + (EMPLOYEE EARNS SALARY) ⇒ (JOHN EARNS SALARY)
        // must appear on JOHN's shard even though EMPLOYEE's facts were
        // written "elsewhere" (EMPLOYEE is class-like, so broadcast).
        let db = ShardedDatabase::new(4).unwrap();
        db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
        db.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
        let snap = db.snapshot();
        let [john, earns, salary] = ids(&snap, &["JOHN", "EARNS", "SALARY"])[..] else {
            unreachable!()
        };
        let owner = &snap.views()[db.shard_of(john)];
        assert!(owner.holds(&Fact::new(john, earns, salary)));
    }

    #[test]
    fn promotion_rebroadcasts_existing_facts() {
        // EMPLOYEE's ordinary fact lands on its owner shard first; the
        // later (JOHN ∈ EMPLOYEE) promotes EMPLOYEE to class-like and the
        // existing fact must be re-broadcast so JOHN's shard can infer.
        let db = ShardedDatabase::new(4).unwrap();
        db.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
        db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
        let snap = db.snapshot();
        let [john, earns, salary] = ids(&snap, &["JOHN", "EARNS", "SALARY"])[..] else {
            unreachable!()
        };
        let owner = &snap.views()[db.shard_of(john)];
        assert!(owner.holds(&Fact::new(john, earns, salary)));
        assert!(db.metrics_snapshot().shard.route_rebroadcast >= 1);
    }

    #[test]
    fn inversion_across_shards_via_active_rels() {
        // (JOHN LIKES FELIX) + (LIKES inv LIKED-BY) ⇒ (FELIX LIKED-BY JOHN)
        // on FELIX's shard — LIKES facts must be broadcast once LIKES
        // becomes inv-active, whichever order the facts arrive in.
        for order in [true, false] {
            let db = ShardedDatabase::new(4).unwrap();
            if order {
                db.insert("LIKES", "inv", "LIKED-BY").unwrap();
                db.insert("JOHN", "LIKES", "FELIX").unwrap();
            } else {
                db.insert("JOHN", "LIKES", "FELIX").unwrap();
                db.insert("LIKES", "inv", "LIKED-BY").unwrap();
            }
            let snap = db.snapshot();
            let [john, felix, liked_by] = ids(&snap, &["JOHN", "FELIX", "LIKED-BY"])[..] else {
                unreachable!()
            };
            let owner = &snap.views()[db.shard_of(felix)];
            assert!(
                owner.holds(&Fact::new(felix, liked_by, john)),
                "inversion missing on target's shard (order={order})"
            );
        }
    }

    #[test]
    fn union_of_shard_closures_equals_single_store_closure() {
        let build = |db: &mut Database| {
            db.add("EMPLOYEE", "gen", "PERSON");
            db.add("JOHN", "isa", "EMPLOYEE");
            db.add("MARY", "isa", "EMPLOYEE");
            db.add("EMPLOYEE", "EARNS", "SALARY");
            db.add("LIKES", "inv", "LIKED-BY");
            db.add("JOHN", "LIKES", "FELIX");
            db.add("PERSON", "OWNS", "STUFF");
        };
        let mut single = Database::new();
        build(&mut single);
        let expected = single_facts(&mut single);
        for n in [1, 2, 4] {
            let db = ShardedDatabase::new(n).unwrap();
            db.insert("EMPLOYEE", "gen", "PERSON").unwrap();
            db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
            db.insert("MARY", "isa", "EMPLOYEE").unwrap();
            db.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
            db.insert("LIKES", "inv", "LIKED-BY").unwrap();
            db.insert("JOHN", "LIKES", "FELIX").unwrap();
            db.insert("PERSON", "OWNS", "STUFF").unwrap();
            assert_eq!(union_facts(&db.snapshot()), expected, "n={n}");
        }
    }

    #[test]
    fn removal_fans_out_to_broadcast_copies() {
        let db = ShardedDatabase::new(4).unwrap();
        db.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
        db.insert("JOHN", "isa", "EMPLOYEE").unwrap(); // promotes + rebroadcasts
        let snap = db.snapshot();
        let [employee, earns, salary] = ids(&snap, &["EMPLOYEE", "EARNS", "SALARY"])[..] else {
            unreachable!()
        };
        assert!(db.remove(&Fact::new(employee, earns, salary)).unwrap());
        let snap = db.snapshot();
        for g in snap.generations() {
            assert!(!g.store().contains(&Fact::new(employee, earns, salary)));
            assert!(!g.closure().contains(&Fact::new(employee, earns, salary)));
        }
    }

    #[test]
    fn from_store_matches_routed_inserts() {
        let mut store = FactStore::new();
        store.add("EMPLOYEE", "gen", "PERSON");
        store.add("JOHN", "isa", "EMPLOYEE");
        store.add("EMPLOYEE", "EARNS", "SALARY");
        store.add("JOHN", "LIKES", "FELIX");
        let bulk = ShardedDatabase::from_store(3, &store).unwrap();

        let routed = ShardedDatabase::new(3).unwrap();
        routed.insert("EMPLOYEE", "gen", "PERSON").unwrap();
        routed.insert("JOHN", "isa", "EMPLOYEE").unwrap();
        routed.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
        routed.insert("JOHN", "LIKES", "FELIX").unwrap();

        assert_eq!(union_facts(&bulk.snapshot()), union_facts(&routed.snapshot()));
        // Same per-shard base placement, too.
        for i in 0..3 {
            assert_eq!(
                bulk.snapshot().generations()[i].store().len(),
                routed.snapshot().generations()[i].store().len(),
                "shard {i} placement differs"
            );
        }
    }

    #[test]
    fn collocated_user_rule_keeps_partitioning() {
        let db = ShardedDatabase::new(4).unwrap();
        let employee = db.entity("EMPLOYEE");
        let status = db.entity("STATUS");
        let paid = db.entity("PAID");
        let mut b = Rule::builder("well-paid");
        let x = b.var("x");
        let rule = b.when(x, special::ISA, employee).then(x, status, paid).build().unwrap();
        db.insert("RICH", "WANTS", "MORE").unwrap();
        db.add_rule(rule).unwrap();
        db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
        let snap = db.snapshot();
        let john = snap.lookup_symbol("JOHN").unwrap();
        let owner = &snap.views()[db.shard_of(john)];
        assert!(owner.holds(&Fact::new(john, status, paid)));
        // The ordinary RICH fact stayed owner-routed: no broadcast_all.
        let rich = snap.lookup_symbol("RICH").unwrap();
        let holders: usize = (0..4)
            .filter(|&i| {
                snap.generations()[i].store().matching(Pattern::from_source(rich)).next().is_some()
            })
            .count();
        assert_eq!(holders, 1, "collocated rule must not degrade to replication");
    }

    #[test]
    fn non_collocated_user_rule_degrades_to_replication() {
        let db = ShardedDatabase::new(4).unwrap();
        let knows = db.entity("KNOWS");
        let reaches = db.entity("REACHES");
        let mut b = Rule::builder("friends-of-friends");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        let rule = b.when(x, knows, y).when(y, knows, z).then(x, reaches, z).build().unwrap();
        db.insert("A", "KNOWS", "B").unwrap();
        db.add_rule(rule).unwrap();
        db.insert("B", "KNOWS", "C").unwrap();
        let snap = db.snapshot();
        let a = snap.lookup_symbol("A").unwrap();
        let c = snap.lookup_symbol("C").unwrap();
        let owner = &snap.views()[db.shard_of(a)];
        assert!(owner.holds(&Fact::new(a, reaches, c)));
        // Everything is everywhere now.
        for g in snap.generations() {
            assert!(g.store().len() >= 2);
        }
    }

    #[test]
    fn try_insert_rejects_atomically_across_shards() {
        let db = ShardedDatabase::new(3).unwrap();
        db.insert("LOVES", "contra", "HATES").unwrap();
        db.insert("JOHN", "LOVES", "MARY").unwrap();
        let before: Vec<u64> = db.epochs();
        assert!(matches!(
            db.try_insert("JOHN", "HATES", "MARY"),
            Err(ShardedError::Transaction(_))
        ));
        assert_eq!(db.epochs(), before, "rejected transaction must publish nothing");
        db.try_insert("JOHN", "LOVES", "SUE").unwrap();
        let snap = db.snapshot();
        let john = snap.lookup_symbol("JOHN").unwrap();
        let loves = snap.lookup_symbol("LOVES").unwrap();
        let sue = snap.lookup_symbol("SUE").unwrap();
        assert!(snap.views()[db.shard_of(john)].holds(&Fact::new(john, loves, sue)));
    }

    #[test]
    fn violations_merge_and_dedup() {
        let db = ShardedDatabase::new(3).unwrap();
        db.insert("LOVES", "contra", "HATES").unwrap();
        db.insert("JOHN", "LOVES", "MARY").unwrap();
        db.insert("JOHN", "HATES", "MARY").unwrap();
        let sharded = db.snapshot().violations();

        let mut single = Database::new();
        single.add("LOVES", "contra", "HATES");
        single.add("JOHN", "LOVES", "MARY");
        single.add("JOHN", "HATES", "MARY");
        let expected = single.validate().unwrap().len();
        assert_eq!(sharded.len(), expected);
    }

    #[test]
    fn merged_delta_ring_is_precise_across_shards() {
        let db = ShardedDatabase::new(2).unwrap();
        let floor = db.epochs();
        db.insert("A", "R1", "B").unwrap();
        db.insert("C", "R2", "D").unwrap();
        let now = db.epochs();
        let snap = db.snapshot();
        let rels = db.rels_changed_between(&floor, &now).expect("precise");
        assert!(rels.contains(&snap.lookup_symbol("R1").unwrap()));
        assert!(rels.contains(&snap.lookup_symbol("R2").unwrap()));
    }

    #[test]
    fn durable_shards_recover_after_reopen() {
        let dir = std::env::temp_dir().join(format!("loosedb-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = ShardedDatabase::open_durable(&dir, 3, SyncPolicy::Always).unwrap();
            db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
            db.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
            db.insert("JOHN", "LIKES", "FELIX").unwrap();
            let john = db.snapshot().lookup_symbol("JOHN").unwrap();
            db.remove(&Fact::new(
                john,
                db.snapshot().lookup_symbol("LIKES").unwrap(),
                db.snapshot().lookup_symbol("FELIX").unwrap(),
            ))
            .unwrap();
            db.sync().unwrap();
        }
        let db = ShardedDatabase::open_durable(&dir, 3, SyncPolicy::Always).unwrap();
        let snap = db.snapshot();
        let [john, earns, salary] = ids(&snap, &["JOHN", "EARNS", "SALARY"])[..] else {
            unreachable!()
        };
        assert!(snap.views()[db.shard_of(john)].holds(&Fact::new(john, earns, salary)));
        assert!(
            snap.lookup_symbol("FELIX").is_none() || {
                let felix = snap.lookup_symbol("FELIX").unwrap();
                let likes = snap.lookup_symbol("LIKES").unwrap();
                !snap.views()[db.shard_of(john)].holds(&Fact::new(john, likes, felix))
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
