//! The retrieval view over a closure: materialized facts plus the virtual
//! families answered at match time.
//!
//! Template retrieval (§2.7) is defined against the *closure*, which
//! conceptually contains three families the engine deliberately never
//! materializes:
//!
//! 1. **Mathematical facts** (§3.6) — answered by [`crate::mathrel`].
//! 2. **Reflexive/bounded generalizations** (§2.3) — `(E, ≺, E)`,
//!    `(E, ≺, Δ)`, `(∇, ≺, E)`.
//! 3. **`Δ`/`∇` projections of ordinary facts** — by rule G2 every fact
//!    with an individual relationship implies `(s, Δ, t)`; by G3 it
//!    implies `(s, r, Δ)`; by G1 it implies `(∇, r, t)`. This is what
//!    makes the probing retraction `(z, Δ, FREE)` of §5.2 mean "related
//!    to FREE in *any* way".
//!
//! [`ClosureView`] merges all three into the pattern-matching contract:
//! every fact returned for a pattern *matches the pattern as written*.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use loosedb_store::{special, EntityId, Fact, Interner, Pattern};

use crate::closure::Closure;
use crate::kind::KindRegistry;
use crate::mathrel::{self, MathMatchError, MathTruth};

/// Read access to the virtual closure: what queries evaluate against.
///
/// The trait exists so the query evaluator (crate `loosedb-query`) can run
/// against any provider — the real [`ClosureView`], or test doubles.
///
/// `Sync` is a supertrait: the evaluator's partitioned hash joins probe
/// one view concurrently from the shared worker pool
/// ([`crate::pool::run_scoped`]), so every provider must be shareable
/// across threads.
pub trait FactView: Sync {
    /// The entity interner.
    fn interner(&self) -> &Interner;

    /// All facts of the (virtual) closure matching a pattern.
    ///
    /// Errors only for unenumerable mathematical patterns
    /// (`(x, ≠, y)` with both sides free).
    fn matches(&self, pattern: Pattern) -> Result<Vec<Fact>, MathMatchError>;

    /// Membership test against the (virtual) closure.
    fn holds(&self, fact: &Fact) -> bool;

    /// Cheap upper-bound-ish selectivity estimate for planning: the number
    /// of *stored* matches, capped at `cap` (virtual families excluded).
    fn count_estimate(&self, pattern: Pattern, cap: usize) -> usize;

    /// The active domain: every entity occurring in the closure, in id
    /// order. Used for the universal quantifier (§2.7) and for rendering.
    fn domain(&self) -> &[EntityId];

    /// How many [`FactView::count_estimate`] probes have been issued
    /// through this view so far. Planning instrumentation: the query
    /// planner's selectivity probes all flow through `count_estimate`, so
    /// this counter lets callers (and the E18 experiment) verify that a
    /// cached plan is replayed without re-probing. Views that do not
    /// track probes report 0.
    fn count_probes(&self) -> u64 {
        0
    }

    /// Number of distinct entities in the active domain, when cheaply
    /// known (`0` = unknown). A cost-model input for the adaptive
    /// planner: it caps the estimated size of deduplicated join
    /// frontiers. Never issues probes and never materializes the
    /// domain; [`ClosureView`] answers it O(1) from the closure's
    /// incremental occurrence counts.
    fn domain_size(&self) -> usize {
        0
    }
}

/// Computes the active domain of a closure by rescanning every fact:
/// every entity occurring in it, sorted and deduplicated. O(closure).
///
/// Retrieval no longer uses this — the closure maintains its domain
/// incrementally ([`Closure::domain`]) so publishing a generation never
/// rescans — but it stays as the reference implementation the property
/// tests compare the incremental counts against.
pub fn compute_domain(closure: &Closure) -> Vec<EntityId> {
    let mut domain: BTreeSet<EntityId> = BTreeSet::new();
    for f in closure.iter() {
        domain.insert(f.s);
        domain.insert(f.r);
        domain.insert(f.t);
    }
    domain.into_iter().collect()
}

/// The standard [`FactView`] over a computed [`Closure`].
pub struct ClosureView<'a> {
    closure: &'a Closure,
    interner: &'a Interner,
    kinds: &'a KindRegistry,
    /// Sorted active domain, materialized from the closure's incremental
    /// occurrence counts the first time a universal quantifier (or
    /// disjunction padding) asks for it. Most queries never do, so view
    /// construction is O(1). `OnceLock` (not `OnceCell`): the view is
    /// probed concurrently by partitioned parallel joins.
    domain: OnceLock<Vec<EntityId>>,
    /// Selectivity probes issued through [`FactView::count_estimate`].
    /// Atomic (not `Cell`) so views can keep being shared across reader
    /// threads; ordering is relaxed — it is a statistics counter.
    probes: AtomicU64,
    /// Optional registry-wide probe counter (`query.count_probes`); the
    /// per-view `probes` field keeps the per-plan counts exact while
    /// this handle aggregates across all views of a database.
    registry_probes: Option<loosedb_obs::Counter>,
}

impl<'a> ClosureView<'a> {
    /// Builds a view. O(1): the active domain is maintained incrementally
    /// by the closure and only materialized on first use.
    pub fn new(closure: &'a Closure, interner: &'a Interner, kinds: &'a KindRegistry) -> Self {
        ClosureView {
            closure,
            interner,
            kinds,
            domain: OnceLock::new(),
            probes: AtomicU64::new(0),
            registry_probes: None,
        }
    }

    /// Additionally reports every selectivity probe to `counter`
    /// (the shared `query.count_probes` registry metric).
    pub fn with_probe_counter(mut self, counter: loosedb_obs::Counter) -> Self {
        self.registry_probes = Some(counter);
        self
    }

    /// The underlying closure.
    pub fn closure(&self) -> &Closure {
        self.closure
    }

    /// The kind registry.
    pub fn kinds(&self) -> &KindRegistry {
        self.kinds
    }

    /// True if facts with relationship `r` project to the `Δ`/`∇` virtual
    /// forms: the §3 rules flow individual relationships and membership.
    fn projectable(&self, r: EntityId) -> bool {
        self.kinds.is_individual(r) || r == special::ISA
    }

    /// Matching for patterns whose relationship is (or may be) `≺`.
    fn match_gen(&self, p: Pattern, out: &mut BTreeSet<Fact>) {
        // Stored generalization facts.
        out.extend(self.closure.matching(p));
        // Virtual: reflexive and hierarchy bounds. Enumerated only when at
        // least one side is bound; the fully free template (x, ≺, y)
        // returns explicit generalizations only (documented deviation —
        // listing (E, ≺, E) for every entity would bury navigation).
        match (p.s, p.t) {
            (Some(s), Some(t)) => {
                if s == t || t == special::TOP || s == special::BOT {
                    out.insert(Fact::new(s, special::GEN, t));
                }
            }
            (Some(s), None) => {
                out.insert(Fact::new(s, special::GEN, s));
                out.insert(Fact::new(s, special::GEN, special::TOP));
            }
            (None, Some(t)) => {
                out.insert(Fact::new(t, special::GEN, t));
                out.insert(Fact::new(special::BOT, special::GEN, t));
            }
            (None, None) => {}
        }
    }
}

impl FactView for ClosureView<'_> {
    fn interner(&self) -> &Interner {
        self.interner
    }

    fn matches(&self, p: Pattern) -> Result<Vec<Fact>, MathMatchError> {
        // Mathematical relationship: fully virtual.
        if let Some(r) = p.r {
            if special::is_math(r) {
                return mathrel::matches(self.interner, p);
            }
        }

        let mut out: BTreeSet<Fact> = BTreeSet::new();

        match p.r {
            Some(special::GEN) => self.match_gen(p, &mut out),
            Some(special::SYN) => {
                out.extend(self.closure.matching(p));
                // Virtual reflexive synonymy (mutual reflexive ≺, §3.3),
                // enumerated when a side is bound.
                match (p.s, p.t) {
                    (Some(s), Some(t)) if s == t => {
                        out.insert(Fact::new(s, special::SYN, t));
                    }
                    (Some(s), None) => {
                        out.insert(Fact::new(s, special::SYN, s));
                    }
                    (None, Some(t)) => {
                        out.insert(Fact::new(t, special::SYN, t));
                    }
                    _ => {}
                }
            }
            Some(special::TOP) => {
                // (s, Δ, t): implied by any projectable fact on (s, t);
                // composes with the ∇-source and Δ-target rewrites.
                let s_rw = if p.s == Some(special::BOT) { None } else { p.s };
                let t_rw = if p.t == Some(special::TOP) { None } else { p.t };
                for w in self.closure.matching(Pattern::new(s_rw, None, t_rw)) {
                    if self.projectable(w.r) {
                        let s = if p.s == Some(special::BOT) { special::BOT } else { w.s };
                        let t = if p.t == Some(special::TOP) { special::TOP } else { w.t };
                        out.insert(Fact::new(s, special::TOP, t));
                    }
                }
            }
            _ => {
                // Ordinary (or unbound) relationship, with Δ/∇ projections
                // in the source/target positions.
                let s_rewritten = if p.s == Some(special::BOT) { None } else { p.s };
                let t_rewritten = if p.t == Some(special::TOP) { None } else { p.t };
                let base = Pattern::new(s_rewritten, p.r, t_rewritten);
                let project = s_rewritten != p.s || t_rewritten != p.t;
                for w in self.closure.matching(base) {
                    if project {
                        if !self.projectable(w.r) {
                            continue;
                        }
                        let s = if p.s == Some(special::BOT) { special::BOT } else { w.s };
                        let t = if p.t == Some(special::TOP) { special::TOP } else { w.t };
                        out.insert(Fact::new(s, w.r, t));
                    } else {
                        out.insert(w);
                    }
                }
                // An unbound relationship position also matches the
                // virtual reflexive ≺ facts when both endpoints coincide
                // — kept out deliberately (see match_gen); but it must
                // still see stored ≺ facts, which the base scan included.
            }
        }
        Ok(out.into_iter().collect())
    }

    fn holds(&self, fact: &Fact) -> bool {
        if special::is_math(fact.r) {
            return mathrel::eval(self.interner, fact) == Some(MathTruth::True);
        }
        if self.closure.contains(fact) {
            return true;
        }
        // Virtual generalization facts, and reflexive synonymy.
        if fact.r == special::GEN
            && (fact.s == fact.t || fact.t == special::TOP || fact.s == special::BOT)
        {
            return true;
        }
        if fact.r == special::SYN && fact.s == fact.t {
            return true;
        }
        // Δ/∇ projections.
        let needs_projection =
            fact.r == special::TOP || fact.t == special::TOP || fact.s == special::BOT;
        if needs_projection {
            let s = (fact.s != special::BOT).then_some(fact.s);
            let r = (fact.r != special::TOP).then_some(fact.r);
            let t = (fact.t != special::TOP).then_some(fact.t);
            return self.closure.matching(Pattern::new(s, r, t)).any(|w| self.projectable(w.r));
        }
        false
    }

    fn count_estimate(&self, p: Pattern, cap: usize) -> usize {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = &self.registry_probes {
            counter.inc();
        }
        self.closure.count_up_to(p, cap)
    }

    fn domain(&self) -> &[EntityId] {
        self.domain.get_or_init(|| self.closure.domain().to_vec())
    }

    fn count_probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    fn domain_size(&self) -> usize {
        // O(1): the closure maintains per-entity occurrence counts
        // incrementally; their cardinality is the active-domain size.
        self.closure.domain().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::{compute, Strategy};
    use crate::config::InferenceConfig;
    use crate::rule::RuleSet;
    use loosedb_store::FactStore;

    struct Fixture {
        store: FactStore,
        kinds: KindRegistry,
        closure: Closure,
    }

    impl Fixture {
        fn new(build: impl FnOnce(&mut FactStore, &mut KindRegistry)) -> Self {
            let mut store = FactStore::new();
            let mut kinds = KindRegistry::new();
            build(&mut store, &mut kinds);
            let closure = compute(
                &mut store,
                &kinds,
                &RuleSet::new(),
                &InferenceConfig::default(),
                Strategy::SemiNaive,
            )
            .unwrap();
            Fixture { store, kinds, closure }
        }

        fn view(&self) -> ClosureView<'_> {
            ClosureView::new(&self.closure, self.store.interner(), &self.kinds)
        }

        fn id(&self, name: &str) -> EntityId {
            self.store.lookup_symbol(name).unwrap()
        }
    }

    #[test]
    fn stored_facts_match() {
        let fx = Fixture::new(|s, _| {
            s.add("JOHN", "LIKES", "FELIX");
        });
        let v = fx.view();
        let john = fx.id("JOHN");
        let got = v.matches(Pattern::from_source(john)).unwrap();
        assert_eq!(got.len(), 1);
        assert!(v.holds(&got[0]));
    }

    #[test]
    fn math_patterns_are_virtual() {
        let fx = Fixture::new(|s, _| {
            s.add("JOHN", "EARNS", 25000i64);
            s.entity(20000i64);
        });
        let v = fx.view();
        let n25000 = fx.store.lookup(&25000i64.into()).unwrap();
        let n20000 = fx.store.lookup(&20000i64.into()).unwrap();
        assert!(v.holds(&Fact::new(n25000, special::GT, n20000)));
        let gt: Vec<Fact> = v.matches(Pattern::new(None, Some(special::GT), Some(n20000))).unwrap();
        assert_eq!(gt, vec![Fact::new(n25000, special::GT, n20000)]);
    }

    #[test]
    fn delta_relationship_is_any_association() {
        // §5.2: (z, Δ, FREE) retrieves "the things ... related to FREE".
        let fx = Fixture::new(|s, _| {
            s.add("SONG", "COSTS", "FREE");
            s.add("AIR", "IS", "FREE");
            s.add("FREE", "gen", "CHEAP");
        });
        let v = fx.view();
        let free = fx.id("FREE");
        let got = v.matches(Pattern::new(None, Some(special::TOP), Some(free))).unwrap();
        let sources: BTreeSet<EntityId> = got.iter().map(|f| f.s).collect();
        assert_eq!(sources, [fx.id("SONG"), fx.id("AIR")].into_iter().collect());
        assert!(got.iter().all(|f| f.r == special::TOP && f.t == free));
        assert!(v.holds(&Fact::new(fx.id("SONG"), special::TOP, free)));
    }

    #[test]
    fn delta_target_is_wildcard_target() {
        let fx = Fixture::new(|s, _| {
            s.add("JOHN", "LOVES", "OPERA");
            s.add("JOHN", "LOVES", "MOZART");
        });
        let v = fx.view();
        let john = fx.id("JOHN");
        let loves = fx.id("LOVES");
        let got = v.matches(Pattern::new(Some(john), Some(loves), Some(special::TOP))).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], Fact::new(john, loves, special::TOP));
        assert!(v.holds(&got[0]));
    }

    #[test]
    fn bot_source_is_wildcard_source() {
        let fx = Fixture::new(|s, _| {
            s.add("STUDENT", "LOVE", "MUSIC");
        });
        let v = fx.view();
        let love = fx.id("LOVE");
        let music = fx.id("MUSIC");
        let got = v.matches(Pattern::new(Some(special::BOT), Some(love), Some(music))).unwrap();
        assert_eq!(got, vec![Fact::new(special::BOT, love, music)]);
        assert!(v.holds(&got[0]));
    }

    #[test]
    fn class_relationships_do_not_project() {
        let fx = Fixture::new(|s, k| {
            let total = s.entity("TOTAL-NUMBER");
            k.declare_class(total);
            s.add("EMPLOYEE", "TOTAL-NUMBER", "N180");
        });
        let v = fx.view();
        let employee = fx.id("EMPLOYEE");
        let n180 = fx.id("N180");
        // Class facts do not imply (s, Δ, t).
        assert!(!v.holds(&Fact::new(employee, special::TOP, n180)));
        let got = v.matches(Pattern::new(Some(employee), Some(special::TOP), None)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn virtual_gen_facts_hold_and_enumerate() {
        let fx = Fixture::new(|s, _| {
            s.add("EMPLOYEE", "gen", "PERSON");
        });
        let v = fx.view();
        let employee = fx.id("EMPLOYEE");
        let person = fx.id("PERSON");
        assert!(v.holds(&Fact::new(employee, special::GEN, employee)));
        assert!(v.holds(&Fact::new(employee, special::GEN, special::TOP)));
        assert!(v.holds(&Fact::new(special::BOT, special::GEN, person)));
        assert!(!v.holds(&Fact::new(person, special::GEN, employee)));

        // (EMPLOYEE, ≺, y): stored parent + reflexive + Δ.
        let got = v.matches(Pattern::new(Some(employee), Some(special::GEN), None)).unwrap();
        let targets: BTreeSet<EntityId> = got.iter().map(|f| f.t).collect();
        assert_eq!(targets, [person, employee, special::TOP].into_iter().collect());
    }

    #[test]
    fn fully_free_gen_template_lists_stored_only() {
        let fx = Fixture::new(|s, _| {
            s.add("EMPLOYEE", "gen", "PERSON");
            s.add("JOHN", "LIKES", "FELIX");
        });
        let v = fx.view();
        let got = v.matches(Pattern::from_rel(special::GEN)).unwrap();
        assert_eq!(got.len(), 1); // only the explicit generalization
    }

    #[test]
    fn domain_is_sorted_distinct_closure_entities() {
        let fx = Fixture::new(|s, _| {
            s.add("A", "R", "B");
            s.add("B", "R", "C");
        });
        let v = fx.view();
        let domain = v.domain();
        assert!(domain.windows(2).all(|w| w[0] < w[1]));
        assert!(domain.contains(&fx.id("A")));
        assert!(domain.contains(&fx.id("R")));
        assert!(domain.contains(&fx.id("C")));
        // Interned but unused entities are not in the domain.
        assert!(!domain.contains(&special::CONTRA));
    }

    #[test]
    fn returned_facts_always_match_the_pattern() {
        let fx = Fixture::new(|s, _| {
            s.add("JOHN", "LOVES", "OPERA");
            s.add("OPERA", "gen", "MUSIC");
            s.add("JOHN", "isa", "PERSON");
        });
        let v = fx.view();
        let patterns = [
            Pattern::ANY,
            Pattern::from_source(fx.id("JOHN")),
            Pattern::new(Some(fx.id("JOHN")), Some(special::TOP), None),
            Pattern::new(None, Some(fx.id("LOVES")), Some(special::TOP)),
            Pattern::new(Some(special::BOT), Some(fx.id("LOVES")), None),
            Pattern::new(Some(fx.id("OPERA")), Some(special::GEN), None),
        ];
        for p in patterns {
            for f in v.matches(p).unwrap() {
                assert!(p.matches(&f), "pattern {p} returned non-matching {f}");
                assert!(v.holds(&f), "pattern {p} returned fact {f} that does not hold");
            }
        }
    }
}
