//! Goal-directed proving: is a single fact in the closure, *without*
//! materializing the closure?
//!
//! The paper leaves "performance" as an open problem (§6.2). Forward
//! chaining pays the whole closure up front; for a cold single-fact check
//! ("is (JOHN, EARNS, SALARY) true?") that is wasteful. [`Prover`]
//! answers membership under the **structural rules of §3** — generalization
//! (G1–G3), membership (M1–M2, upward closure), synonyms, inversion and
//! the virtual mathematical/hierarchy facts — by reachability analysis
//! over the *base* facts:
//!
//! * a goal's **source** may be lifted *down* from a base fact's source
//!   through any upward `≺`/`∈` chain (rules G1/M1 chain freely);
//! * a goal's **relationship** may be lifted *up* from a base
//!   relationship through individual `≺` steps (rule G2) or swapped
//!   within a synonym class;
//! * a goal's **target** may be lifted *up* through `≺`/`∈` chains
//!   (rules G3/M2);
//! * one **inversion** may be applied (per §3.4, with the engine's
//!   existential-lift guard mirrored: the inverted premise's target must
//!   be exact up to synonyms).
//!
//! Scope (documented, also enforced by the equivalence property test):
//!
//! * user rules and composition are **not** covered — the prover answers
//!   membership in the §3 *structural* closure;
//! * the §3 groups must all be **enabled** (the default configuration):
//!   with groups selectively disabled, the reachability decomposition
//!   below no longer matches the fixpoint (e.g. `MemberUp` grants
//!   `∈`-chains transitive use of `≺` edges even when generalization is
//!   off), so [`Prover::new`] rejects partial configurations;
//! * inversion chains of any length are handled in closed form: a small
//!   automaton over (relationship, flip-parity) states tracks how many
//!   times the goal has been flipped relative to a base fact, and the
//!   positional conditions depend only on the parity — during each of its
//!   *source* phases a side may move down (G1/M1), during *target*
//!   phases it is frozen (flipping a target-lifted fact would
//!   universalize an existential; see `closure.rs`'s `lift_free`), and
//!   the final stretch after the last flip may lift the target up
//!   (G3/M2).

use std::collections::BTreeSet;

use loosedb_store::{special, EntityId, Fact, FactStore, Pattern};

use crate::config::InferenceConfig;
use crate::kind::KindRegistry;
use crate::mathrel::{self, MathTruth};

/// A goal-directed prover over base facts (see module docs).
///
/// ```
/// use loosedb_engine::{InferenceConfig, KindRegistry, Prover};
/// use loosedb_store::{Fact, FactStore};
///
/// let mut store = FactStore::new();
/// store.add("JOHN", "isa", "EMPLOYEE");
/// store.add("EMPLOYEE", "EARNS", "SALARY");
///
/// let kinds = KindRegistry::new();
/// let config = InferenceConfig::default();
/// let prover = Prover::new(&store, &kinds, &config);
///
/// // Membership inference (M1), proven without computing the closure.
/// let goal = Fact::new(
///     store.lookup_symbol("JOHN").unwrap(),
///     store.lookup_symbol("EARNS").unwrap(),
///     store.lookup_symbol("SALARY").unwrap(),
/// );
/// assert!(prover.prove(&goal));
/// ```
pub struct Prover<'a> {
    store: &'a FactStore,
    kinds: &'a KindRegistry,
}

impl<'a> Prover<'a> {
    /// Creates a prover over a store with the given kinds.
    ///
    /// # Panics
    /// Panics unless all four structural rule groups (generalization,
    /// membership, synonym, inversion) are enabled — the reachability
    /// decomposition is only sound for the full §3 rule set (see module
    /// docs).
    pub fn new(store: &'a FactStore, kinds: &'a KindRegistry, config: &'a InferenceConfig) -> Self {
        assert!(
            config.generalization && config.membership && config.synonym && config.inversion,
            "Prover requires all structural rule groups enabled"
        );
        Prover { store, kinds }
    }

    /// True if the goal is in the §3 structural closure of the base
    /// facts (including the virtual mathematical and hierarchy facts).
    pub fn prove(&self, goal: &Fact) -> bool {
        // Anything stored is in the closure, whatever its shape.
        if self.store.contains(goal) {
            return true;
        }
        // Virtual families.
        if special::is_math(goal.r) {
            return mathrel::eval(self.store.interner(), goal) == Some(MathTruth::True);
        }
        if goal.r == special::GEN {
            return self.prove_gen(goal.s, goal.t);
        }
        if goal.r == special::SYN {
            // Reflexive for every entity (mutual reflexive ≺, §3.3).
            return goal.s == goal.t || self.mutual_gen(goal.s, goal.t);
        }
        if goal.r == special::ISA {
            return self.prove_isa(goal.s, goal.t);
        }
        if goal.r == special::INV || goal.r == special::CONTRA {
            return self.prove_meta_pair(goal);
        }
        self.prove_ordinary(goal)
    }

    // ------------------------------------------------------------------
    // Reachability primitives over base facts
    // ------------------------------------------------------------------

    /// Upward reachability from `x` through `≺` and `≈` (both
    /// directions). Includes `x` itself.
    fn gen_up(&self, x: EntityId) -> BTreeSet<EntityId> {
        self.bfs(x, |node, out| {
            for f in self.store.matching(Pattern::new(Some(node), Some(special::GEN), None)) {
                out.push(f.t);
            }
            for f in self.store.matching(Pattern::new(Some(node), Some(special::SYN), None)) {
                out.push(f.t);
            }
            for f in self.store.matching(Pattern::new(None, Some(special::SYN), Some(node))) {
                out.push(f.s);
            }
        })
    }

    /// Upward reachability through the *mixed* graph `≺ ∪ ∈` (plus
    /// synonyms), the chains rules G1/G3/M1/M2 build. Includes `x`.
    fn mixed_up(&self, x: EntityId) -> BTreeSet<EntityId> {
        self.bfs(x, |node, out| {
            for f in self.store.matching(Pattern::new(Some(node), Some(special::GEN), None)) {
                out.push(f.t);
            }
            for f in self.store.matching(Pattern::new(Some(node), Some(special::ISA), None)) {
                out.push(f.t);
            }
            for f in self.store.matching(Pattern::new(Some(node), Some(special::SYN), None)) {
                out.push(f.t);
            }
            for f in self.store.matching(Pattern::new(None, Some(special::SYN), Some(node))) {
                out.push(f.s);
            }
        })
    }

    /// Downward version of [`mixed_up`](Self::mixed_up): everything that
    /// reaches `x` going up. Includes `x`.
    fn mixed_down(&self, x: EntityId) -> BTreeSet<EntityId> {
        self.bfs(x, |node, out| {
            for f in self.store.matching(Pattern::new(None, Some(special::GEN), Some(node))) {
                out.push(f.s);
            }
            for f in self.store.matching(Pattern::new(None, Some(special::ISA), Some(node))) {
                out.push(f.s);
            }
            for f in self.store.matching(Pattern::new(Some(node), Some(special::SYN), None)) {
                out.push(f.t);
            }
            for f in self.store.matching(Pattern::new(None, Some(special::SYN), Some(node))) {
                out.push(f.s);
            }
        })
    }

    /// The synonym class of `x`: entities identified with `x` by `≈`
    /// facts or `≺`-cycles. Includes `x`.
    fn syn_class(&self, x: EntityId) -> BTreeSet<EntityId> {
        // Mutual upward gen-reachability.
        let ups = self.gen_up(x);
        ups.into_iter().filter(|&y| y == x || self.gen_up(y).contains(&x)).collect()
    }

    fn bfs(
        &self,
        start: EntityId,
        expand: impl Fn(EntityId, &mut Vec<EntityId>),
    ) -> BTreeSet<EntityId> {
        let mut seen: BTreeSet<EntityId> = [start].into_iter().collect();
        let mut frontier = vec![start];
        let mut scratch = Vec::new();
        while let Some(node) = frontier.pop() {
            scratch.clear();
            expand(node, &mut scratch);
            for &next in &scratch {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }

    // ------------------------------------------------------------------
    // Per-relationship goal kinds
    // ------------------------------------------------------------------

    /// `(s, ≺, t)`: virtual reflexivity/bounds, or upward reachability.
    fn prove_gen(&self, s: EntityId, t: EntityId) -> bool {
        if s == t || t == special::TOP || s == special::BOT {
            return true;
        }
        self.gen_up(s).contains(&t)
    }

    fn mutual_gen(&self, a: EntityId, b: EntityId) -> bool {
        self.gen_up(a).contains(&b) && self.gen_up(b).contains(&a)
    }

    /// `(s, ∈, T)`: a base membership whose class reaches `T` upward
    /// through `≺` (MemberUp), with synonym slack on the instance side.
    fn prove_isa(&self, s: EntityId, t: EntityId) -> bool {
        for s0 in self.syn_class(s) {
            for f in self.store.matching(Pattern::new(Some(s0), Some(special::ISA), None)) {
                if t == special::TOP || self.gen_up(f.t).contains(&t) {
                    return true;
                }
            }
        }
        false
    }

    /// `(a, ⁺, b)` / `(a, ⊥, b)`: base facts up to synonym substitution;
    /// `⁺` additionally comes in symmetric pairs (§3.4).
    fn prove_meta_pair(&self, goal: &Fact) -> bool {
        let (a_class, b_class) = (self.syn_class(goal.s), self.syn_class(goal.t));
        for f in self.store.matching(Pattern::from_rel(goal.r)) {
            if a_class.contains(&f.s) && b_class.contains(&f.t) {
                return true;
            }
            if goal.r == special::INV && a_class.contains(&f.t) && b_class.contains(&f.s) {
                return true;
            }
        }
        false
    }

    /// Source condition: `goal_s` can stand where `base_s` stood —
    /// `goal_s` reaches `base_s` upward (G1/M1 lower the source), or is a
    /// synonym, or is the virtual `∇`.
    fn src_ok(&self, goal_s: EntityId, base_s: EntityId, lifts: bool) -> bool {
        if goal_s == base_s || goal_s == special::BOT {
            return true;
        }
        if lifts {
            self.mixed_up(goal_s).contains(&base_s)
        } else {
            self.syn_class(goal_s).contains(&base_s)
        }
    }

    /// Target condition: `base_t` can be lifted to `goal_t` — upward
    /// through `≺`/`∈` (G3/M2), or a synonym, or the virtual `Δ`; with
    /// `exact`, only synonym slack (the inversion premise guard).
    fn tgt_ok(&self, base_t: EntityId, goal_t: EntityId, lifts: bool, exact: bool) -> bool {
        if base_t == goal_t {
            return true;
        }
        if exact {
            return self.syn_class(base_t).contains(&goal_t);
        }
        if goal_t == special::TOP {
            return true;
        }
        if lifts {
            self.mixed_up(base_t).contains(&goal_t)
        } else {
            self.syn_class(base_t).contains(&goal_t)
        }
    }

    /// Goals with ordinary (or `Δ`) relationships.
    ///
    /// A small backward automaton over `(relationship, flips)` states —
    /// `flips ∈ {0, odd, even ≥ 2}` — enumerates the base relationships a
    /// derivation could start from, together with how often it was
    /// flipped by inversion (§3.4). For each reached base fact the
    /// positional conditions depend only on the flip class:
    ///
    /// | flips | source condition | target condition |
    /// |---|---|---|
    /// | 0 | `goal.s ⇝up f0.s` | `f0.t ⇝up goal.t` |
    /// | odd | `goal.s ⇝up f0.t` | `goal.t ∈ UP(DOWN(f0.s))` |
    /// | even ≥ 2 | `goal.s ⇝up f0.s` | `goal.t ∈ UP(DOWN(f0.t))` |
    ///
    /// (`⇝up` is mixed `≺`/`∈`/`≈` reachability; `UP(DOWN(·))` accounts
    /// for the source-phase lowering between flips followed by the final
    /// post-flip target lift.) When the relationship chain passes through
    /// a class relationship, positional lifts collapse to synonym slack.
    fn prove_ordinary(&self, goal: &Fact) -> bool {
        for (r0, flips, lifts) in self.rel_automaton(goal.r) {
            for f0 in self.store.matching(Pattern::from_rel(r0)).collect::<Vec<_>>() {
                let (anchor_s, anchor_t) = match flips {
                    Flips::Zero | Flips::Even => (f0.s, f0.t),
                    Flips::Odd => (f0.t, f0.s),
                };
                if !self.src_ok(goal.s, anchor_s, lifts) {
                    continue;
                }
                let tgt = match flips {
                    Flips::Zero => self.tgt_ok(anchor_t, goal.t, lifts, false),
                    Flips::Odd | Flips::Even => self.tgt_ok_lowered(anchor_t, goal.t, lifts),
                };
                if tgt {
                    return true;
                }
            }
        }
        false
    }

    /// Target condition for flipped derivations: `goal_t ∈ UP(DOWN(base))`
    /// — the anchor may have been lowered during its source phases before
    /// the final upward lift.
    fn tgt_ok_lowered(&self, base: EntityId, goal_t: EntityId, lifts: bool) -> bool {
        if base == goal_t || goal_t == special::TOP {
            return true;
        }
        if !lifts {
            return self.syn_class(base).contains(&goal_t);
        }
        let down = self.mixed_down(base);
        down.contains(&goal_t) || down.iter().any(|&d| self.mixed_up(d).contains(&goal_t))
    }

    /// The backward `(relationship, flips, lifts-allowed)` states
    /// reachable from the goal relationship by inverse-pair swaps (flip
    /// parity changes) and downward individual `≺`/`≈` steps (rule G2
    /// backward). `lifts-allowed` is the conservative conjunction of the
    /// individuality of every relationship on the path — positional lifts
    /// happen at some stage of the chain, and each stage's rules require
    /// an individual relationship.
    fn rel_automaton(&self, goal_r: EntityId) -> Vec<(EntityId, Flips, bool)> {
        let mut best: std::collections::BTreeMap<(EntityId, Flips), bool> =
            std::collections::BTreeMap::new();
        let mut queue: Vec<(EntityId, Flips, bool)> = Vec::new();
        // Visit each (rel, flips) state at most twice: once on first
        // discovery, once more if it is later reached with lifts allowed.
        let push = |queue: &mut Vec<(EntityId, Flips, bool)>,
                    best: &mut std::collections::BTreeMap<(EntityId, Flips), bool>,
                    r: EntityId,
                    flips: Flips,
                    lifts: bool| {
            match best.get(&(r, flips)) {
                None => {
                    best.insert((r, flips), lifts);
                    queue.push((r, flips, lifts));
                }
                Some(false) if lifts => {
                    best.insert((r, flips), true);
                    queue.push((r, flips, true));
                }
                _ => {}
            }
        };
        // Seeds: Δ in the relationship position projects from any
        // individual (or ∈) relationship; otherwise start at the goal.
        if goal_r == special::TOP {
            for r0 in self.store.relationships() {
                if self.kinds.is_individual(r0) || r0 == special::ISA {
                    push(&mut queue, &mut best, r0, Flips::Zero, true);
                }
            }
        } else {
            push(&mut queue, &mut best, goal_r, Flips::Zero, self.kinds.is_individual(goal_r));
            // Synonym swaps and class-rel identity are handled inside the
            // expansion below; a class goal relationship still admits
            // synonym-only positional slack.
            if !self.kinds.is_individual(goal_r) {
                push(&mut queue, &mut best, goal_r, Flips::Zero, false);
            }
        }
        let mut cursor = 0;
        while cursor < queue.len() {
            let (r, flips, lifts) = queue[cursor];
            cursor += 1;
            // Backward G2: relationships strictly below r (individual
            // premise), and synonym swaps.
            for f in self
                .store
                .matching(Pattern::new(None, Some(special::GEN), Some(r)))
                .collect::<Vec<_>>()
            {
                if self.kinds.is_individual(f.s) {
                    push(&mut queue, &mut best, f.s, flips, lifts && self.kinds.is_individual(f.s));
                }
            }
            for f in self
                .store
                .matching(Pattern::new(Some(r), Some(special::SYN), None))
                .collect::<Vec<_>>()
            {
                push(&mut queue, &mut best, f.t, flips, lifts && self.kinds.is_individual(f.t));
            }
            for f in self
                .store
                .matching(Pattern::new(None, Some(special::SYN), Some(r)))
                .collect::<Vec<_>>()
            {
                push(&mut queue, &mut best, f.s, flips, lifts && self.kinds.is_individual(f.s));
            }
            // Flip through inverse pairs.
            for ri in self.inverse_partners_direct(r) {
                push(
                    &mut queue,
                    &mut best,
                    ri,
                    flips.flip(),
                    lifts && self.kinds.is_individual(ri),
                );
            }
        }
        best.into_iter().map(|((r, flips), lifts)| (r, flips, lifts)).collect()
    }

    /// Inverse partners of `r` via base `⁺` facts (both directions, with
    /// synonym slack on both sides).
    fn inverse_partners_direct(&self, r: EntityId) -> BTreeSet<EntityId> {
        let class = self.syn_class(r);
        let mut out = BTreeSet::new();
        for f in self.store.matching(Pattern::from_rel(special::INV)) {
            if class.contains(&f.s) {
                out.extend(self.syn_class(f.t));
            }
            if class.contains(&f.t) {
                out.extend(self.syn_class(f.s));
            }
        }
        out
    }
}

/// How many times a derivation was flipped by inversion, collapsed to
/// the three positionally distinct classes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Flips {
    /// Never flipped: the direct lift conditions apply.
    Zero,
    /// Flipped an odd number of times: source and target anchors swap.
    Odd,
    /// Flipped an even number of times (at least twice): anchors as in
    /// [`Flips::Zero`], but the target may have been lowered between
    /// flips.
    Even,
}

impl Flips {
    fn flip(self) -> Flips {
        match self {
            Flips::Zero | Flips::Even => Flips::Odd,
            Flips::Odd => Flips::Even,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::{compute, Strategy};
    use crate::rule::RuleSet;
    use crate::view::{ClosureView, FactView};

    struct Fx {
        store: FactStore,
        kinds: KindRegistry,
        config: InferenceConfig,
    }

    impl Fx {
        fn new(build: impl FnOnce(&mut FactStore)) -> Self {
            let mut store = FactStore::new();
            build(&mut store);
            let config = InferenceConfig { user_rules: false, ..Default::default() };
            Fx { store, kinds: KindRegistry::new(), config }
        }

        fn prove(&self, s: &str, r: &str, t: &str) -> bool {
            let goal = Fact::new(
                self.store.lookup_symbol(s).unwrap_or_else(|| panic!("{s}")),
                self.store.lookup_symbol(r).unwrap_or_else(|| panic!("{r}")),
                self.store.lookup_symbol(t).unwrap_or_else(|| panic!("{t}")),
            );
            Prover::new(&self.store, &self.kinds, &self.config).prove(&goal)
        }

        /// Compares the prover against the materialized closure on every
        /// triple over the used entities.
        fn assert_equivalent(&mut self) {
            let closure = compute(
                &mut self.store.clone(),
                &self.kinds,
                &RuleSet::new(),
                &self.config,
                Strategy::SemiNaive,
            )
            .expect("closure");
            let view = ClosureView::new(&closure, self.store.interner(), &self.kinds);
            let prover = Prover::new(&self.store, &self.kinds, &self.config);
            let entities: Vec<EntityId> = view.domain().to_vec();
            for &s in &entities {
                for &r in &entities {
                    for &t in &entities {
                        let goal = Fact::new(s, r, t);
                        let forward = view.holds(&goal);
                        let backward = prover.prove(&goal);
                        assert_eq!(
                            forward,
                            backward,
                            "prover disagrees on {} (forward {forward}, backward {backward})",
                            self.store.display_fact(&goal),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn proves_paper_rule_examples() {
        let fx = Fx::new(|s| {
            s.add("JOHN", "isa", "EMPLOYEE");
            s.add("EMPLOYEE", "EARNS", "SALARY");
            s.add("SALARY", "gen", "COMPENSATION");
            s.add("MANAGER", "gen", "EMPLOYEE");
            s.add("SUE", "isa", "MANAGER");
        });
        assert!(fx.prove("JOHN", "EARNS", "SALARY")); // M1
        assert!(fx.prove("EMPLOYEE", "EARNS", "COMPENSATION")); // G3
        assert!(fx.prove("MANAGER", "EARNS", "SALARY")); // G1
        assert!(fx.prove("SUE", "EARNS", "COMPENSATION")); // chained
        assert!(fx.prove("SUE", "isa", "EMPLOYEE")); // MemberUp
        assert!(!fx.prove("SALARY", "EARNS", "JOHN"));
        assert!(!fx.prove("EMPLOYEE", "isa", "JOHN"));
    }

    #[test]
    fn proves_inversion_with_lifts() {
        let fx = Fx::new(|s| {
            s.add("TEACHES", "inv", "TAUGHT-BY");
            s.add("INST", "TEACHES", "CS100");
            s.add("ASSISTANT", "gen", "INST");
        });
        assert!(fx.prove("CS100", "TAUGHT-BY", "INST")); // plain flip
                                                         // Pre-flip source lowering: (ASSISTANT, TEACHES, CS100) by G1,
                                                         // then flipped — the goal target is the lowered source.
        assert!(fx.prove("CS100", "TAUGHT-BY", "ASSISTANT"));
        // The flip of a target-lifted fact is blocked (the guard).
        let fx2 = Fx::new(|s| {
            s.add("TAUGHT-BY", "inv", "TEACHES");
            s.add("CRS", "TAUGHT-BY", "INST");
            s.add("INST", "isa", "INSTRUCTOR");
            s.add("OTHER", "isa", "INSTRUCTOR");
        });
        assert!(fx2.prove("INST", "TEACHES", "CRS"));
        assert!(fx2.prove("CRS", "TAUGHT-BY", "INSTRUCTOR")); // the lift itself
        assert!(!fx2.prove("INSTRUCTOR", "TEACHES", "CRS")); // not inverted
        assert!(!fx2.prove("OTHER", "TEACHES", "CRS"));
    }

    #[test]
    fn proves_synonyms() {
        let fx = Fx::new(|s| {
            s.add("JOHN", "EARNS", "PAY");
            s.add("JOHN", "syn", "JOHNNY");
            s.add("PAY", "syn", "WAGE");
        });
        assert!(fx.prove("JOHNNY", "EARNS", "PAY"));
        assert!(fx.prove("JOHN", "EARNS", "WAGE"));
        assert!(fx.prove("JOHNNY", "EARNS", "WAGE"));
        assert!(fx.prove("JOHNNY", "syn", "JOHN")); // symmetry
        assert!(fx.prove("JOHN", "gen", "JOHNNY")); // definition
    }

    #[test]
    fn class_relationships_do_not_lift() {
        let mut fx = Fx::new(|s| {
            s.add("EMPLOYEE", "TOTAL", "N180");
            s.add("JOHN", "isa", "EMPLOYEE");
        });
        let total = fx.store.lookup_symbol("TOTAL").unwrap();
        fx.kinds.declare_class(total);
        assert!(!fx.prove("JOHN", "TOTAL", "N180"));
        assert!(fx.prove("EMPLOYEE", "TOTAL", "N180")); // stored
    }

    #[test]
    fn equivalent_to_forward_closure_on_rich_world() {
        let mut fx = Fx::new(|s| {
            s.add("FRESHMAN", "gen", "STUDENT");
            s.add("STUDENT", "gen", "PERSON");
            s.add("TOM", "isa", "FRESHMAN");
            s.add("STUDENT", "ATTENDS", "SCHOOL");
            s.add("SCHOOL", "isa", "INSTITUTION");
            s.add("ATTENDS", "gen", "VISITS");
            s.add("ATTENDS", "inv", "ATTENDED-BY");
            s.add("TOM", "syn", "TOMMY");
            s.add("LOVES", "contra", "HATES");
            s.add("TOM", "LOVES", "SCHOOL");
        });
        fx.assert_equivalent();
    }

    #[test]
    #[should_panic(expected = "structural rule groups")]
    fn partial_configurations_rejected() {
        let fx = Fx::new(|s| {
            s.add("A", "R", "B");
        });
        let mut config = fx.config.clone();
        config.exclude(crate::config::RuleGroup::Inversion);
        let _ = Prover::new(&fx.store, &fx.kinds, &config);
    }
}
