//! Scoped access to the shared closure worker pool for other layers.
//!
//! The closure engine keeps one process-wide pool of long-lived threads
//! (`loosedb-closure-{i}`) that normally run fixpoint rounds. Between
//! rounds those threads are idle; this module lets the query layer
//! borrow them for partitioned hash joins without spawning anything —
//! the same morsel economics that motivated the pool in the first
//! place (E13).
//!
//! [`run_scoped`] is a blocking fork-join: it submits a batch of
//! borrowing closures and does not return until every one has finished,
//! which is what makes the non-`'static` borrows sound. A panic in a
//! task is carried back and resumed on the calling thread after the
//! whole batch has drained, so sibling tasks never observe a torn
//! scope.

use std::sync::mpsc;

use crate::closure::{worker_pool, PoolJob, TaskJob};

/// Number of threads in the process-wide worker pool (≥ 1).
pub fn workers() -> usize {
    worker_pool().workers
}

/// True when called from a pool worker thread itself. Scoped batches
/// submitted from a worker run inline: a worker blocking on the queue
/// it is supposed to drain would deadlock the pool.
fn on_pool_thread() -> bool {
    std::thread::current().name().is_some_and(|n| n.starts_with("loosedb-closure-"))
}

/// Runs every task to completion, using the shared pool when it has
/// more than one thread and running inline otherwise. Blocks until all
/// tasks have finished; if any task panicked, the first panic is
/// resumed on the calling thread after the batch has drained.
///
/// Tasks may borrow from the caller's stack: the function only returns
/// once every task has reported completion, so no borrow escapes the
/// call.
pub fn run_scoped(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let pool = worker_pool();
    if pool.workers < 2 || tasks.len() < 2 || on_pool_thread() {
        // Inline fallback with the same drain-then-resume panic
        // semantics as the pooled path.
        let mut panicked = None;
        for task in tasks {
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                panicked = Some(payload);
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        return;
    }
    let n = tasks.len();
    let (done, collect) = mpsc::channel();
    {
        let jobs = pool.jobs.lock().expect("pool queue");
        for task in tasks {
            // SAFETY: the loop below blocks on `collect` until all `n`
            // tasks have reported completion (normal or panicked), so
            // every borrow inside `task` outlives its execution.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            jobs.send(PoolJob::Task(TaskJob { run: task, done: done.clone() }))
                .expect("worker pool alive");
        }
    }
    drop(done);
    let mut panicked = None;
    for _ in 0..n {
        match collect.recv().expect("closure worker alive") {
            Ok(()) => {}
            Err(payload) => panicked = Some(payload),
        }
    }
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_scoped_completes_all_tasks_with_stack_borrows() {
        let hits = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..23).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = inputs
            .iter()
            .map(|&i| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(i, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), (0..23).sum());
    }

    #[test]
    fn run_scoped_handles_empty_and_single_batches() {
        run_scoped(Vec::new());
        let ran = AtomicUsize::new(0);
        run_scoped(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_scoped_resumes_panics_after_draining() {
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    let survivors = &survivors;
                    Box::new(move || {
                        if i == 2 {
                            panic!("partition failure");
                        }
                        survivors.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(tasks);
        }));
        assert!(result.is_err(), "panic must propagate to the submitter");
        assert_eq!(survivors.load(Ordering::Relaxed), 3, "siblings run to completion");
    }
}
