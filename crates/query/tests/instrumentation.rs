//! Backfill tests for the query layer's bookkeeping: plan-cache
//! hit/miss/evict/carry transitions (local stats and their registry
//! mirrors), and the `EvalError::ResultTooLarge` diagnostic fields.

use std::collections::BTreeSet;
use std::sync::Arc;

use loosedb_engine::Database;
use loosedb_obs::Metrics;
use loosedb_query::{eval_with, parse, plan_and_eval, EvalError, EvalOptions, PlanCache, Query};
use loosedb_store::EntityId;

fn world() -> Database {
    let mut db = Database::new();
    db.add("JOHN", "LIKES", "FELIX");
    db.add("JOHN", "LIKES", "MARY");
    db.add("JOHN", "EARNS", 25000i64);
    db.add("MARY", "WORKS-FOR", "SHIPPING");
    db
}

fn parsed(db: &mut Database, src: &str) -> Query {
    parse(src, db.store_interner_mut()).unwrap()
}

fn rel_id(db: &Database, name: &str) -> EntityId {
    db.lookup_symbol(name).unwrap()
}

/// Every cache transition — miss, insert, hit, carry, invalidation,
/// eviction — shows up both in the local `PlanCacheStats` and in the
/// mirrored `query.plan_cache.*` registry counters.
#[test]
fn plan_cache_transitions_mirror_into_the_registry() {
    let mut db = world();
    let metrics = Metrics::new();
    let mut cache = PlanCache::with_metrics(2, metrics.plan_cache.clone());
    let opts = EvalOptions::default();

    let likes = parsed(&mut db, "(JOHN, LIKES, ?x)");
    let earns = parsed(&mut db, "(JOHN, EARNS, ?x)");
    let works = parsed(&mut db, "(?x, WORKS-FOR, SHIPPING)");
    let likes_rel = rel_id(&db, "LIKES");
    let earns_rel = rel_id(&db, "EARNS");
    let view = db.view().unwrap();

    // Cold: miss, plan, insert.
    assert!(cache.get(&likes, &opts).is_none());
    let (_, plan) = plan_and_eval(&likes, &view, opts).unwrap();
    cache.insert(&likes, &opts, Arc::new(plan));
    // Warm: hit.
    assert!(cache.get(&likes, &opts).is_some());
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));

    // A disjoint write delta carries the plan across the epoch roll.
    let delta: BTreeSet<EntityId> = [earns_rel].into();
    cache.roll(2, Some(&delta));
    assert!(cache.get(&likes, &opts).is_some());
    assert_eq!(cache.stats().carried, 1);

    // A delta touching LIKES invalidates it: the next lookup misses.
    let delta: BTreeSet<EntityId> = [likes_rel].into();
    cache.roll(3, Some(&delta));
    assert!(cache.get(&likes, &opts).is_none());

    // Fill past capacity 2: the LRU entry is evicted.
    for q in [&likes, &earns, &works] {
        let (_, plan) = plan_and_eval(q, &view, opts).unwrap();
        cache.insert(q, &opts, Arc::new(plan));
    }
    let stats = cache.stats();
    assert_eq!(stats.evictions, 1, "{stats:?}");
    assert_eq!(stats.len, 2);

    // The registry mirror agrees with the local stats on every counter.
    let mirror = metrics.plan_cache.snapshot();
    assert_eq!(mirror.hits, stats.hits);
    assert_eq!(mirror.misses, stats.misses);
    assert_eq!(mirror.evictions, stats.evictions);
    assert_eq!(mirror.carried, stats.carried);
    assert_eq!(mirror.len, stats.len as u64);
}

/// The removal path drives the same transitions: an incremental
/// retraction publishes a precise touched-rel delta, so a plan whose
/// dependencies are disjoint carries across the roll (hit), while a plan
/// depending on a retracted rel is invalidated (miss) — in the local
/// stats and the registry mirror alike.
#[test]
fn plan_cache_transitions_cover_the_removal_path() {
    let mut db = world();
    let metrics = Metrics::new();
    let mut cache = PlanCache::with_metrics(4, metrics.plan_cache.clone());
    let opts = EvalOptions::default();

    let likes = parsed(&mut db, "(JOHN, LIKES, ?x)");
    let earns = parsed(&mut db, "(JOHN, EARNS, ?x)");
    {
        let view = db.view().unwrap();
        for q in [&likes, &earns] {
            let (_, plan) = plan_and_eval(q, &view, opts).unwrap();
            cache.insert(q, &opts, Arc::new(plan));
        }
    }
    assert_eq!(cache.stats().len, 2);
    // Drain the Full marker the initial closure computation left behind,
    // so the next delta reflects the removal alone.
    let _ = db.take_publish_delta();

    // Remove the EARNS base fact through the incremental path and roll
    // the cache with the precise delta the retraction produced.
    let john = db.lookup_symbol("JOHN").unwrap();
    let earns_rel = rel_id(&db, "EARNS");
    let salary = db.store().interner().lookup(&25000i64.into()).unwrap();
    assert!(db.remove_incremental(&loosedb_store::Fact::new(john, earns_rel, salary)).unwrap());
    let delta = match db.take_publish_delta() {
        loosedb_engine::PublishDelta::Rels(rels) => rels,
        other => panic!("incremental removal must stay precise, got {other:?}"),
    };
    assert!(delta.contains(&earns_rel));
    cache.roll(2, Some(&delta));

    // LIKES is disjoint from the retraction wave: carried, then a hit.
    assert!(cache.get(&likes, &opts).is_some());
    // EARNS depended on the retracted rel: invalidated, now a miss.
    assert!(cache.get(&earns, &opts).is_none());
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
    assert_eq!(stats.carried, 1, "{stats:?}");

    let mirror = metrics.plan_cache.snapshot();
    assert_eq!(mirror.hits, stats.hits);
    assert_eq!(mirror.misses, stats.misses);
    assert_eq!(mirror.carried, stats.carried);
    assert_eq!(mirror.len, stats.len as u64);
}

/// An unknown delta (`None`) clears the cache outright — nothing is
/// carried and the mirrored length gauge drops to zero.
#[test]
fn plan_cache_unknown_delta_clears_everything() {
    let mut db = world();
    let metrics = Metrics::new();
    let mut cache = PlanCache::with_metrics(4, metrics.plan_cache.clone());
    let opts = EvalOptions::default();
    let likes = parsed(&mut db, "(JOHN, LIKES, ?x)");
    let view = db.view().unwrap();

    let (_, plan) = plan_and_eval(&likes, &view, opts).unwrap();
    cache.insert(&likes, &opts, Arc::new(plan));
    assert_eq!(cache.stats().len, 1);

    cache.roll(2, None);
    let stats = cache.stats();
    assert_eq!((stats.len, stats.carried), (0, 0), "{stats:?}");
    assert_eq!(metrics.plan_cache.snapshot().len, 0);
}

/// `ResultTooLarge` reports the configured limit and how many rows had
/// been produced when the evaluator gave up — `produced` always exceeds
/// `limit`, never by more than one batch of duplicates.
#[test]
fn result_too_large_reports_limit_and_produced() {
    let mut db = Database::new();
    for i in 0..20 {
        db.add("JOHN", "LIKES", format!("T{i}"));
    }
    let query = parsed(&mut db, "(JOHN, LIKES, ?x)");
    let view = db.view().unwrap();
    let opts = EvalOptions { max_rows: 5, ..Default::default() };
    match eval_with(&query, &view, opts) {
        Err(EvalError::ResultTooLarge { limit, produced }) => {
            assert_eq!(limit, 5);
            assert!(produced > limit, "produced={produced} must exceed limit={limit}");
            assert!(produced <= 20, "produced={produced} cannot exceed the extension");
        }
        other => panic!("expected ResultTooLarge, got {other:?}"),
    }

    // Under the limit, the same query succeeds — the error is a budget,
    // not a truncation.
    let opts = EvalOptions { max_rows: 64, ..Default::default() };
    assert_eq!(eval_with(&query, &view, opts).unwrap().len(), 20);
}
