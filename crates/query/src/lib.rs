//! # loosedb-query
//!
//! The standard query language of loosedb (§2.7 of Motro, SIGMOD 1984):
//! predicate-logic formulas over template atoms with conjunction,
//! disjunction and quantifiers — and *no* negation (complements are
//! relationships, e.g. `≠`).
//!
//! * [`ast`] — formulas and queries, plus the atom-rewriting hooks probing
//!   builds on.
//! * [`parser`] — the textual syntax (`Q(?z) := exists ?y . (?z, EARNS,
//!   ?y) & (?y, >, 20000)`), with `*` wildcards for navigation templates.
//! * [`eval`] — bottom-up, set-at-a-time evaluation: hash joins over
//!   column-oriented relations with incremental deduplication and
//!   semi-join projection pushdown; the seed's binding-at-a-time
//!   nested-loop path is retained as the reference oracle
//!   (`ExecStrategy::NestedLoop`).
//! * [`plan`] — shape-keyed query planning: greedy join orders from
//!   capped count probes, memoized in an epoch-scoped [`PlanCache`] so
//!   repeated browsing queries skip planning entirely.
//!
//! ```
//! use loosedb_engine::Database;
//! use loosedb_query::{parse, eval};
//!
//! let mut db = Database::new();
//! db.add("JOHN", "isa", "EMPLOYEE");
//! db.add("JOHN", "EARNS", 25000i64);
//!
//! let q = parse(
//!     "Q(?z) := exists ?y . (?z, isa, EMPLOYEE) & (?z, EARNS, ?y) & (?y, >, 20000)",
//!     db.store_interner_mut(),
//! ).unwrap();
//! let view = db.view().unwrap();
//! let answer = eval(&q, &view).unwrap();
//! assert_eq!(answer.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod eval;
pub mod parser;
pub mod plan;
pub mod scatter;

pub use ast::{Formula, Query};
pub use eval::{
    eval, eval_planned, eval_planned_stats, eval_with, explain_plan, plan_and_eval,
    plan_and_eval_stats, Answer, AtomOrdering, EvalError, EvalOptions, EvalStats, ExecStrategy,
    ParallelMode,
};
pub use parser::{parse, parse_frozen, FrozenParseError, ParseError};
pub use plan::{plan_dependencies, plan_query, PlanCache, PlanCacheStats, QueryPlan};
pub use scatter::{
    eval_sharded, eval_sharded_planned, is_collocated, ScatterMetrics, ShardedAnswer, UnionView,
};
