//! # loosedb-query
//!
//! The standard query language of loosedb (§2.7 of Motro, SIGMOD 1984):
//! predicate-logic formulas over template atoms with conjunction,
//! disjunction and quantifiers — and *no* negation (complements are
//! relationships, e.g. `≠`).
//!
//! * [`ast`] — formulas and queries, plus the atom-rewriting hooks probing
//!   builds on.
//! * [`parser`] — the textual syntax (`Q(?z) := exists ?y . (?z, EARNS,
//!   ?y) & (?y, >, 20000)`), with `*` wildcards for navigation templates.
//! * [`eval`] — bottom-up evaluation with index-backed binding
//!   propagation; greedy conjunct ordering (the planner) or syntactic
//!   order (the experiment E6 baseline).
//!
//! ```
//! use loosedb_engine::Database;
//! use loosedb_query::{parse, eval};
//!
//! let mut db = Database::new();
//! db.add("JOHN", "isa", "EMPLOYEE");
//! db.add("JOHN", "EARNS", 25000i64);
//!
//! let q = parse(
//!     "Q(?z) := exists ?y . (?z, isa, EMPLOYEE) & (?z, EARNS, ?y) & (?y, >, 20000)",
//!     db.store_interner_mut(),
//! ).unwrap();
//! let view = db.view().unwrap();
//! let answer = eval(&q, &view).unwrap();
//! assert_eq!(answer.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{Formula, Query};
pub use eval::{eval, eval_with, explain_plan, Answer, AtomOrdering, EvalError, EvalOptions};
pub use parser::{parse, parse_frozen, FrozenParseError, ParseError};
