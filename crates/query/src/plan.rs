//! Shape-keyed query planning (the E18 executor's front half).
//!
//! Planning — flattening conjunctions, scoring conjuncts with capped
//! constant-only count probes, and fixing a greedy join order with its
//! key columns — is a *pure* phase separated from execution so it can
//! run once per query shape and be memoized. [`plan_query`] walks the
//! formula in the same preorder as the evaluator and emits one
//! [`GroupPlan`] per conjunction node; `eval_planned`
//! ([`crate::eval::eval_planned`]) replays those decisions without
//! issuing a single selectivity probe.
//!
//! [`PlanCache`] memoizes plans keyed on the structural hash of the
//! frozen-parse formula ([`shape_hash`]), scoped to a database epoch.
//! On publish, a plan is carried over when the write delta's touched
//! relationships are provably disjoint from the plan's dependency set
//! ([`plan_dependencies`]) — the same `rels_changed_between` machinery
//! the `SharedSession` answer cache uses, except that a *stale plan is
//! still correct* (only potentially suboptimal), so the carry-over rule
//! here trades strictness for hit rate, not safety.

use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use loosedb_engine::{Bindings, FactView, Template, Term, Var};
use loosedb_store::{special, EntityId};

use crate::ast::{Formula, Query};
use crate::eval::{flatten_conjuncts, AtomOrdering, EvalOptions, ExecStrategy};

/// The selectivity cap for constant-only count probes; also the
/// "unknown size" estimate assigned to math atoms and complex
/// (non-atom) conjuncts, whose extents planning cannot probe.
pub(crate) const ESTIMATE_CAP: i64 = 1024;

/// Cost-model constants (relative units; see DESIGN.md §10). An index
/// probe is several times the cost of producing one row; the hash
/// executor additionally pays a per-step setup (key dedup scan, group
/// map) and a per-row dedup hash.
const COST_PROBE: f64 = 8.0;
const COST_ROW: f64 = 1.0;
const COST_HASH_ROW: f64 = 1.0;
const COST_HASH_SETUP: f64 = 256.0;

/// The recorded decisions for one conjunction (`And`-group): the join
/// order over the flattened conjunct list, per-step hash-join key
/// columns, and the executor the cost model picked for the group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupPlan {
    /// Conjunct indices (into the flattened, sentinel-free conjunct
    /// list) in the order they are joined.
    pub order: Vec<usize>,
    /// Join-key columns per step: the conjunct's variables already bound
    /// by earlier steps, sorted. Empty means the step is a cross product
    /// (always true for the first step; later only for genuinely
    /// disconnected conjuncts).
    pub keys: Vec<Vec<Var>>,
    /// The executor chosen by the cost model for this group, honored
    /// when evaluation runs under [`ExecStrategy::Adaptive`]. A stale or
    /// default plan reads as `Adaptive`, which the evaluator treats as
    /// `HashJoin` — the safe-at-scale executor.
    pub strategy: ExecStrategy,
    /// Estimated *deduplicated* rows flowing out of each step (the hash
    /// frontier of the cost model). Diagnostic: recorded so plan_stats
    /// surfaces and experiments can inspect what the decision saw.
    pub est_rows: Vec<u64>,
}

/// A complete plan for a query: one [`GroupPlan`] per conjunction node,
/// in evaluation preorder (a conjunction's own group precedes the
/// groups of its complex conjuncts, which follow in flatten order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryPlan {
    pub(crate) groups: Vec<GroupPlan>,
    /// Count probes issued while planning (0 when replaying a cached
    /// plan — that is the whole point).
    pub(crate) probes: u64,
}

impl QueryPlan {
    /// The per-conjunction plans, in evaluation preorder.
    pub fn groups(&self) -> &[GroupPlan] {
        &self.groups
    }

    /// Count probes issued while this plan was built.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Renders the plan compactly: per group, the join order with each
    /// step's key columns.
    pub fn render(&self, query: &Query) -> String {
        let mut out = String::new();
        for (gi, g) in self.groups.iter().enumerate() {
            let tag = match g.strategy {
                ExecStrategy::NestedLoop => "nested",
                ExecStrategy::HashJoin => "hash",
                ExecStrategy::Adaptive => "adaptive",
            };
            out.push_str(&format!("group {gi} [{tag}]:"));
            for (step, &ci) in g.order.iter().enumerate() {
                let keys: Vec<String> =
                    g.keys[step].iter().map(|v| format!("?{}", query.var_name(*v))).collect();
                if keys.is_empty() {
                    out.push_str(&format!(" {ci}"));
                } else {
                    out.push_str(&format!(" {ci}[{}]", keys.join(" ")));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Plans a query without executing it: one greedy (or syntactic) join
/// order per conjunction node, using only capped constant-only count
/// probes. The result can be replayed any number of times with
/// [`crate::eval::eval_planned`].
pub fn plan_query(query: &Query, view: &impl FactView, opts: &EvalOptions) -> QueryPlan {
    let before = view.count_probes();
    let mut plan = QueryPlan::default();
    plan_formula(&query.formula, view, opts, &mut plan);
    plan.probes = view.count_probes().saturating_sub(before);
    plan
}

fn plan_formula(f: &Formula, view: &impl FactView, opts: &EvalOptions, plan: &mut QueryPlan) {
    if f.is_true_sentinel() {
        return;
    }
    match f {
        Formula::Atom(_) | Formula::And(..) => {
            let conjuncts = flatten_conjuncts(f);
            if conjuncts.is_empty() {
                return;
            }
            let slot = plan.groups.len();
            plan.groups.push(GroupPlan::default());
            let infos = conj_infos(&conjuncts, view);
            let (order, keys) = greedy_order(&infos, opts.ordering);
            let (strategy, est_rows) = choose_strategy(&infos, &order, &keys, view.domain_size());
            plan.groups[slot] = GroupPlan { order, keys, strategy, est_rows };
            // Recurse into complex conjuncts in flatten order — the same
            // order the evaluator pre-materializes them in, so the group
            // cursor stays aligned between planning and replay.
            for c in conjuncts {
                if !matches!(c, Formula::Atom(_)) {
                    plan_formula(c, view, opts, plan);
                }
            }
        }
        Formula::Or(a, b) => {
            plan_formula(a, view, opts, plan);
            plan_formula(b, view, opts, plan);
        }
        Formula::Exists(_, a) | Formula::ForAll(_, a) => plan_formula(a, view, opts, plan),
    }
}

/// What the planner knows about one conjunct.
pub(crate) struct ConjInfo<'f> {
    /// The atom's template, if the conjunct is an atom.
    pub tpl: Option<&'f Template>,
    /// Distinct variables, in first-occurrence order.
    pub vars: Vec<Var>,
    /// Capped constant-only extent estimate ([`ESTIMATE_CAP`] when
    /// unknown: math atoms and complex conjuncts).
    pub estimate: i64,
    /// True for mathematical atoms, which should run as checks once
    /// their operands are bound.
    pub is_math: bool,
}

/// Builds planner info for each conjunct, probing the view once per
/// non-math atom (the probes are constant-only, so they are the same at
/// every step — computing them up front is what stops greedy ordering
/// from re-probing the same atoms n times).
pub(crate) fn conj_infos<'f>(conjuncts: &[&'f Formula], view: &impl FactView) -> Vec<ConjInfo<'f>> {
    conjuncts
        .iter()
        .map(|c| match c {
            Formula::Atom(tpl) => {
                let mut vars = Vec::new();
                for v in tpl.vars() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                let is_math = tpl.r.as_const().is_some_and(special::is_math);
                let estimate = if is_math {
                    ESTIMATE_CAP
                } else {
                    (view.count_estimate(tpl.to_pattern(&Bindings::new()), ESTIMATE_CAP as usize)
                        as i64)
                        .min(ESTIMATE_CAP)
                };
                ConjInfo { tpl: Some(tpl), vars, estimate, is_math }
            }
            other => ConjInfo {
                tpl: None,
                vars: other.free_vars().into_iter().collect(),
                estimate: ESTIMATE_CAP,
                is_math: false,
            },
        })
        .collect()
}

/// Chooses the join order for one conjunction. Greedy choice, in
/// lexicographic priority:
///
/// 1. **Connectivity** — a conjunct sharing a variable with what is
///    already bound (or having no variables at all) extends the join; a
///    disconnected conjunct would cross-product.
/// 2. **Boundness** — more constant-or-covered positions mean tighter
///    index probes; math atoms are slightly deprioritized so they run
///    as checks once their operands are known.
/// 3. **Selectivity** — the (precomputed) capped constant-only count
///    estimate breaks ties.
///
/// Also returns, per step, the chosen conjunct's already-covered
/// variables: the hash-join key columns.
pub(crate) fn greedy_order(
    infos: &[ConjInfo<'_>],
    ordering: AtomOrdering,
) -> (Vec<usize>, Vec<Vec<Var>>) {
    let n = infos.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut keys: Vec<Vec<Var>> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut covered: BTreeSet<Var> = BTreeSet::new();
    for step in 0..n {
        let next = match ordering {
            AtomOrdering::Syntactic => step,
            AtomOrdering::Greedy => {
                let nothing_covered = covered.is_empty();
                let mut best = usize::MAX;
                let mut best_key = (i64::MIN, i64::MIN, i64::MIN);
                for (i, info) in infos.iter().enumerate() {
                    if used[i] {
                        continue;
                    }
                    let connected = nothing_covered
                        || info.vars.is_empty()
                        || info.vars.iter().any(|v| covered.contains(v));
                    let bound = match info.tpl {
                        Some(tpl) => tpl
                            .terms()
                            .into_iter()
                            .filter(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => covered.contains(v),
                            })
                            .count() as i64,
                        None => info.vars.iter().filter(|v| covered.contains(v)).count() as i64,
                    };
                    let key = (connected as i64, bound * 2 - info.is_math as i64, -info.estimate);
                    if best == usize::MAX || key > best_key {
                        best_key = key;
                        best = i;
                    }
                }
                best
            }
        };
        used[next] = true;
        order.push(next);
        keys.push(infos[next].vars.iter().copied().filter(|v| covered.contains(v)).collect());
        covered.extend(infos[next].vars.iter().copied());
    }
    (order, keys)
}

/// Chooses the executor for one ordered conjunction by simulating both
/// under the capped estimates, and returns the per-step hash-frontier
/// estimates alongside.
///
/// Two row trackers walk the join order. `nl_rows` models the
/// binding-at-a-time path: partial bindings grow multiplicatively with
/// each step's fanout and nothing deduplicates, so every step pays one
/// index probe *per partial*. `hj_rows` models the set-at-a-time path:
/// projection pushdown plus per-step dedup cap the surviving frontier
/// at the active-domain size (and the probe cap), so each step pays one
/// probe per *distinct* key — but also a fixed setup (key-dedup scan,
/// group map) and a dedup hash per produced row. On two-atom queries
/// the frontiers coincide and the hash overhead loses (the E18 2-atom
/// regression this model removes); from three atoms on, the nested
/// probe count explodes with the undeduplicated frontier and the hash
/// path wins. Estimates are capped and stale-tolerant: a wrong choice
/// degrades performance, never correctness.
fn choose_strategy(
    infos: &[ConjInfo<'_>],
    order: &[usize],
    keys: &[Vec<Var>],
    domain_size: usize,
) -> (ExecStrategy, Vec<u64>) {
    let cap = if domain_size > 0 {
        (domain_size as f64).min(ESTIMATE_CAP as f64)
    } else {
        ESTIMATE_CAP as f64
    }
    .max(1.0);
    let mut nl_rows = 1.0_f64;
    let mut hj_rows = 1.0_f64;
    let mut nl_cost = 0.0_f64;
    let mut hj_cost = 0.0_f64;
    let mut est_rows = Vec::with_capacity(order.len());
    for (step, &ci) in order.iter().enumerate() {
        let info = &infos[ci];
        let e = info.estimate.max(1) as f64;
        let keyed = !keys[step].is_empty();
        // Per-partial fanout: math atoms run as checks (filters), keyed
        // steps see a root-law slice of the extent, unkeyed steps
        // replicate the whole extent (cross product).
        let fanout = if info.is_math {
            1.0
        } else if keyed {
            e.sqrt().max(1.0)
        } else {
            e
        };
        let probe = if info.tpl.is_some() { COST_PROBE } else { 0.0 };
        // The nested path scans a materialized sub-relation in full per
        // partial; an atom only yields its matches.
        let nl_scan = if info.tpl.is_some() { fanout } else { e };
        nl_cost += nl_rows * probe + nl_rows * nl_scan * COST_ROW;
        nl_rows = (nl_rows * fanout).min(1e15);
        let distinct = if keyed { hj_rows } else { 1.0 };
        hj_cost +=
            COST_HASH_SETUP + distinct * probe + hj_rows * fanout * (COST_ROW + COST_HASH_ROW);
        hj_rows = (hj_rows * fanout).min(cap);
        est_rows.push(hj_rows as u64);
    }
    let strategy =
        if nl_cost <= hj_cost { ExecStrategy::NestedLoop } else { ExecStrategy::HashJoin };
    (strategy, est_rows)
}

/// The relationships a plan's quality depends on: the constant
/// relationship positions of the query's atoms. `None` means the plan
/// depends on unpredictable extents (a variable or mathematical
/// relationship position) and should be dropped on any publish.
///
/// This governs *carry-over across epochs*, not correctness — a plan
/// replayed against a changed database still computes the right answer,
/// just possibly in a worse order.
pub fn plan_dependencies(query: &Query) -> Option<BTreeSet<EntityId>> {
    let mut rels = BTreeSet::new();
    for tpl in query.formula.atoms() {
        match tpl.r {
            Term::Const(r) if special::is_math(r) || r == special::TOP => return None,
            Term::Const(r) => {
                rels.insert(r);
            }
            Term::Var(v) if v.0 == u32::MAX => {} // TRUE sentinel atom
            Term::Var(_) => return None,
        }
    }
    Some(rels)
}

/// The memoization key for a query shape: the structural hash of the
/// formula, the declared answer columns, and the ordering strategy
/// (syntactic and greedy plans differ for the same formula).
pub fn shape_hash(query: &Query, opts: &EvalOptions) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    query.formula.hash(&mut h);
    query.free.hash(&mut h);
    opts.ordering.hash(&mut h);
    h.finish()
}

/// Cumulative [`PlanCache`] statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a usable plan.
    pub hits: u64,
    /// Lookups that missed (cold planning followed).
    pub misses: u64,
    /// Entries evicted by the LRU capacity policy.
    pub evictions: u64,
    /// Plans carried across a publish because the write delta did not
    /// touch their dependency relationships.
    pub carried: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Conjunction groups across inserted plans whose cost model chose
    /// the hash executor.
    pub strategy_hash: u64,
    /// Conjunction groups across inserted plans whose cost model chose
    /// the nested-loop executor.
    pub strategy_nested: u64,
}

struct PlanEntry {
    /// Guards against shape-hash collisions: a hit must also match the
    /// formula and answer columns exactly.
    formula: Formula,
    free: Vec<Var>,
    ordering: AtomOrdering,
    plan: Arc<QueryPlan>,
    deps: Option<BTreeSet<EntityId>>,
    last_used: u64,
}

/// An epoch-scoped LRU cache of query plans, keyed on [`shape_hash`].
///
/// The owner calls [`PlanCache::roll`] whenever the database epoch it
/// serves from advances, passing the set of relationships the
/// intervening publishes touched (from
/// `SharedDatabase::rels_changed_between`); plans whose dependency sets
/// are disjoint from the delta survive the roll.
pub struct PlanCache {
    capacity: usize,
    epoch: u64,
    tick: u64,
    map: HashMap<u64, PlanEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    carried: u64,
    strategy_hash: u64,
    strategy_nested: u64,
    /// Optional shared registry counters (`query.plan_cache.*`); the
    /// local fields above stay authoritative for per-cache stats.
    metrics: Option<loosedb_obs::CacheCounters>,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            epoch: 0,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            carried: 0,
            strategy_hash: 0,
            strategy_nested: 0,
            metrics: None,
        }
    }

    /// Like [`PlanCache::new`], additionally mirroring every transition
    /// into the shared registry counters (`query.plan_cache.*`).
    pub fn with_metrics(capacity: usize, metrics: loosedb_obs::CacheCounters) -> Self {
        let mut cache = PlanCache::new(capacity);
        cache.metrics = Some(metrics);
        cache
    }

    /// The epoch the cached plans were built (or last validated) at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the cache to `epoch`. `changed` is the set of
    /// relationships touched by publishes since the cache's epoch
    /// (`None` when unknown — e.g. the delta history was exhausted);
    /// entries whose dependencies are disjoint from it are kept.
    pub fn roll(&mut self, epoch: u64, changed: Option<&BTreeSet<EntityId>>) {
        if epoch == self.epoch {
            return;
        }
        match changed {
            Some(delta) => {
                self.map.retain(|_, entry| match &entry.deps {
                    Some(deps) => deps.is_disjoint(delta),
                    None => false,
                });
                self.carried += self.map.len() as u64;
                if let Some(m) = &self.metrics {
                    m.carried.add(self.map.len() as u64);
                }
            }
            None => self.map.clear(),
        }
        if let Some(m) = &self.metrics {
            m.len.set(self.map.len() as u64);
        }
        self.epoch = epoch;
    }

    /// Advances the cache across a span containing a full-recompute
    /// publish (a removal or rule/kind/config change at a *known* epoch,
    /// `DeltaSummary::FullAt` in engine terms). Unlike
    /// [`PlanCache::roll`] with `changed: None`, this keeps every
    /// structurally tracked plan: a plan only fixes a join order, so
    /// replaying one against recomputed extents costs performance at
    /// worst, never correctness (see [`plan_dependencies`]). Plans with
    /// unpredictable dependencies (`deps: None`) are still dropped, as on
    /// every roll.
    pub fn roll_stale(&mut self, epoch: u64) {
        if epoch == self.epoch {
            return;
        }
        self.map.retain(|_, entry| entry.deps.is_some());
        self.carried += self.map.len() as u64;
        if let Some(m) = &self.metrics {
            m.carried.add(self.map.len() as u64);
            m.len.set(self.map.len() as u64);
        }
        self.epoch = epoch;
    }

    /// Looks up the plan for a query shape.
    pub fn get(&mut self, query: &Query, opts: &EvalOptions) -> Option<Arc<QueryPlan>> {
        self.tick += 1;
        let key = shape_hash(query, opts);
        match self.map.get_mut(&key) {
            Some(entry)
                if entry.formula == query.formula
                    && entry.free == query.free
                    && entry.ordering == opts.ordering =>
            {
                entry.last_used = self.tick;
                self.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(Arc::clone(&entry.plan))
            }
            _ => {
                self.misses += 1;
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Caches a freshly built plan, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, query: &Query, opts: &EvalOptions, plan: Arc<QueryPlan>) {
        self.tick += 1;
        if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, entry)| entry.last_used) {
                self.map.remove(&oldest);
                self.evictions += 1;
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                }
            }
        }
        for group in plan.groups() {
            match group.strategy {
                ExecStrategy::NestedLoop => self.strategy_nested += 1,
                ExecStrategy::HashJoin | ExecStrategy::Adaptive => self.strategy_hash += 1,
            }
        }
        let key = shape_hash(query, opts);
        self.map.insert(
            key,
            PlanEntry {
                formula: query.formula.clone(),
                free: query.free.clone(),
                ordering: opts.ordering,
                plan,
                deps: plan_dependencies(query),
                last_used: self.tick,
            },
        );
        if let Some(m) = &self.metrics {
            m.len.set(self.map.len() as u64);
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            carried: self.carried,
            len: self.map.len(),
            capacity: self.capacity,
            strategy_hash: self.strategy_hash,
            strategy_nested: self.strategy_nested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_planned, eval_with, ExecStrategy};
    use crate::parser::parse;
    use loosedb_engine::Database;

    fn world() -> Database {
        let mut db = Database::new();
        for i in 0..30 {
            db.add(format!("P{i}"), "isa", "PERSON");
            db.add(format!("P{i}"), "EARNS", 1000 * i);
        }
        db.add("P3", "isa", "RARE-SET");
        db
    }

    const SRC: &str =
        "Q(?x) := exists ?y . (?x, isa, PERSON) & (?x, EARNS, ?y) & (?x, isa, RARE-SET)";

    #[test]
    fn planning_probes_once_per_atom_and_replay_probes_zero() {
        let mut db = world();
        let query = parse(SRC, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let plan = plan_query(&query, &view, &EvalOptions::default());
        // One constant-only probe per non-math atom, cached across steps.
        assert_eq!(plan.probes, 3);
        assert_eq!(view.count_probes(), 3);
        let answer = eval_planned(&query, &view, EvalOptions::default(), &plan).unwrap();
        assert_eq!(answer.len(), 1);
        // Replay issued no further probes.
        assert_eq!(view.count_probes(), 3);
    }

    #[test]
    fn plan_orders_selective_atom_first() {
        let mut db = world();
        let query = parse(SRC, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let plan = plan_query(&query, &view, &EvalOptions::default());
        assert_eq!(plan.groups.len(), 1);
        let group = &plan.groups[0];
        // Conjunct 2 is (?x, isa, RARE-SET) — the most selective.
        assert_eq!(group.order[0], 2);
        // The first step keys on nothing; later steps key on ?x.
        assert!(group.keys[0].is_empty());
        assert!(!group.keys[1].is_empty());
    }

    #[test]
    fn replayed_plan_matches_fresh_eval() {
        let mut db = world();
        let query = parse(SRC, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        for strategy in [ExecStrategy::HashJoin, ExecStrategy::NestedLoop] {
            let opts = EvalOptions { strategy, ..EvalOptions::default() };
            let plan = plan_query(&query, &view, &opts);
            let replayed = eval_planned(&query, &view, opts, &plan).unwrap();
            let fresh = eval_with(&query, &view, opts).unwrap();
            assert_eq!(replayed, fresh);
        }
    }

    #[test]
    fn cache_hits_same_shape_and_guards_different_shape() {
        let mut db = world();
        let q1 = parse(SRC, db.store_interner_mut()).unwrap();
        let q2 = parse("(?x, isa, PERSON)", db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let opts = EvalOptions::default();
        let mut cache = PlanCache::new(8);
        assert!(cache.get(&q1, &opts).is_none());
        cache.insert(&q1, &opts, Arc::new(plan_query(&q1, &view, &opts)));
        assert!(cache.get(&q1, &opts).is_some());
        assert!(cache.get(&q2, &opts).is_none());
        // Syntactic and greedy shapes are distinct.
        let syn = EvalOptions { ordering: AtomOrdering::Syntactic, ..opts };
        assert!(cache.get(&q1, &syn).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn roll_keeps_disjoint_plans_and_drops_touched_ones() {
        let mut db = world();
        let query = parse(SRC, db.store_interner_mut()).unwrap();
        let opts = EvalOptions::default();
        let plan = {
            let view = db.view().unwrap();
            Arc::new(plan_query(&query, &view, &opts))
        };
        let isa = db.store().lookup_symbol("isa").unwrap();

        let mut cache = PlanCache::new(8);
        cache.insert(&query, &opts, Arc::clone(&plan));
        // Disjoint delta: the plan survives.
        let unrelated: BTreeSet<EntityId> = [EntityId(u32::MAX - 1)].into_iter().collect();
        cache.roll(1, Some(&unrelated));
        assert!(cache.get(&query, &opts).is_some());
        // Touched delta: dropped.
        let touched: BTreeSet<EntityId> = [isa].into_iter().collect();
        cache.roll(2, Some(&touched));
        assert!(cache.get(&query, &opts).is_none());
        // Unknown delta: everything dropped.
        cache.insert(&query, &opts, plan);
        cache.roll(3, None);
        assert!(cache.get(&query, &opts).is_none());
        assert_eq!(cache.epoch(), 3);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut db = world();
        let q1 = parse("(?x, isa, PERSON)", db.store_interner_mut()).unwrap();
        let q2 = parse("(?x, isa, RARE-SET)", db.store_interner_mut()).unwrap();
        let q3 = parse("(?x, EARNS, ?y)", db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let opts = EvalOptions::default();
        let mut cache = PlanCache::new(2);
        for q in [&q1, &q2] {
            cache.insert(q, &opts, Arc::new(plan_query(q, &view, &opts)));
        }
        assert!(cache.get(&q2, &opts).is_some()); // refresh q2
        assert!(cache.get(&q1, &opts).is_some()); // refresh q1 (now newest)
        cache.insert(&q3, &opts, Arc::new(plan_query(&q3, &view, &opts)));
        assert!(cache.get(&q2, &opts).is_none(), "q2 was the LRU entry");
        assert!(cache.get(&q1, &opts).is_some());
        assert!(cache.get(&q3, &opts).is_some());
    }

    #[test]
    fn dependencies_are_constant_rels_or_none() {
        let mut db = Database::new();
        db.add("A", "R", "B");
        let q = parse("(?x, R, ?y) & (?y, R, ?z)", db.store_interner_mut()).unwrap();
        let r = db.store().lookup_symbol("R").unwrap();
        assert_eq!(plan_dependencies(&q), Some([r].into_iter().collect()));
        let q = parse("(?x, ?r, ?y)", db.store_interner_mut()).unwrap();
        assert_eq!(plan_dependencies(&q), None);
        let q = parse("(?x, >, 5)", db.store_interner_mut()).unwrap();
        assert_eq!(plan_dependencies(&q), None);
    }
}
