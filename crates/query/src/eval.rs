//! Query evaluation against a [`FactView`].
//!
//! The value of a query (§2.7) is the set of tuples over its free
//! variables that satisfy the formula in the database closure.
//! Evaluation is bottom-up and **set-at-a-time**: conjunctions are
//! flattened and joined in the order fixed by a [`QueryPlan`] (see
//! [`crate::plan`]), with each step a hash join between the current
//! partial relation and the next conjunct's extension, keyed on their
//! shared variables. Atom extensions are probed through the store
//! indexes once per *distinct* join-key value, results are deduplicated
//! incrementally at every step, and existential subformulas evaluate by
//! semi-join projection pushdown — columns that no remaining conjunct
//! and no enclosing scope needs are never materialized. Relations are
//! column-oriented: a flat row-major `Vec<EntityId>` arena, not a set
//! of per-row allocations.
//!
//! The seed's binding-at-a-time nested-loop executor is retained behind
//! [`ExecStrategy::NestedLoop`] as the reference oracle the property
//! tests compare against (and as the E18 baseline).
//!
//! The universal quantifier uses active-domain semantics: `(∀x) A` holds
//! for a binding of the remaining variables iff `A` holds for *every
//! entity occurring in the closure* substituted for `x`. Because
//! division does not commute with projection (∀∃ ≠ ∃∀), pushdown is
//! disabled below `ForAll` — its body always materializes its full free
//! columns.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

use loosedb_engine::{Bindings, FactView, MathMatchError, Template, Term, Var};
use loosedb_store::{special, EntityId};

use crate::ast::{Formula, Query};
use crate::plan::{conj_infos, greedy_order, plan_query, GroupPlan, QueryPlan, ESTIMATE_CAP};

/// How conjuncts are ordered during planning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum AtomOrdering {
    /// Most-bound-first with selectivity tie-breaks (the planner).
    #[default]
    Greedy,
    /// Exactly as written (baseline for experiment E6).
    Syntactic,
}

/// How a conjunction is executed once ordered.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ExecStrategy {
    /// Per-group choice between the two executors below, made by the
    /// planner's cost model from capped extent estimates and the
    /// active-domain size (see `plan.rs`) and recorded in the cached
    /// plan. Groups whose plan is missing or stale run as `HashJoin` —
    /// the safe-at-scale executor.
    #[default]
    Adaptive,
    /// Set-at-a-time: hash joins over column-oriented relations with
    /// incremental deduplication and semi-join projection pushdown.
    HashJoin,
    /// The seed's binding-at-a-time nested loops, kept as the reference
    /// oracle and the E18 baseline.
    NestedLoop,
}

/// Whether large hash-join steps are partitioned by join-key hash
/// across the shared closure worker pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ParallelMode {
    /// Cost-gated: partition only when the build side has enough
    /// distinct keys and the pool has more than one thread, so small
    /// (e.g. two-atom) joins never pay scatter/merge overhead.
    #[default]
    Auto,
    /// Never partition.
    Off,
    /// Always partition, regardless of size: into `n` partitions
    /// (minimum 2), or the pool width when `n` is 0. On a single-core
    /// pool the partitions run inline, sequentially — so tests and CI
    /// exercise the partitioned code path on any machine.
    Force(usize),
}

/// Evaluation options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvalOptions {
    /// Conjunct ordering strategy.
    pub ordering: AtomOrdering,
    /// Join execution strategy.
    pub strategy: ExecStrategy,
    /// Abort when an intermediate result exceeds this many rows.
    pub max_rows: usize,
    /// Parallel-partitioning policy for hash-join steps.
    pub parallel: ParallelMode,
}

/// The process-wide default [`ParallelMode`], read once from
/// `LOOSEDB_PARALLEL_JOIN` (`force` / `off` / `auto`; unset is `Auto`).
/// An unrecognized value also falls back to `Auto`, but warns on stderr
/// once so a typo like `LOOSEDB_PARALLEL_JOIN=forced` doesn't silently
/// disable the partitioned path. The CI stress job uses `force` to drive
/// the equivalence proptests down the partitioned path on any hardware.
fn default_parallel_mode() -> ParallelMode {
    static MODE: std::sync::OnceLock<ParallelMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("LOOSEDB_PARALLEL_JOIN").as_deref() {
        Ok("force") => ParallelMode::Force(0),
        Ok("off") => ParallelMode::Off,
        Ok("auto") | Err(_) => ParallelMode::Auto,
        Ok(other) => {
            eprintln!(
                "loosedb: ignoring unrecognized LOOSEDB_PARALLEL_JOIN={other:?} \
                 (expected \"force\", \"off\" or \"auto\"); using auto"
            );
            ParallelMode::Auto
        }
    })
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            ordering: AtomOrdering::Greedy,
            strategy: ExecStrategy::Adaptive,
            max_rows: 1_000_000,
            parallel: default_parallel_mode(),
        }
    }
}

/// Errors during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A mathematical atom could not be enumerated with the bindings
    /// available (e.g. `(x, ≠, y)` with both sides free).
    Math(MathMatchError),
    /// An intermediate result exceeded [`EvalOptions::max_rows`].
    ResultTooLarge {
        /// The configured bound.
        limit: usize,
        /// How many rows had been produced when the check fired. The
        /// check runs inside the match loop, so this stays within one
        /// row of the limit for row-at-a-time production (padding unions
        /// report their up-front size estimate instead).
        produced: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Math(e) => write!(f, "{e}"),
            EvalError::ResultTooLarge { limit, produced } => {
                write!(f, "intermediate result exceeded {limit} rows ({produced} produced)")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<MathMatchError> for EvalError {
    fn from(e: MathMatchError) -> Self {
        EvalError::Math(e)
    }
}

/// The value of a query: named columns and a set of tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Answer {
    /// The free variables, in the query's declared order.
    pub columns: Vec<Var>,
    /// Display names matching `columns`.
    pub names: Vec<String>,
    /// The satisfying tuples, ordered.
    pub rows: BTreeSet<Vec<EntityId>>,
}

impl Answer {
    /// True if the query succeeded — a non-empty answer (probing treats
    /// the empty answer as *failure*, §5).
    pub fn succeeded(&self) -> bool {
        !self.rows.is_empty()
    }

    /// For a proposition (no free variables): its truth value.
    pub fn is_true(&self) -> bool {
        self.succeeded()
    }

    /// Number of answer tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values of a single-column answer.
    pub fn single_column(&self) -> Option<Vec<EntityId>> {
        if self.columns.len() == 1 {
            Some(self.rows.iter().map(|row| row[0]).collect())
        } else {
            None
        }
    }

    /// Renders the answer as a simple table.
    pub fn render(&self, interner: &loosedb_store::Interner) -> String {
        if self.columns.is_empty() {
            return if self.is_true() { "true".to_string() } else { "false".to_string() };
        }
        let mut out = String::new();
        out.push_str(&self.names.join(" | "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|&e| interner.display(e)).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// Execution statistics for one evaluation: how many conjunction
/// groups ran under each effective executor, and how many parallel
/// partitions the hash joins fanned out to (0 when every step ran
/// sequentially). The `SharedSession` mirrors these into the
/// `query.plan.strategy_{hash,nested}` and `query.join.partitions`
/// registry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Conjunction groups executed set-at-a-time (hash joins).
    pub strategy_hash: u64,
    /// Conjunction groups executed binding-at-a-time (nested loops).
    pub strategy_nested: u64,
    /// Parallel partitions spawned across all hash-join steps.
    pub partitions: u64,
}

/// Evaluates a query with default options.
pub fn eval(query: &Query, view: &impl FactView) -> Result<Answer, EvalError> {
    eval_with(query, view, EvalOptions::default())
}

/// Evaluates a query with explicit options: plans, then executes.
pub fn eval_with(
    query: &Query,
    view: &impl FactView,
    opts: EvalOptions,
) -> Result<Answer, EvalError> {
    let plan = plan_query(query, view, &opts);
    eval_planned(query, view, opts, &plan)
}

/// Plans and executes, returning both the answer and the plan (for
/// callers that memoize plans, e.g. the `SharedSession` plan cache).
pub fn plan_and_eval(
    query: &Query,
    view: &impl FactView,
    opts: EvalOptions,
) -> Result<(Answer, QueryPlan), EvalError> {
    let plan = plan_query(query, view, &opts);
    let answer = eval_planned(query, view, opts, &plan)?;
    Ok((answer, plan))
}

/// Like [`plan_and_eval`], additionally returning the execution
/// statistics.
pub fn plan_and_eval_stats(
    query: &Query,
    view: &impl FactView,
    opts: EvalOptions,
) -> Result<(Answer, QueryPlan, EvalStats), EvalError> {
    let plan = plan_query(query, view, &opts);
    let (answer, stats) = eval_planned_stats(query, view, opts, &plan)?;
    Ok((answer, plan, stats))
}

/// Executes a query under a previously built (possibly cached) plan,
/// issuing no planning probes. A plan that no longer matches the
/// formula shape falls back to syntactic order per group — replay is a
/// performance contract, never a correctness one.
pub fn eval_planned(
    query: &Query,
    view: &impl FactView,
    opts: EvalOptions,
    plan: &QueryPlan,
) -> Result<Answer, EvalError> {
    eval_planned_stats(query, view, opts, plan).map(|(answer, _)| answer)
}

/// Like [`eval_planned`], additionally returning the execution
/// statistics ([`EvalStats`]).
pub fn eval_planned_stats(
    query: &Query,
    view: &impl FactView,
    opts: EvalOptions,
    plan: &QueryPlan,
) -> Result<(Answer, EvalStats), EvalError> {
    let mut span = loosedb_obs::span!("query.execute", free_vars = query.free.len());
    // Columns anything above the formula can observe: the declared
    // answer columns. Everything else is fair game for pushdown.
    let formula_free = query.formula.free_vars();
    let needed_set: BTreeSet<Var> =
        query.free.iter().copied().filter(|v| formula_free.contains(v)).collect();
    // Forced nested-loop (the oracle) disables pushdown wholesale;
    // under Adaptive, groups the cost model sent down the nested path
    // project back to the needed columns afterwards, so pushdown stays
    // observable-equivalent.
    let needed = match opts.strategy {
        ExecStrategy::HashJoin | ExecStrategy::Adaptive => Some(&needed_set),
        ExecStrategy::NestedLoop => None,
    };
    let mut cursor = 0usize;
    let mut stats = EvalStats::default();
    let rel = eval_formula(&query.formula, view, &opts, needed, plan, &mut cursor, &mut stats)?;
    // Project to the declared free-variable order.
    let positions: Vec<Option<usize>> = query.free.iter().map(|v| rel.col_pos(*v)).collect();
    let mut rows = BTreeSet::new();
    for i in 0..rel.rows {
        let row = rel.row(i);
        let projected: Vec<EntityId> =
            positions.iter().map(|p| p.map(|j| row[j]).unwrap_or(special::TOP)).collect();
        rows.insert(projected);
    }
    let names = query.free.iter().map(|v| query.var_name(*v).to_string()).collect();
    span.record("rows", rows.len());
    Ok((Answer { columns: query.free.clone(), names, rows }, stats))
}

/// Renders the evaluation plan for a query without executing it: the
/// order the greedy planner would process conjuncts in, with boundness,
/// the capped selectivity estimate, and the hash-join key columns at
/// each step. The paper's user "zooms" with queries; this is the
/// systems-side view of what a zoom costs.
pub fn explain_plan(query: &Query, view: &impl FactView) -> String {
    let mut out = String::new();
    explain_formula(&query.formula, query, view, 0, &mut out);
    out
}

fn explain_formula(
    f: &Formula,
    query: &Query,
    view: &impl FactView,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    if f.is_true_sentinel() {
        out.push_str(&format!("{indent}TRUE\n"));
        return;
    }
    match f {
        Formula::Atom(_) | Formula::And(..) => {
            let conjuncts = flatten_conjuncts(f);
            if conjuncts.is_empty() {
                out.push_str(&format!("{indent}TRUE\n"));
                return;
            }
            out.push_str(&format!("{indent}join ({} conjuncts, greedy order):\n", conjuncts.len()));
            let infos = conj_infos(&conjuncts, view);
            let (order, keys) = greedy_order(&infos, AtomOrdering::Greedy);
            let mut covered: BTreeSet<Var> = BTreeSet::new();
            for (step, &ci) in order.iter().enumerate() {
                let key_note = if keys[step].is_empty() {
                    String::new()
                } else {
                    let names: Vec<String> =
                        keys[step].iter().map(|v| format!("?{}", query.var_name(*v))).collect();
                    format!(" [key {}]", names.join(" "))
                };
                match conjuncts[ci] {
                    Formula::Atom(tpl) => {
                        let bound = tpl
                            .terms()
                            .into_iter()
                            .filter(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => covered.contains(v),
                            })
                            .count();
                        let est = infos[ci].estimate;
                        let est = if est >= ESTIMATE_CAP {
                            ">=1024".to_string()
                        } else {
                            est.to_string()
                        };
                        out.push_str(&format!(
                            "{indent}  {}. {}   [bound {bound}/3, const-est {est}]{key_note}\n",
                            step + 1,
                            render_template(tpl, query, view.interner()),
                        ));
                        covered.extend(tpl.vars());
                    }
                    other => {
                        out.push_str(&format!("{indent}  {}. subplan:{key_note}\n", step + 1));
                        explain_formula(other, query, view, depth + 2, out);
                        covered.extend(other.free_vars());
                    }
                }
            }
        }
        Formula::Or(a, b) => {
            out.push_str(&format!("{indent}union:\n"));
            explain_formula(a, query, view, depth + 1, out);
            explain_formula(b, query, view, depth + 1, out);
        }
        Formula::Exists(v, a) => {
            out.push_str(&format!("{indent}project out ?{}:\n", query.var_name(*v)));
            explain_formula(a, query, view, depth + 1, out);
        }
        Formula::ForAll(v, a) => {
            out.push_str(&format!(
                "{indent}divide by active domain over ?{}:\n",
                query.var_name(*v)
            ));
            explain_formula(a, query, view, depth + 1, out);
        }
    }
}

fn render_template(tpl: &Template, query: &Query, interner: &loosedb_store::Interner) -> String {
    let term = |t: Term| match t {
        Term::Const(e) => interner.display(e),
        Term::Var(v) if query.var_name(v) == "_" => "*".to_string(),
        Term::Var(v) => format!("?{}", query.var_name(v)),
    };
    format!("({}, {}, {})", term(tpl.s), term(tpl.r), term(tpl.t))
}

/// An intermediate relation, column-oriented: named columns over a flat
/// row-major arena. `data.len() == cols.len() * rows` always; a
/// zero-arity relation with one row is "true", with none "false".
#[derive(Clone, Debug)]
struct Rel {
    cols: Vec<Var>,
    data: Vec<EntityId>,
    rows: usize,
}

impl Rel {
    fn truth(value: bool) -> Rel {
        Rel { cols: Vec::new(), data: Vec::new(), rows: value as usize }
    }

    fn empty(cols: Vec<Var>) -> Rel {
        Rel { cols, data: Vec::new(), rows: 0 }
    }

    fn row(&self, i: usize) -> &[EntityId] {
        let a = self.cols.len();
        &self.data[i * a..(i + 1) * a]
    }

    fn col_pos(&self, v: Var) -> Option<usize> {
        self.cols.iter().position(|c| *c == v)
    }

    /// Projects to a subset of the columns (in the given order),
    /// deduplicating the surviving rows.
    fn project_to(&self, keep: &[Var]) -> Rel {
        let pos: Vec<usize> =
            keep.iter().map(|v| self.col_pos(*v).expect("projection column present")).collect();
        let mut out = Rel::empty(keep.to_vec());
        let mut dedup = RowDedup::default();
        for i in 0..self.rows {
            let row = self.row(i);
            for &p in &pos {
                out.data.push(row[p]);
            }
            dedup.commit(&mut out);
        }
        out
    }

    /// Removes one column (existential projection), if present.
    fn project_out(self, v: Var) -> Rel {
        if self.col_pos(v).is_none() {
            return self;
        }
        let keep: Vec<Var> = self.cols.iter().copied().filter(|c| *c != v).collect();
        self.project_to(&keep)
    }
}

/// Incremental row deduplication over a [`Rel`] arena: a hash-bucketed
/// index of committed row numbers. The caller stages a candidate row at
/// the arena tail, then [`RowDedup::commit`] either accepts it (row
/// count advances) or truncates it away. No per-row allocation.
#[derive(Default)]
struct RowDedup {
    buckets: HashMap<u64, Vec<u32>>,
}

fn hash_row(row: &[EntityId]) -> u64 {
    // FNV-1a with an extra xorshift mix; rows are short (join arity).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in row {
        h ^= e.0 as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 29;
    h
}

impl RowDedup {
    /// Commits the staged row at the tail of `rel.data`. Returns true if
    /// the row was new (kept), false if it was a duplicate (truncated).
    fn commit(&mut self, rel: &mut Rel) -> bool {
        let arity = rel.cols.len();
        let start = rel.rows * arity;
        debug_assert_eq!(rel.data.len(), start + arity);
        let h = hash_row(&rel.data[start..]);
        let bucket = self.buckets.entry(h).or_default();
        for &r in bucket.iter() {
            let rs = r as usize * arity;
            if rel.data[rs..rs + arity] == rel.data[start..start + arity] {
                rel.data.truncate(start);
                return false;
            }
        }
        bucket.push(rel.rows as u32);
        rel.rows += 1;
        true
    }
}

/// Flattens nested conjunctions into a conjunct list, dropping TRUE
/// sentinels (they are identity elements of conjunction). Shared with
/// the planner so plan groups and evaluation groups line up.
pub(crate) fn flatten_conjuncts(f: &Formula) -> Vec<&Formula> {
    fn rec<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
        match f {
            Formula::And(a, b) => {
                rec(a, out);
                rec(b, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    rec(f, &mut out);
    out.retain(|c| !c.is_true_sentinel());
    out
}

/// True if `order` is a permutation of `0..n` (a replayable group plan).
fn valid_order(order: &[usize], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    order.iter().all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
}

/// A conjunct during join execution.
enum Conjunct<'f> {
    Atom(&'f Template),
    Rel(Rel),
}

#[allow(clippy::too_many_arguments)]
fn eval_formula(
    f: &Formula,
    view: &impl FactView,
    opts: &EvalOptions,
    needed: Option<&BTreeSet<Var>>,
    plan: &QueryPlan,
    cursor: &mut usize,
    stats: &mut EvalStats,
) -> Result<Rel, EvalError> {
    if f.is_true_sentinel() {
        return Ok(Rel::truth(true));
    }
    match f {
        Formula::Atom(_) | Formula::And(..) => {
            let conjuncts = flatten_conjuncts(f);
            if conjuncts.is_empty() {
                return Ok(Rel::truth(true));
            }
            let group = plan.groups().get(*cursor);
            *cursor += 1;
            // The effective executor: forced options win; under
            // Adaptive the plan's per-group cost decision applies, and
            // a missing or stale group defaults to the hash executor.
            let effective = match opts.strategy {
                ExecStrategy::Adaptive => match group.map(|g| g.strategy) {
                    Some(ExecStrategy::NestedLoop) => ExecStrategy::NestedLoop,
                    _ => ExecStrategy::HashJoin,
                },
                forced => forced,
            };
            match effective {
                ExecStrategy::NestedLoop => {
                    stats.strategy_nested += 1;
                    let rel = eval_conjunction_nested(
                        &conjuncts, view, opts, group, plan, cursor, stats,
                    )?;
                    // The binding-at-a-time path always materializes the
                    // group full-width; under pushdown the enclosing
                    // scope expects the dropped columns gone.
                    match needed {
                        Some(nd) => {
                            let keep: Vec<Var> =
                                rel.cols.iter().copied().filter(|c| nd.contains(c)).collect();
                            if keep.len() < rel.cols.len() {
                                Ok(rel.project_to(&keep))
                            } else {
                                Ok(rel)
                            }
                        }
                        None => Ok(rel),
                    }
                }
                _ => {
                    stats.strategy_hash += 1;
                    eval_conjunction_hash(
                        &conjuncts, view, opts, needed, group, plan, cursor, stats,
                    )
                }
            }
        }
        Formula::Or(a, b) => {
            let left = eval_formula(a, view, opts, needed, plan, cursor, stats)?;
            let right = eval_formula(b, view, opts, needed, plan, cursor, stats)?;
            union(left, right, view, opts)
        }
        Formula::Exists(v, a) => match needed {
            // Pushdown: the body never materializes the quantified
            // column — `needed \ {v}` projects it out at the source.
            Some(n) => {
                let mut nb = n.clone();
                nb.remove(v);
                let rel = eval_formula(a, view, opts, Some(&nb), plan, cursor, stats)?;
                debug_assert!(rel.col_pos(*v).is_none());
                Ok(rel)
            }
            None => {
                let rel = eval_formula(a, view, opts, None, plan, cursor, stats)?;
                Ok(rel.project_out(*v))
            }
        },
        Formula::ForAll(v, a) => {
            // Division does not commute with projection (∀∃ ≠ ∃∀): the
            // body keeps its full free columns.
            let rel = eval_formula(a, view, opts, None, plan, cursor, stats)?;
            let rel = forall(rel, *v, view.domain());
            match needed {
                Some(n) => {
                    let keep: Vec<Var> =
                        rel.cols.iter().copied().filter(|c| n.contains(c)).collect();
                    if keep.len() < rel.cols.len() {
                        Ok(rel.project_to(&keep))
                    } else {
                        Ok(rel)
                    }
                }
                None => Ok(rel),
            }
        }
    }
}

/// Pre-evaluates the complex conjuncts of a group (disjunctions,
/// quantifiers) into relations, in flatten order so the plan-group
/// cursor stays aligned; atoms stay symbolic so joins can probe the
/// store indexes.
#[allow(clippy::too_many_arguments)]
fn materialize_conjuncts<'f>(
    conjuncts: &[&'f Formula],
    var_sets: &[BTreeSet<Var>],
    view: &impl FactView,
    opts: &EvalOptions,
    needed: Option<&BTreeSet<Var>>,
    plan: &QueryPlan,
    cursor: &mut usize,
    stats: &mut EvalStats,
) -> Result<Vec<Conjunct<'f>>, EvalError> {
    let mut items: Vec<Conjunct<'f>> = Vec::with_capacity(conjuncts.len());
    for (i, c) in conjuncts.iter().enumerate() {
        match c {
            Formula::Atom(tpl) => items.push(Conjunct::Atom(tpl)),
            other => {
                // The subrelation must keep what the enclosing scope
                // needs plus whatever joins against the other conjuncts;
                // everything else is projected out at the source.
                let sub_needed: Option<BTreeSet<Var>> = needed.map(|nd| {
                    let mut keep = nd.clone();
                    for (j, vs) in var_sets.iter().enumerate() {
                        if j != i {
                            keep.extend(vs.iter().copied());
                        }
                    }
                    keep
                });
                let rel =
                    eval_formula(other, view, opts, sub_needed.as_ref(), plan, cursor, stats)?;
                items.push(Conjunct::Rel(rel));
            }
        }
    }
    Ok(items)
}

/// Set-at-a-time conjunction: hash-joins the conjuncts in plan order.
#[allow(clippy::too_many_arguments)]
fn eval_conjunction_hash(
    conjuncts: &[&Formula],
    view: &impl FactView,
    opts: &EvalOptions,
    needed: Option<&BTreeSet<Var>>,
    group: Option<&GroupPlan>,
    plan: &QueryPlan,
    cursor: &mut usize,
    stats: &mut EvalStats,
) -> Result<Rel, EvalError> {
    let n = conjuncts.len();
    let var_sets: Vec<BTreeSet<Var>> = conjuncts.iter().map(|c| c.free_vars()).collect();
    let items =
        materialize_conjuncts(conjuncts, &var_sets, view, opts, needed, plan, cursor, stats)?;
    let order: Vec<usize> = match group {
        Some(g) if valid_order(&g.order, n) => g.order.clone(),
        _ => (0..n).collect(),
    };

    let mut cur = Rel::truth(true);
    for (step, &ci) in order.iter().enumerate() {
        if cur.rows == 0 {
            break;
        }
        cur = match &items[ci] {
            Conjunct::Atom(tpl) => join_atom(cur, tpl, view, opts, stats)?,
            Conjunct::Rel(rel) => join_rel(cur, rel, opts)?,
        };
        if let Some(nd) = needed {
            // Semi-join pushdown: drop columns no remaining conjunct
            // and no enclosing scope references. This is what keeps
            // chain-query intermediates thin — and small, since the
            // projection dedups.
            let mut keep_set: BTreeSet<Var> = nd.clone();
            for &cj in &order[step + 1..] {
                match &items[cj] {
                    Conjunct::Atom(tpl) => keep_set.extend(tpl.vars()),
                    Conjunct::Rel(rel) => keep_set.extend(rel.cols.iter().copied()),
                }
            }
            let keep: Vec<Var> =
                cur.cols.iter().copied().filter(|c| keep_set.contains(c)).collect();
            if keep.len() < cur.cols.len() {
                cur = cur.project_to(&keep);
            }
        }
    }

    // Final shape: the group's free variables (∩ needed), sorted.
    let mut final_set: BTreeSet<Var> = BTreeSet::new();
    for vs in &var_sets {
        final_set.extend(vs.iter().copied());
    }
    if let Some(nd) = needed {
        final_set.retain(|v| nd.contains(v));
    }
    let final_cols: Vec<Var> = final_set.into_iter().collect();
    if cur.rows == 0 {
        return Ok(Rel::empty(final_cols));
    }
    if cur.cols == final_cols {
        return Ok(cur);
    }
    Ok(cur.project_to(&final_cols))
}

/// Distinct-key count above which [`ParallelMode::Auto`] partitions a
/// join step across the worker pool. Below this, scatter + per-partition
/// hash-map setup costs more than the join itself — in particular the
/// two-atom case (one key column, small build) always stays sequential.
const PARALLEL_KEY_THRESHOLD: usize = 1024;

/// How many partitions a join step with `distinct_keys` probe keys
/// should fan out to; 1 means the sequential path.
fn partition_count(mode: ParallelMode, distinct_keys: usize) -> usize {
    match mode {
        ParallelMode::Off => 1,
        ParallelMode::Force(0) => loosedb_engine::pool::workers().max(2),
        ParallelMode::Force(n) => n.max(2),
        ParallelMode::Auto => {
            let workers = loosedb_engine::pool::workers();
            if workers > 1 && distinct_keys >= PARALLEL_KEY_THRESHOLD {
                workers
            } else {
                1
            }
        }
    }
}

/// One hash-join step against an atom's extension. The store is probed
/// once per *distinct* value of the join key (the template's variables
/// already bound in `cur`), not once per partial row; the matches are
/// grouped by key and the join streams `cur` against the groups.
///
/// Large steps are partitioned by join-key hash across the shared
/// closure worker pool (see [`ParallelMode`]); keyless steps (the first
/// atom, cross products) always run sequentially — there is nothing to
/// partition on.
fn join_atom(
    cur: Rel,
    tpl: &Template,
    view: &impl FactView,
    opts: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<Rel, EvalError> {
    // Distinct template variables in position order.
    let mut tvars: Vec<Var> = Vec::new();
    for v in tpl.vars() {
        if !tvars.contains(&v) {
            tvars.push(v);
        }
    }
    let key_vars: Vec<Var> = tvars.iter().copied().filter(|v| cur.col_pos(*v).is_some()).collect();
    let new_vars: Vec<Var> = tvars.iter().copied().filter(|v| cur.col_pos(*v).is_none()).collect();
    let key_pos: Vec<usize> =
        key_vars.iter().map(|v| cur.col_pos(*v).expect("key var present")).collect();

    let mut out_cols = cur.cols.clone();
    out_cols.extend(new_vars.iter().copied());
    if cur.rows == 0 {
        return Ok(Rel::empty(out_cols));
    }

    // 1. The distinct join-key values present in `cur`.
    let karity = key_vars.len();
    let mut keys = Rel::empty(key_vars.clone());
    if karity == 0 {
        keys.rows = 1; // the single (empty) probe
    } else {
        let mut kd = RowDedup::default();
        for i in 0..cur.rows {
            let row = cur.row(i);
            for &p in &key_pos {
                keys.data.push(row[p]);
            }
            kd.commit(&mut keys);
        }
    }

    // Partitioned execution for large keyed steps: scatter the distinct
    // keys and the probe rows by join-key hash, join each partition
    // independently on the worker pool, concatenate the arenas.
    let nparts = if karity == 0 { 1 } else { partition_count(opts.parallel, keys.rows) };
    if nparts > 1 {
        stats.partitions += nparts as u64;
        return join_atom_partitioned(
            &cur, tpl, view, opts, &keys, &key_vars, &new_vars, &key_pos, out_cols, nparts,
        );
    }

    // 2. One index probe per distinct key; match payloads grouped by key.
    let mut span =
        loosedb_obs::span!("query.join_atom", rows_in = cur.rows, distinct_keys = keys.rows);
    let npay = new_vars.len();
    let mut groups: HashMap<&[EntityId], (Vec<EntityId>, usize)> =
        HashMap::with_capacity(keys.rows);
    let mut produced = 0usize;
    for k in 0..keys.rows {
        let keyrow = &keys.data[k * karity..(k + 1) * karity];
        let mut b = Bindings::new();
        for (v, &val) in key_vars.iter().zip(keyrow) {
            b.bind(*v, val);
        }
        let pattern = tpl.to_pattern(&b);
        let mut payload: Vec<EntityId> = Vec::new();
        let mut count = 0usize;
        for fact in view.matches(pattern)? {
            let Some(b2) = tpl.unify(&fact, &b) else { continue };
            count += 1;
            produced += 1;
            if produced > opts.max_rows {
                return Err(EvalError::ResultTooLarge { limit: opts.max_rows, produced });
            }
            for v in &new_vars {
                payload.push(b2.get(*v).expect("template variable bound by unify"));
            }
        }
        groups.insert(keyrow, (payload, count));
    }

    // 3. Hash join `cur` against the grouped matches, deduplicating as
    //    rows land in the output arena.
    let mut out = Rel::empty(out_cols);
    let mut dedup = RowDedup::default();
    let mut scratch: Vec<EntityId> = Vec::with_capacity(karity);
    for i in 0..cur.rows {
        let row = cur.row(i);
        scratch.clear();
        for &p in &key_pos {
            scratch.push(row[p]);
        }
        let Some((payload, count)) = groups.get(scratch.as_slice()) else { continue };
        if npay == 0 {
            // Semi-join: the atom adds no columns, it only filters.
            if *count > 0 {
                out.data.extend_from_slice(row);
                if dedup.commit(&mut out) && out.rows > opts.max_rows {
                    return Err(EvalError::ResultTooLarge {
                        limit: opts.max_rows,
                        produced: out.rows,
                    });
                }
            }
        } else {
            for chunk in payload.chunks(npay) {
                out.data.extend_from_slice(row);
                out.data.extend_from_slice(chunk);
                if dedup.commit(&mut out) && out.rows > opts.max_rows {
                    return Err(EvalError::ResultTooLarge {
                        limit: opts.max_rows,
                        produced: out.rows,
                    });
                }
            }
        }
    }
    span.record("produced", produced);
    span.record("rows_out", out.rows);
    Ok(out)
}

/// The partitioned variant of [`join_atom`]: both the distinct keys and
/// the probe rows are scattered by `hash_row(key columns) % nparts`, so
/// every probe row lands in the same partition as its key — and, since
/// equal output rows embed equal key values, duplicates can only
/// collide *within* a partition. Per-partition [`RowDedup`] is
/// therefore global dedup, and the merge is plain arena concatenation
/// with no re-hashing. The `max_rows` guard uses shared atomic
/// counters so the bound holds across partitions.
#[allow(clippy::too_many_arguments)]
fn join_atom_partitioned(
    cur: &Rel,
    tpl: &Template,
    view: &impl FactView,
    opts: &EvalOptions,
    keys: &Rel,
    key_vars: &[Var],
    new_vars: &[Var],
    key_pos: &[usize],
    out_cols: Vec<Var>,
    nparts: usize,
) -> Result<Rel, EvalError> {
    let karity = key_vars.len();
    let mut span = loosedb_obs::span!(
        "query.join_atom",
        rows_in = cur.rows,
        distinct_keys = keys.rows,
        partitions = nparts
    );

    // Scatter phase (sequential, cheap): indices only, no row copying.
    let mut part_keys: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    for k in 0..keys.rows {
        let h = hash_row(&keys.data[k * karity..(k + 1) * karity]);
        part_keys[(h % nparts as u64) as usize].push(k as u32);
    }
    let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    let mut scratch: Vec<EntityId> = Vec::with_capacity(karity);
    for i in 0..cur.rows {
        let row = cur.row(i);
        scratch.clear();
        for &p in key_pos {
            scratch.push(row[p]);
        }
        let h = hash_row(&scratch);
        part_rows[(h % nparts as u64) as usize].push(i as u32);
    }

    let produced = AtomicUsize::new(0);
    let committed = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<Rel, EvalError>>> = Vec::new();
    results.resize_with(nparts, || None);
    {
        let out_cols = &out_cols;
        let produced = &produced;
        let committed = &committed;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
            .iter_mut()
            .enumerate()
            .map(|(p, slot)| {
                let my_keys = std::mem::take(&mut part_keys[p]);
                let my_rows = std::mem::take(&mut part_rows[p]);
                Box::new(move || {
                    *slot = Some(join_partition(
                        p, cur, tpl, view, opts, keys, key_vars, new_vars, key_pos, out_cols,
                        &my_keys, &my_rows, produced, committed,
                    ));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        loosedb_engine::pool::run_scoped(tasks);
    }

    // Merge: concatenate the partition arenas (same column layout, no
    // cross-partition duplicates by construction).
    let mut out = Rel::empty(out_cols);
    for slot in results {
        let part = slot.expect("partition task completed")?;
        out.data.extend_from_slice(&part.data);
        out.rows += part.rows;
    }
    span.record("produced", produced.load(Ordering::Relaxed));
    span.record("rows_out", out.rows);
    Ok(out)
}

/// One partition of a partitioned atom join: probe the store for this
/// partition's distinct keys, then hash-join this partition's probe
/// rows against the grouped matches, deduplicating locally.
#[allow(clippy::too_many_arguments)]
fn join_partition(
    part: usize,
    cur: &Rel,
    tpl: &Template,
    view: &impl FactView,
    opts: &EvalOptions,
    keys: &Rel,
    key_vars: &[Var],
    new_vars: &[Var],
    key_pos: &[usize],
    out_cols: &[Var],
    my_keys: &[u32],
    my_rows: &[u32],
    produced: &AtomicUsize,
    committed: &AtomicUsize,
) -> Result<Rel, EvalError> {
    let karity = key_vars.len();
    let npay = new_vars.len();
    let mut span = loosedb_obs::span!(
        "query.join_partition",
        partition = part,
        distinct_keys = my_keys.len(),
        rows_in = my_rows.len()
    );
    let mut groups: HashMap<&[EntityId], (Vec<EntityId>, usize)> =
        HashMap::with_capacity(my_keys.len());
    for &k in my_keys {
        let k = k as usize;
        let keyrow = &keys.data[k * karity..(k + 1) * karity];
        let mut b = Bindings::new();
        for (v, &val) in key_vars.iter().zip(keyrow) {
            b.bind(*v, val);
        }
        let pattern = tpl.to_pattern(&b);
        let mut payload: Vec<EntityId> = Vec::new();
        let mut count = 0usize;
        for fact in view.matches(pattern)? {
            let Some(b2) = tpl.unify(&fact, &b) else { continue };
            count += 1;
            let total = produced.fetch_add(1, Ordering::Relaxed) + 1;
            if total > opts.max_rows {
                return Err(EvalError::ResultTooLarge { limit: opts.max_rows, produced: total });
            }
            for v in new_vars {
                payload.push(b2.get(*v).expect("template variable bound by unify"));
            }
        }
        groups.insert(keyrow, (payload, count));
    }

    let mut out = Rel::empty(out_cols.to_vec());
    let mut dedup = RowDedup::default();
    let mut scratch: Vec<EntityId> = Vec::with_capacity(karity);
    for &i in my_rows {
        let row = cur.row(i as usize);
        scratch.clear();
        for &p in key_pos {
            scratch.push(row[p]);
        }
        let Some((payload, count)) = groups.get(scratch.as_slice()) else { continue };
        if npay == 0 {
            // Semi-join: the atom adds no columns, it only filters.
            if *count > 0 {
                out.data.extend_from_slice(row);
                if dedup.commit(&mut out) {
                    let total = committed.fetch_add(1, Ordering::Relaxed) + 1;
                    if total > opts.max_rows {
                        return Err(EvalError::ResultTooLarge {
                            limit: opts.max_rows,
                            produced: total,
                        });
                    }
                }
            }
        } else {
            for chunk in payload.chunks(npay) {
                out.data.extend_from_slice(row);
                out.data.extend_from_slice(chunk);
                if dedup.commit(&mut out) {
                    let total = committed.fetch_add(1, Ordering::Relaxed) + 1;
                    if total > opts.max_rows {
                        return Err(EvalError::ResultTooLarge {
                            limit: opts.max_rows,
                            produced: total,
                        });
                    }
                }
            }
        }
    }
    span.record("rows_out", out.rows);
    Ok(out)
}

/// One hash-join step against a materialized relation (a pre-evaluated
/// complex conjunct), keyed on the shared columns; a genuine cross
/// product only when there are none.
fn join_rel(cur: Rel, sub: &Rel, opts: &EvalOptions) -> Result<Rel, EvalError> {
    let shared: Vec<Var> = sub.cols.iter().copied().filter(|v| cur.col_pos(*v).is_some()).collect();
    let cur_pos: Vec<usize> =
        shared.iter().map(|v| cur.col_pos(*v).expect("shared in cur")).collect();
    let sub_pos: Vec<usize> =
        shared.iter().map(|v| sub.col_pos(*v).expect("shared in sub")).collect();
    let pay_vars: Vec<Var> =
        sub.cols.iter().copied().filter(|v| cur.col_pos(*v).is_none()).collect();
    let pay_pos: Vec<usize> =
        pay_vars.iter().map(|v| sub.col_pos(*v).expect("payload in sub")).collect();

    let mut out_cols = cur.cols.clone();
    out_cols.extend(pay_vars.iter().copied());
    if cur.rows == 0 || sub.rows == 0 {
        return Ok(Rel::empty(out_cols));
    }

    // Build side: sub rows grouped by shared-column values.
    let mut span = loosedb_obs::span!("query.join_rel", rows_in = cur.rows, build_rows = sub.rows);
    let mut map: HashMap<Vec<EntityId>, Vec<u32>> = HashMap::new();
    for j in 0..sub.rows {
        let row = sub.row(j);
        let key: Vec<EntityId> = sub_pos.iter().map(|&p| row[p]).collect();
        map.entry(key).or_default().push(j as u32);
    }

    // Probe side: stream `cur`.
    let mut out = Rel::empty(out_cols);
    let mut dedup = RowDedup::default();
    let mut scratch: Vec<EntityId> = Vec::with_capacity(cur_pos.len());
    for i in 0..cur.rows {
        let row = cur.row(i);
        scratch.clear();
        for &p in &cur_pos {
            scratch.push(row[p]);
        }
        let Some(matches) = map.get(scratch.as_slice()) else { continue };
        for &j in matches {
            let srow = sub.row(j as usize);
            out.data.extend_from_slice(row);
            for &p in &pay_pos {
                out.data.push(srow[p]);
            }
            if dedup.commit(&mut out) && out.rows > opts.max_rows {
                return Err(EvalError::ResultTooLarge { limit: opts.max_rows, produced: out.rows });
            }
        }
    }
    span.record("rows_out", out.rows);
    Ok(out)
}

/// The retained binding-at-a-time oracle: nested-loop joins with
/// per-partial index probes, as the seed shipped it (modulo the
/// in-loop `max_rows` check). Property tests compare the hash-join
/// executor against this path.
#[allow(clippy::too_many_arguments)]
fn eval_conjunction_nested(
    conjuncts: &[&Formula],
    view: &impl FactView,
    opts: &EvalOptions,
    group: Option<&GroupPlan>,
    plan: &QueryPlan,
    cursor: &mut usize,
    stats: &mut EvalStats,
) -> Result<Rel, EvalError> {
    let n = conjuncts.len();
    let var_sets: Vec<BTreeSet<Var>> = conjuncts.iter().map(|c| c.free_vars()).collect();
    let items = materialize_conjuncts(conjuncts, &var_sets, view, opts, None, plan, cursor, stats)?;
    let order: Vec<usize> = match group {
        Some(g) if valid_order(&g.order, n) => g.order.clone(),
        _ => (0..n).collect(),
    };

    let mut partials: Vec<Bindings> = vec![Bindings::new()];
    for &ci in &order {
        if partials.is_empty() {
            break;
        }
        let mut extended: Vec<Bindings> = Vec::new();
        match &items[ci] {
            Conjunct::Atom(tpl) => {
                for b in &partials {
                    let pattern = tpl.to_pattern(b);
                    for fact in view.matches(pattern)? {
                        if let Some(b2) = tpl.unify(&fact, b) {
                            extended.push(b2);
                            if extended.len() > opts.max_rows {
                                return Err(EvalError::ResultTooLarge {
                                    limit: opts.max_rows,
                                    produced: extended.len(),
                                });
                            }
                        }
                    }
                }
            }
            Conjunct::Rel(rel) => {
                for b in &partials {
                    'row: for i in 0..rel.rows {
                        let row = rel.row(i);
                        let mut merged = b.clone();
                        for (col, &value) in rel.cols.iter().zip(row) {
                            match merged.get(*col) {
                                Some(existing) if existing != value => continue 'row,
                                Some(_) => {}
                                None => merged.bind(*col, value),
                            }
                        }
                        extended.push(merged);
                        if extended.len() > opts.max_rows {
                            return Err(EvalError::ResultTooLarge {
                                limit: opts.max_rows,
                                produced: extended.len(),
                            });
                        }
                    }
                }
            }
        }
        partials = extended;
    }

    let mut cols_set: BTreeSet<Var> = BTreeSet::new();
    for vs in &var_sets {
        cols_set.extend(vs.iter().copied());
    }
    let cols: Vec<Var> = cols_set.into_iter().collect();
    let mut out = Rel::empty(cols);
    let mut dedup = RowDedup::default();
    for b in &partials {
        for k in 0..out.cols.len() {
            let v = out.cols[k];
            out.data.push(b.get(v).expect("all conjunct variables bound after full join"));
        }
        dedup.commit(&mut out);
    }
    Ok(out)
}

/// Union with active-domain padding for heterogeneous columns.
fn union(a: Rel, b: Rel, view: &impl FactView, opts: &EvalOptions) -> Result<Rel, EvalError> {
    let cols: Vec<Var> =
        a.cols.iter().chain(b.cols.iter()).copied().collect::<BTreeSet<_>>().into_iter().collect();
    let arity = cols.len();
    let domain = view.domain();
    let mut out = Rel::empty(cols);
    let mut dedup = RowDedup::default();
    for rel in [&a, &b] {
        let src: Vec<Option<usize>> = out.cols.iter().map(|c| rel.col_pos(*c)).collect();
        let pad_positions: Vec<usize> =
            src.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(i, _)| i).collect();
        let pad_space =
            domain.len().checked_pow(pad_positions.len() as u32).unwrap_or(usize::MAX).max(1);
        let produced = rel.rows.saturating_mul(pad_space);
        if produced > opts.max_rows {
            return Err(EvalError::ResultTooLarge { limit: opts.max_rows, produced });
        }
        if rel.rows == 0 || (!pad_positions.is_empty() && domain.is_empty()) {
            continue;
        }
        let mut scratch: Vec<EntityId> = vec![special::TOP; arity];
        for i in 0..rel.rows {
            let row = rel.row(i);
            for (k, s) in src.iter().enumerate() {
                if let Some(j) = *s {
                    scratch[k] = row[j];
                }
            }
            // Odometer over the padded positions' domain assignments.
            let mut odometer = vec![0usize; pad_positions.len()];
            loop {
                for (k, &p) in pad_positions.iter().enumerate() {
                    scratch[p] = domain[odometer[k]];
                }
                out.data.extend_from_slice(&scratch);
                if dedup.commit(&mut out) && out.rows > opts.max_rows {
                    return Err(EvalError::ResultTooLarge {
                        limit: opts.max_rows,
                        produced: out.rows,
                    });
                }
                let mut k = 0;
                while k < odometer.len() {
                    odometer[k] += 1;
                    if odometer[k] < domain.len() {
                        break;
                    }
                    odometer[k] = 0;
                    k += 1;
                }
                if k == odometer.len() {
                    break;
                }
            }
        }
    }
    Ok(out)
}

/// Universal quantification: keep groups covering the whole domain.
fn forall(rel: Rel, v: Var, domain: &[EntityId]) -> Rel {
    let Some(vi) = rel.col_pos(v) else {
        // v not free in the body: (∀x) A ≡ A over a non-empty domain;
        // over the empty domain the quantification is vacuously true,
        // which for a formula with no x-dependence is A as well.
        return rel;
    };
    let cols: Vec<Var> = rel.cols.iter().copied().filter(|c| *c != v).collect();
    let mut groups: HashMap<Vec<EntityId>, BTreeSet<EntityId>> = HashMap::new();
    for i in 0..rel.rows {
        let row = rel.row(i);
        let mut key: Vec<EntityId> = Vec::with_capacity(row.len() - 1);
        key.extend_from_slice(&row[..vi]);
        key.extend_from_slice(&row[vi + 1..]);
        groups.entry(key).or_default().insert(row[vi]);
    }
    let mut out = Rel::empty(cols);
    for (key, values) in groups {
        if domain.iter().all(|d| values.contains(d)) {
            out.data.extend_from_slice(&key);
            out.rows += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use loosedb_engine::Database;

    /// Evaluates a textual query against a database built by `build`.
    fn run(build: impl FnOnce(&mut Database), src: &str) -> (Answer, Database) {
        let mut db = Database::new();
        build(&mut db);
        let query = parse(src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        let answer = eval(&query, &view).expect("eval");
        drop(view);
        (answer, db)
    }

    fn names(db: &Database, answer: &Answer) -> Vec<Vec<String>> {
        answer.rows.iter().map(|row| row.iter().map(|&e| db.display(e)).collect()).collect()
    }

    /// Every ordering × strategy combination, plus the partitioned
    /// executor forced on.
    fn all_options(max_rows: usize) -> Vec<EvalOptions> {
        let base = EvalOptions { max_rows, parallel: ParallelMode::Off, ..EvalOptions::default() };
        let mut out = Vec::new();
        for ordering in [AtomOrdering::Greedy, AtomOrdering::Syntactic] {
            for strategy in
                [ExecStrategy::Adaptive, ExecStrategy::HashJoin, ExecStrategy::NestedLoop]
            {
                out.push(EvalOptions { ordering, strategy, ..base });
            }
        }
        out.push(EvalOptions {
            strategy: ExecStrategy::HashJoin,
            parallel: ParallelMode::Force(2),
            ..base
        });
        out
    }

    #[test]
    fn single_template_single_free_var() {
        let (answer, db) = run(
            |db| {
                db.add("WAR-AND-PEACE", "isa", "BOOK");
                db.add("ULYSSES", "isa", "BOOK");
                db.add("JOHN", "isa", "PERSON");
            },
            "(?y, isa, BOOK)",
        );
        let got: std::collections::BTreeSet<Vec<String>> =
            names(&db, &answer).into_iter().collect();
        let expected: std::collections::BTreeSet<Vec<String>> =
            [vec!["WAR-AND-PEACE".to_string()], vec!["ULYSSES".to_string()]].into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn paper_self_citing_authors() {
        // §2.7: all authors who cite themselves.
        let (answer, db) = run(
            |db| {
                db.add("BOOK-A", "isa", "BOOK");
                db.add("BOOK-B", "isa", "BOOK");
                db.add("JOHN", "isa", "PERSON");
                db.add("MARY", "isa", "PERSON");
                db.add("BOOK-A", "CITES", "BOOK-A"); // self-citation
                db.add("BOOK-A", "AUTHOR", "JOHN");
                db.add("BOOK-B", "CITES", "BOOK-A");
                db.add("BOOK-B", "AUTHOR", "MARY");
            },
            "Q(?y) := exists ?x . (?x, isa, BOOK) & (?y, isa, PERSON) \
             & (?x, CITES, ?x) & (?x, AUTHOR, ?y)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["JOHN".to_string()]]);
    }

    #[test]
    fn paper_salary_query() {
        // §3.6: employees earning over 20000.
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "isa", "EMPLOYEE");
                db.add("JOHN", "EARNS", 25000i64);
                db.add("MARY", "isa", "EMPLOYEE");
                db.add("MARY", "EARNS", 18000i64);
            },
            "Q(?z) := exists ?y . (?z, isa, EMPLOYEE) & (?z, EARNS, ?y) & (?y, >, 20000)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["JOHN".to_string()]]);
    }

    #[test]
    fn proposition_queries() {
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
                db.add("FELIX", "LIKES", "JOHN");
            },
            "(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)",
        );
        assert!(answer.is_true());

        let (answer, _) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
            },
            "(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)",
        );
        assert!(!answer.is_true());
    }

    #[test]
    fn negation_free_complement() {
        // §2.7: "all books whose author is not John" via ≠.
        let (answer, db) = run(
            |db| {
                db.add("BOOK-A", "isa", "BOOK");
                db.add("BOOK-B", "isa", "BOOK");
                db.add("BOOK-A", "AUTHOR", "JOHN");
                db.add("BOOK-B", "AUTHOR", "MARY");
            },
            "Q(?x) := exists ?y . (?x, isa, BOOK) & (?x, AUTHOR, ?y) & (?y, !=, JOHN)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["BOOK-B".to_string()]]);
    }

    #[test]
    fn disjunction_same_columns() {
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "LIKES", "OPERA");
                db.add("MARY", "LOVES", "OPERA");
            },
            "(?x, LIKES, OPERA) | (?x, LOVES, OPERA)",
        );
        let got = names(&db, &answer);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn forall_universal() {
        // Things loved by ALL students.
        let (answer, db) = run(
            |db| {
                db.add("TOM", "isa", "STUDENT-SET");
                db.add("SUE", "isa", "STUDENT-SET");
                db.add("TOM", "LOVES", "MUSIC");
                db.add("SUE", "LOVES", "MUSIC");
                db.add("TOM", "LOVES", "PIZZA");
            },
            // ∀x: if x is relevant at all... active-domain ∀ is strong:
            // every closure entity must love ?z. Build it explicitly:
            "Q(?z) := forall ?x . ((?x, LOVES, ?z) | (?x, NOT-LOVER, NOT-LOVER))",
        );
        // No entity set has everyone loving something here (the domain
        // includes STUDENT-SET, LOVES, ...), so the answer is empty —
        // demonstrating active-domain semantics.
        assert!(answer.is_empty());
        drop(db);
    }

    #[test]
    fn exists_projects() {
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "EARNS", 25000i64);
                db.add("MARY", "EARNS", 25000i64);
            },
            "exists ?x . (?x, EARNS, 25000)",
        );
        assert!(answer.is_true());
    }

    #[test]
    fn inference_visible_to_queries() {
        // Queries run against the closure, not the base facts.
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "isa", "EMPLOYEE");
                db.add("EMPLOYEE", "EARNS", "SALARY");
            },
            "(?x, EARNS, SALARY)",
        );
        let got = names(&db, &answer);
        assert!(got.contains(&vec!["JOHN".to_string()]));
        assert!(got.contains(&vec!["EMPLOYEE".to_string()]));
    }

    #[test]
    fn greedy_and_syntactic_agree() {
        let mut db = Database::new();
        for i in 0..20 {
            db.add(format!("P{i}"), "isa", "PERSON");
            db.add(format!("P{i}"), "EARNS", 1000 * i);
        }
        db.add("P5", "isa", "MANAGER-SET");
        let query = parse(
            "Q(?x) := exists ?y . (?x, isa, MANAGER-SET) & (?x, EARNS, ?y) & (?y, >=, 5000)",
            db.store_interner_mut(),
        )
        .unwrap();
        let view = db.view().unwrap();
        let greedy = eval_with(
            &query,
            &view,
            EvalOptions { ordering: AtomOrdering::Greedy, ..EvalOptions::default() },
        )
        .unwrap();
        let syntactic = eval_with(
            &query,
            &view,
            EvalOptions { ordering: AtomOrdering::Syntactic, ..EvalOptions::default() },
        )
        .unwrap();
        assert_eq!(greedy.rows, syntactic.rows);
        assert_eq!(greedy.len(), 1);
    }

    #[test]
    fn hash_join_and_nested_loop_agree_across_suite() {
        // The oracle check, inline edition: every strategy × ordering
        // combination must agree on a formula zoo (the proptest in
        // tests/query_equivalence.rs does this over random worlds).
        let build = |db: &mut Database| {
            db.add("BOOK-A", "isa", "BOOK");
            db.add("BOOK-B", "isa", "BOOK");
            db.add("BOOK-A", "AUTHOR", "JOHN");
            db.add("BOOK-B", "AUTHOR", "MARY");
            db.add("BOOK-A", "CITES", "BOOK-A");
            db.add("BOOK-B", "CITES", "BOOK-A");
            db.add("JOHN", "isa", "PERSON");
            db.add("MARY", "isa", "PERSON");
            db.add("JOHN", "EARNS", 25000i64);
            db.add("MARY", "EARNS", 18000i64);
        };
        let suite = [
            "(?x, isa, BOOK)",
            "(?x, isa, BOOK) & (?x, AUTHOR, ?y)",
            "Q(?y) := exists ?x . (?x, isa, BOOK) & (?x, CITES, ?x) & (?x, AUTHOR, ?y)",
            "Q(?z) := exists ?y . (?z, isa, PERSON) & (?z, EARNS, ?y) & (?y, >, 20000)",
            "(?x, AUTHOR, JOHN) | (?x, AUTHOR, MARY)",
            "Q(?x, ?y) := (?x, CITES, ?x) | (?y, AUTHOR, MARY)",
            "exists ?x . forall ?y . (?x, KNOWS, ?y)",
            "Q(?p) := (?p, isa, PERSON) & ((?p, EARNS, 25000) | (?p, EARNS, 18000))",
            "(JOHN, isa, PERSON) & (MARY, isa, PERSON)",
            "(?x, ?r, ?y) & (?y, isa, PERSON)",
        ];
        for src in suite {
            let mut db = Database::new();
            build(&mut db);
            let query = parse(src, db.store_interner_mut()).expect("parse");
            let view = db.view().expect("closure");
            let mut results = Vec::new();
            for opts in all_options(1_000_000) {
                results.push(eval_with(&query, &view, opts).expect("eval"));
            }
            for r in &results[1..] {
                assert_eq!(results[0].rows, r.rows, "strategies disagree on {src}");
            }
        }
    }

    #[test]
    fn unenumerable_inequality_reported() {
        let mut db = Database::new();
        db.add("A", "R", "B");
        let query = parse("(?x, !=, ?y)", db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let err = eval(&query, &view).unwrap_err();
        assert!(matches!(err, EvalError::Math(_)));
    }

    #[test]
    fn max_rows_guard_fires_inside_match_stream() {
        let mut db = Database::new();
        for i in 0..50 {
            db.add(format!("A{i}"), "R", format!("B{i}"));
        }
        let query = parse("(?x, ?r, ?y)", db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        for opts in all_options(10) {
            let err = eval_with(&query, &view, opts).unwrap_err();
            match err {
                EvalError::ResultTooLarge { limit, produced } => {
                    assert_eq!(limit, 10);
                    // The check runs inside the match loop: a single
                    // atom's stream stops one row past the limit, not
                    // after materializing all 50 matches.
                    assert_eq!(produced, 11, "{opts:?}");
                }
                other => panic!("expected ResultTooLarge, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_database_fails_queries() {
        let (answer, _) = run(|_| {}, "(?x, isa, ANYTHING)");
        assert!(answer.is_empty());
    }

    #[test]
    fn repeated_variable_in_template() {
        // (x, CITES, x): self-citations only (§2.7).
        let (answer, db) = run(
            |db| {
                db.add("A", "CITES", "A");
                db.add("A", "CITES", "B");
                db.add("B", "CITES", "A");
            },
            "(?x, CITES, ?x)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["A".to_string()]]);
    }

    #[test]
    fn disjunction_heterogeneous_columns_pads_with_domain() {
        // (JOHN, LIKES, ?x) | (?y, HATES, BROCCOLI): a tuple (x, y)
        // satisfies the disjunction if either half does, with the other
        // variable free to be anything in the active domain.
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
                db.add("MARY", "HATES", "BROCCOLI");
            },
            "Q(?x, ?y) := (JOHN, LIKES, ?x) | (?y, HATES, BROCCOLI)",
        );
        let names = names(&db, &answer);
        // Domain: JOHN LIKES FELIX MARY HATES BROCCOLI = 6 entities.
        // x=FELIX with any y (6) ∪ y=MARY with any x (6), overlap 1.
        assert_eq!(names.len(), 11, "{names:?}");
        assert!(names.contains(&vec!["FELIX".into(), "JOHN".into()]));
        assert!(names.contains(&vec!["BROCCOLI".into(), "MARY".into()]));
    }

    #[test]
    fn nested_quantifiers() {
        // ∃x ∀y . (x, KNOWS, y) — somebody knows every domain entity.
        let (answer, _) = run(
            |db| {
                // OMNI knows every entity that appears anywhere.
                db.add("OMNI", "KNOWS", "OMNI");
                db.add("OMNI", "KNOWS", "KNOWS");
                db.add("OMNI", "KNOWS", "A");
                db.add("OMNI", "KNOWS", "B");
                db.add("A", "KNOWS", "B");
            },
            "exists ?x . forall ?y . (?x, KNOWS, ?y)",
        );
        assert!(answer.is_true());

        let (answer, _) = run(
            |db| {
                db.add("A", "KNOWS", "B");
                db.add("B", "KNOWS", "A");
            },
            "exists ?x . forall ?y . (?x, KNOWS, ?y)",
        );
        // Nobody knows KNOWS itself (it is in the domain).
        assert!(!answer.is_true());
    }

    #[test]
    fn proposition_with_disjunction() {
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
            },
            "(JOHN, LIKES, FELIX) | (JOHN, HATES, FELIX)",
        );
        assert!(answer.is_true());
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "ADMIRES", "FELIX");
            },
            "(JOHN, LIKES, FELIX) | (JOHN, HATES, FELIX)",
        );
        assert!(!answer.is_true());
    }

    #[test]
    fn delta_relationship_template_in_query() {
        // §5.2's (z, Δ, FREE) as a standalone query.
        let (answer, db) = run(
            |db| {
                db.add("SONG", "COSTS", "FREE");
                db.add("AIR", "IS", "FREE");
                db.add("FREE", "gen", "CHEAP"); // gen facts do not project
            },
            "(?z, TOP, FREE)",
        );
        let got = names(&db, &answer);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn exists_over_disjunction() {
        let (answer, db) = run(
            |db| {
                db.add("A", "R", "B");
                db.add("C", "S", "B");
            },
            "Q(?t) := exists ?x . (?x, R, ?t) | (?x, S, ?t)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["B".to_string()]]);
    }

    #[test]
    fn explain_plan_shows_greedy_order() {
        let mut db = Database::new();
        for i in 0..30 {
            db.add(format!("P{i}"), "isa", "PERSON");
            db.add(format!("P{i}"), "EARNS", 1000 * i);
        }
        db.add("P3", "isa", "RARE-SET");
        let query = parse(
            "Q(?x) := exists ?y . (?x, isa, PERSON) & (?x, EARNS, ?y) & (?x, isa, RARE-SET)",
            db.store_interner_mut(),
        )
        .unwrap();
        let view = db.view().unwrap();
        let plan = explain_plan(&query, &view);
        // The most selective atom (RARE-SET) comes first.
        let rare_pos = plan.find("RARE-SET").unwrap();
        let person_pos = plan.find("PERSON").unwrap();
        assert!(rare_pos < person_pos, "{plan}");
        assert!(plan.contains("join (3 conjuncts"));
        assert!(plan.contains("project out ?y"));
        // Later steps show their hash-join key columns.
        assert!(plan.contains("[key ?x]"), "{plan}");
    }

    #[test]
    fn explain_plan_handles_union_and_forall() {
        let mut db = Database::new();
        db.add("A", "R", "B");
        let query =
            parse("Q(?z) := forall ?x . (?x, R, ?z) | (?z, S, ?x)", db.store_interner_mut())
                .unwrap();
        let view = db.view().unwrap();
        let plan = explain_plan(&query, &view);
        assert!(plan.contains("divide by active domain over ?x"));
        assert!(plan.contains("union:"));
    }

    #[test]
    fn answer_render() {
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "EARNS", 25000i64);
            },
            "Q(?who, ?amount) := (?who, EARNS, ?amount)",
        );
        let table = answer.render(db.store().interner());
        assert!(table.contains("who | amount"));
        assert!(table.contains("JOHN | 25000"));
    }

    #[test]
    fn stale_plan_falls_back_to_syntactic_order() {
        // Replaying a plan that does not match the formula shape must
        // still produce the right answer (the performance contract
        // degrades, never correctness).
        let mut db = Database::new();
        db.add("A", "R", "B");
        db.add("B", "S", "C");
        let query = parse("(?x, R, ?y) & (?y, S, ?z)", db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let bogus = QueryPlan::default(); // no groups at all
        let answer = eval_planned(&query, &view, EvalOptions::default(), &bogus).unwrap();
        let fresh = eval_with(&query, &view, EvalOptions::default()).unwrap();
        assert_eq!(answer, fresh);
        assert_eq!(answer.len(), 1);
    }

    /// A chain world wide enough that joins carry many distinct keys.
    fn chain_world(db: &mut Database, width: usize) {
        for i in 0..width {
            db.add(format!("A{i}"), "R", format!("B{i}"));
            db.add(format!("B{i}"), "S", format!("C{}", i % 7));
            db.add(format!("C{}", i % 7), "T", "HUB");
        }
    }

    #[test]
    fn partitioned_join_agrees_with_sequential() {
        let mut db = Database::new();
        chain_world(&mut db, 60);
        let query = parse("(?x, R, ?y) & (?y, S, ?z) & (?z, T, HUB)", db.store_interner_mut())
            .expect("parse");
        let view = db.view().expect("closure");
        let base = EvalOptions { strategy: ExecStrategy::HashJoin, ..EvalOptions::default() };
        let seq = eval_with(&query, &view, EvalOptions { parallel: ParallelMode::Off, ..base })
            .expect("sequential");
        assert_eq!(seq.len(), 60);
        for nparts in [2, 3, 8] {
            let par = eval_with(
                &query,
                &view,
                EvalOptions { parallel: ParallelMode::Force(nparts), ..base },
            )
            .expect("partitioned");
            assert_eq!(seq.rows, par.rows, "partitioned ({nparts}) and sequential disagree");
        }
    }

    #[test]
    fn exists_pushdown_drops_column_under_partitioned_join() {
        // The quantified variable must never be materialized even when
        // the join steps fan out across partitions (the debug_assert in
        // eval_formula checks the column is truly gone).
        let mut db = Database::new();
        chain_world(&mut db, 40);
        let query = parse(
            "Q(?x) := exists ?y . exists ?z . (?x, R, ?y) & (?y, S, ?z) & (?z, T, HUB)",
            db.store_interner_mut(),
        )
        .expect("parse");
        let view = db.view().expect("closure");
        let base = EvalOptions { strategy: ExecStrategy::HashJoin, ..EvalOptions::default() };
        let seq = eval_with(&query, &view, EvalOptions { parallel: ParallelMode::Off, ..base })
            .expect("sequential");
        let par =
            eval_with(&query, &view, EvalOptions { parallel: ParallelMode::Force(4), ..base })
                .expect("partitioned");
        assert_eq!(seq.rows, par.rows);
        assert_eq!(seq.columns.len(), 1);
        assert_eq!(seq.len(), 40);
    }

    #[test]
    fn forall_keeps_full_width_under_partitioned_join() {
        // Division disables pushdown: the ForAll body materializes its
        // full free columns regardless of the partitioning mode.
        let build = |db: &mut Database| {
            db.add("OMNI", "KNOWS", "OMNI");
            db.add("OMNI", "KNOWS", "KNOWS");
            db.add("OMNI", "KNOWS", "A");
            db.add("OMNI", "KNOWS", "B");
            db.add("A", "KNOWS", "B");
        };
        let src = "exists ?x . forall ?y . (?x, KNOWS, ?y)";
        let mut db = Database::new();
        build(&mut db);
        let query = parse(src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        for parallel in [ParallelMode::Off, ParallelMode::Force(2)] {
            let answer = eval_with(&query, &view, EvalOptions { parallel, ..Default::default() })
                .expect("eval");
            assert!(answer.is_true(), "{parallel:?}");
        }
    }

    #[test]
    fn eval_stats_count_effective_strategies_and_partitions() {
        let mut db = Database::new();
        chain_world(&mut db, 30);
        let query = parse("(?x, R, ?y) & (?y, S, ?z)", db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");

        // Forced hash, forced partitions: one hash group, two
        // partitions per keyed join step (one step here — the first
        // join is keyless).
        let (_, _, stats) = plan_and_eval_stats(
            &query,
            &view,
            EvalOptions {
                strategy: ExecStrategy::HashJoin,
                parallel: ParallelMode::Force(2),
                ..EvalOptions::default()
            },
        )
        .expect("eval");
        assert_eq!(stats.strategy_hash, 1);
        assert_eq!(stats.strategy_nested, 0);
        assert_eq!(stats.partitions, 2);

        // Forced nested: no hash groups, no partitions.
        let (_, _, stats) = plan_and_eval_stats(
            &query,
            &view,
            EvalOptions {
                strategy: ExecStrategy::NestedLoop,
                parallel: ParallelMode::Force(2),
                ..EvalOptions::default()
            },
        )
        .expect("eval");
        assert_eq!(stats.strategy_nested, 1);
        assert_eq!(stats.strategy_hash, 0);
        assert_eq!(stats.partitions, 0);

        // Adaptive on a small world: the cost model picks some executor
        // for the single group; exactly one side is counted.
        let (_, _, stats) = plan_and_eval_stats(
            &query,
            &view,
            EvalOptions {
                strategy: ExecStrategy::Adaptive,
                parallel: ParallelMode::Off,
                ..EvalOptions::default()
            },
        )
        .expect("eval");
        assert_eq!(stats.strategy_hash + stats.strategy_nested, 1);
    }

    #[test]
    fn adaptive_agrees_with_forced_strategies_under_stale_plan() {
        // An Adaptive run replayed against an empty (stale) plan routes
        // every group down the hash path and must stay correct.
        let mut db = Database::new();
        chain_world(&mut db, 20);
        let query = parse(
            "Q(?x) := exists ?y . exists ?z . (?x, R, ?y) & (?y, S, ?z) & (?z, T, HUB)",
            db.store_interner_mut(),
        )
        .expect("parse");
        let view = db.view().expect("closure");
        let fresh = eval_with(&query, &view, EvalOptions::default()).expect("fresh");
        let stale = eval_planned(&query, &view, EvalOptions::default(), &QueryPlan::default())
            .expect("stale");
        assert_eq!(fresh.rows, stale.rows);
    }

    #[test]
    fn row_dedup_accepts_new_and_rejects_duplicates() {
        let mut rel = Rel::empty(vec![Var(0), Var(1)]);
        let mut dedup = RowDedup::default();
        rel.data.extend([EntityId(1), EntityId(2)]);
        assert!(dedup.commit(&mut rel));
        rel.data.extend([EntityId(1), EntityId(3)]);
        assert!(dedup.commit(&mut rel));
        rel.data.extend([EntityId(1), EntityId(2)]);
        assert!(!dedup.commit(&mut rel), "duplicate row must be truncated away");
        assert_eq!(rel.rows, 2);
        assert_eq!(rel.data.len(), 4);
    }
}
