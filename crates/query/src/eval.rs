//! Query evaluation against a [`FactView`].
//!
//! The value of a query (§2.7) is the set of tuples over its free
//! variables that satisfy the formula in the database closure. Evaluation
//! is bottom-up with one key optimization: conjunctions are flattened and
//! evaluated by *binding propagation* — partial bindings flow left to
//! right through the conjuncts, so each atom is matched through the store
//! indexes with everything already known bound. The conjunct order is
//! chosen greedily by boundness and selectivity ([`AtomOrdering::Greedy`],
//! the planner); the syntactic order is kept as the baseline for
//! experiment E6.
//!
//! The universal quantifier uses active-domain semantics: `(∀x) A` holds
//! for a binding of the remaining variables iff `A` holds for *every
//! entity occurring in the closure* substituted for `x`.

use std::collections::BTreeSet;

use loosedb_engine::{Bindings, FactView, MathMatchError, Template, Term, Var};
use loosedb_store::{special, EntityId};

use crate::ast::{Formula, Query};

/// How conjuncts are ordered during evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AtomOrdering {
    /// Most-bound-first with selectivity tie-breaks (the planner).
    #[default]
    Greedy,
    /// Exactly as written (baseline for experiment E6).
    Syntactic,
}

/// Evaluation options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvalOptions {
    /// Conjunct ordering strategy.
    pub ordering: AtomOrdering,
    /// Abort when an intermediate result exceeds this many rows.
    pub max_rows: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { ordering: AtomOrdering::Greedy, max_rows: 1_000_000 }
    }
}

/// Errors during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A mathematical atom could not be enumerated with the bindings
    /// available (e.g. `(x, ≠, y)` with both sides free).
    Math(MathMatchError),
    /// An intermediate result exceeded [`EvalOptions::max_rows`].
    ResultTooLarge {
        /// The configured bound.
        limit: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Math(e) => write!(f, "{e}"),
            EvalError::ResultTooLarge { limit } => {
                write!(f, "intermediate result exceeded {limit} rows")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<MathMatchError> for EvalError {
    fn from(e: MathMatchError) -> Self {
        EvalError::Math(e)
    }
}

/// The value of a query: named columns and a set of tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Answer {
    /// The free variables, in the query's declared order.
    pub columns: Vec<Var>,
    /// Display names matching `columns`.
    pub names: Vec<String>,
    /// The satisfying tuples, ordered.
    pub rows: BTreeSet<Vec<EntityId>>,
}

impl Answer {
    /// True if the query succeeded — a non-empty answer (probing treats
    /// the empty answer as *failure*, §5).
    pub fn succeeded(&self) -> bool {
        !self.rows.is_empty()
    }

    /// For a proposition (no free variables): its truth value.
    pub fn is_true(&self) -> bool {
        self.succeeded()
    }

    /// Number of answer tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values of a single-column answer.
    pub fn single_column(&self) -> Option<Vec<EntityId>> {
        if self.columns.len() == 1 {
            Some(self.rows.iter().map(|row| row[0]).collect())
        } else {
            None
        }
    }

    /// Renders the answer as a simple table.
    pub fn render(&self, interner: &loosedb_store::Interner) -> String {
        if self.columns.is_empty() {
            return if self.is_true() { "true".to_string() } else { "false".to_string() };
        }
        let mut out = String::new();
        out.push_str(&self.names.join(" | "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|&e| interner.display(e)).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// Evaluates a query with default options.
pub fn eval(query: &Query, view: &impl FactView) -> Result<Answer, EvalError> {
    eval_with(query, view, EvalOptions::default())
}

/// Evaluates a query with explicit options.
pub fn eval_with(
    query: &Query,
    view: &impl FactView,
    opts: EvalOptions,
) -> Result<Answer, EvalError> {
    let rel = eval_formula(&query.formula, view, &opts)?;
    // Project to the declared free-variable order.
    let positions: Vec<Option<usize>> =
        query.free.iter().map(|v| rel.cols.iter().position(|c| c == v)).collect();
    let mut rows = BTreeSet::new();
    for row in &rel.rows {
        let projected: Vec<EntityId> =
            positions.iter().map(|p| p.map(|i| row[i]).unwrap_or(special::TOP)).collect();
        rows.insert(projected);
    }
    let names = query.free.iter().map(|v| query.var_name(*v).to_string()).collect();
    Ok(Answer { columns: query.free.clone(), names, rows })
}

/// Renders the evaluation plan for a query without executing it: the
/// order the greedy planner would process conjuncts in, with boundness
/// and the capped selectivity estimate at each step. The paper's user
/// "zooms" with queries; this is the systems-side view of what a zoom
/// costs.
pub fn explain_plan(query: &Query, view: &impl FactView) -> String {
    let mut out = String::new();
    explain_formula(&query.formula, query, view, 0, &mut out);
    out
}

fn explain_formula(
    f: &Formula,
    query: &Query,
    view: &impl FactView,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    if f.is_true_sentinel() {
        out.push_str(&format!("{indent}TRUE\n"));
        return;
    }
    match f {
        Formula::Atom(_) | Formula::And(..) => {
            let mut conjuncts = Vec::new();
            flatten_and(f, &mut conjuncts);
            out.push_str(&format!("{indent}join ({} conjuncts, greedy order):\n", conjuncts.len()));
            // Simulate the greedy ordering without evaluating: complex
            // conjuncts are treated as opaque relations of unknown size.
            let mut remaining: Vec<&Formula> = conjuncts;
            let mut covered: BTreeSet<Var> = BTreeSet::new();
            let mut step = 0;
            while !remaining.is_empty() {
                // Build Conjunct wrappers for pick_next scoring.
                let items: Vec<Conjunct<'_>> = remaining
                    .iter()
                    .map(|c| match c {
                        Formula::Atom(tpl) => Conjunct::Atom(tpl),
                        other => Conjunct::Rel(Rel {
                            cols: other.free_vars().into_iter().collect(),
                            rows: BTreeSet::new(),
                        }),
                    })
                    .collect();
                let next = pick_next(&items, &covered, view);
                let chosen = remaining.remove(next);
                step += 1;
                match chosen {
                    Formula::Atom(tpl) => {
                        let bound = tpl
                            .terms()
                            .into_iter()
                            .filter(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => covered.contains(v),
                            })
                            .count();
                        let est = view.count_estimate(tpl.to_pattern(&Bindings::new()), 1024);
                        let est = if est >= 1024 { ">=1024".to_string() } else { est.to_string() };
                        out.push_str(&format!(
                            "{indent}  {step}. {}   [bound {bound}/3, const-est {est}]\n",
                            render_template(tpl, query, view.interner()),
                        ));
                        covered.extend(tpl.vars());
                    }
                    other => {
                        out.push_str(&format!("{indent}  {step}. subplan:\n"));
                        explain_formula(other, query, view, depth + 2, out);
                        covered.extend(other.free_vars());
                    }
                }
            }
        }
        Formula::Or(a, b) => {
            out.push_str(&format!("{indent}union:\n"));
            explain_formula(a, query, view, depth + 1, out);
            explain_formula(b, query, view, depth + 1, out);
        }
        Formula::Exists(v, a) => {
            out.push_str(&format!("{indent}project out ?{}:\n", query.var_name(*v)));
            explain_formula(a, query, view, depth + 1, out);
        }
        Formula::ForAll(v, a) => {
            out.push_str(&format!(
                "{indent}divide by active domain over ?{}:\n",
                query.var_name(*v)
            ));
            explain_formula(a, query, view, depth + 1, out);
        }
    }
}

fn render_template(tpl: &Template, query: &Query, interner: &loosedb_store::Interner) -> String {
    let term = |t: Term| match t {
        Term::Const(e) => interner.display(e),
        Term::Var(v) if query.var_name(v) == "_" => "*".to_string(),
        Term::Var(v) => format!("?{}", query.var_name(v)),
    };
    format!("({}, {}, {})", term(tpl.s), term(tpl.r), term(tpl.t))
}

/// An intermediate relation: sorted columns, tuple set.
#[derive(Clone, Debug)]
struct Rel {
    cols: Vec<Var>,
    rows: BTreeSet<Vec<EntityId>>,
}

impl Rel {
    fn truth(value: bool) -> Rel {
        let mut rows = BTreeSet::new();
        if value {
            rows.insert(Vec::new());
        }
        Rel { cols: Vec::new(), rows }
    }
}

fn eval_formula(f: &Formula, view: &impl FactView, opts: &EvalOptions) -> Result<Rel, EvalError> {
    if f.is_true_sentinel() {
        return Ok(Rel::truth(true));
    }
    match f {
        Formula::Atom(_) | Formula::And(..) => {
            let mut conjuncts = Vec::new();
            flatten_and(f, &mut conjuncts);
            eval_conjunction(&conjuncts, view, opts)
        }
        Formula::Or(a, b) => {
            let left = eval_formula(a, view, opts)?;
            let right = eval_formula(b, view, opts)?;
            union(left, right, view, opts)
        }
        Formula::Exists(v, a) => {
            let rel = eval_formula(a, view, opts)?;
            Ok(project_out(rel, *v))
        }
        Formula::ForAll(v, a) => {
            let rel = eval_formula(a, view, opts)?;
            Ok(forall(rel, *v, view.domain()))
        }
    }
}

fn flatten_and<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
    match f {
        Formula::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// A conjunct during join planning.
enum Conjunct<'f> {
    Atom(&'f Template),
    Rel(Rel),
}

fn eval_conjunction(
    conjuncts: &[&Formula],
    view: &impl FactView,
    opts: &EvalOptions,
) -> Result<Rel, EvalError> {
    // Pre-evaluate complex conjuncts (disjunctions, quantifiers) into
    // relations; atoms stay symbolic so they can use the indexes.
    let mut items: Vec<Conjunct<'_>> = Vec::with_capacity(conjuncts.len());
    let mut free_vars: BTreeSet<Var> = BTreeSet::new();
    for c in conjuncts {
        free_vars.extend(c.free_vars());
        match c {
            Formula::Atom(tpl) if !c.is_true_sentinel() => items.push(Conjunct::Atom(tpl)),
            _ if c.is_true_sentinel() => {}
            other => items.push(Conjunct::Rel(eval_formula(other, view, opts)?)),
        }
    }

    let mut remaining: Vec<Conjunct<'_>> = items;
    let mut covered: BTreeSet<Var> = BTreeSet::new();
    let mut partials: Vec<Bindings> = vec![Bindings::new()];

    while !remaining.is_empty() {
        let next_index = match opts.ordering {
            AtomOrdering::Syntactic => 0,
            AtomOrdering::Greedy => pick_next(&remaining, &covered, view),
        };
        let item = remaining.remove(next_index);
        let mut extended: Vec<Bindings> = Vec::new();
        match item {
            Conjunct::Atom(tpl) => {
                for b in &partials {
                    let pattern = tpl.to_pattern(b);
                    for fact in view.matches(pattern)? {
                        if let Some(b2) = tpl.unify(&fact, b) {
                            extended.push(b2);
                        }
                    }
                    if extended.len() > opts.max_rows {
                        return Err(EvalError::ResultTooLarge { limit: opts.max_rows });
                    }
                }
                covered.extend(tpl.vars());
            }
            Conjunct::Rel(rel) => {
                for b in &partials {
                    'row: for row in &rel.rows {
                        let mut merged = b.clone();
                        for (col, &value) in rel.cols.iter().zip(row) {
                            match merged.get(*col) {
                                Some(existing) if existing != value => continue 'row,
                                Some(_) => {}
                                None => merged.bind(*col, value),
                            }
                        }
                        extended.push(merged);
                    }
                    if extended.len() > opts.max_rows {
                        return Err(EvalError::ResultTooLarge { limit: opts.max_rows });
                    }
                }
                covered.extend(rel.cols.iter().copied());
            }
        }
        partials = extended;
        if partials.is_empty() {
            break;
        }
    }

    let cols: Vec<Var> = free_vars.into_iter().collect();
    let mut rows = BTreeSet::new();
    for b in partials {
        let row: Vec<EntityId> = cols
            .iter()
            .map(|v| b.get(*v).expect("all conjunct variables bound after full join"))
            .collect();
        rows.insert(row);
    }
    Ok(Rel { cols, rows })
}

/// Greedy choice, in lexicographic priority:
///
/// 1. **Connectivity** — an atom that shares a variable with what is
///    already bound (or has no variables at all) extends the join; a
///    disconnected atom would cross-product every partial binding with
///    its full extension.
/// 2. **Boundness** — more constant-or-covered positions mean tighter
///    index probes; math atoms are slightly deprioritized so they run as
///    checks once their operands are known.
/// 3. **Selectivity** — a capped constant-only count probe breaks ties.
fn pick_next(remaining: &[Conjunct<'_>], covered: &BTreeSet<Var>, view: &impl FactView) -> usize {
    let nothing_covered = covered.is_empty();
    let mut best = 0usize;
    let mut best_key = (i64::MIN, i64::MIN, i64::MIN);
    for (i, item) in remaining.iter().enumerate() {
        let key = match item {
            Conjunct::Atom(tpl) => {
                let vars: Vec<Var> = tpl.vars().collect();
                let connected =
                    nothing_covered || vars.is_empty() || vars.iter().any(|v| covered.contains(v));
                let bound = tpl
                    .terms()
                    .into_iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => covered.contains(v),
                    })
                    .count() as i64;
                let is_math = tpl.r.as_const().is_some_and(special::is_math);
                // Selectivity probe with constants only (cheap, capped).
                let const_pattern = tpl.to_pattern(&Bindings::new());
                let estimate =
                    if is_math { 1024 } else { view.count_estimate(const_pattern, 1024) as i64 };
                (connected as i64, bound * 2 - is_math as i64, -estimate)
            }
            Conjunct::Rel(rel) => {
                let connected = nothing_covered
                    || rel.cols.is_empty()
                    || rel.cols.iter().any(|c| covered.contains(c));
                let bound = rel.cols.iter().filter(|c| covered.contains(c)).count() as i64;
                (connected as i64, bound * 2, -(rel.rows.len() as i64))
            }
        };
        if key > best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Union with active-domain padding for heterogeneous columns.
fn union(a: Rel, b: Rel, view: &impl FactView, opts: &EvalOptions) -> Result<Rel, EvalError> {
    let cols: Vec<Var> =
        a.cols.iter().chain(b.cols.iter()).copied().collect::<BTreeSet<_>>().into_iter().collect();
    let mut rows = BTreeSet::new();
    for (rel, _other) in [(&a, &b), (&b, &a)] {
        let pad_cols: Vec<Var> = cols.iter().copied().filter(|c| !rel.cols.contains(c)).collect();
        let pad_space = view.domain().len().pow(pad_cols.len() as u32).max(1);
        if rel.rows.len().saturating_mul(pad_space) > opts.max_rows {
            return Err(EvalError::ResultTooLarge { limit: opts.max_rows });
        }
        for row in &rel.rows {
            pad_row(&cols, rel, row, &pad_cols, view.domain(), &mut Vec::new(), &mut rows);
        }
    }
    Ok(Rel { cols, rows })
}

/// Recursively enumerates domain values for the padded columns.
fn pad_row(
    cols: &[Var],
    rel: &Rel,
    row: &[EntityId],
    pad_cols: &[Var],
    domain: &[EntityId],
    pad_values: &mut Vec<EntityId>,
    out: &mut BTreeSet<Vec<EntityId>>,
) {
    if pad_values.len() == pad_cols.len() {
        let full: Vec<EntityId> = cols
            .iter()
            .map(|c| {
                if let Some(i) = rel.cols.iter().position(|rc| rc == c) {
                    row[i]
                } else {
                    let j = pad_cols.iter().position(|pc| pc == c).expect("padded");
                    pad_values[j]
                }
            })
            .collect();
        out.insert(full);
        return;
    }
    for &d in domain {
        pad_values.push(d);
        pad_row(cols, rel, row, pad_cols, domain, pad_values, out);
        pad_values.pop();
    }
}

/// Removes a column (existential projection).
fn project_out(rel: Rel, v: Var) -> Rel {
    match rel.cols.iter().position(|c| *c == v) {
        None => rel,
        Some(i) => {
            let cols: Vec<Var> = rel.cols.iter().copied().filter(|c| *c != v).collect();
            let rows: BTreeSet<Vec<EntityId>> = rel
                .rows
                .into_iter()
                .map(|mut row| {
                    row.remove(i);
                    row
                })
                .collect();
            Rel { cols, rows }
        }
    }
}

/// Universal quantification: keep groups covering the whole domain.
fn forall(rel: Rel, v: Var, domain: &[EntityId]) -> Rel {
    let Some(vi) = rel.cols.iter().position(|c| *c == v) else {
        // v not free in the body: (∀x) A ≡ A over a non-empty domain;
        // over the empty domain the quantification is vacuously true,
        // which for a formula with no x-dependence is A as well.
        return rel;
    };
    let cols: Vec<Var> = rel.cols.iter().copied().filter(|c| *c != v).collect();
    let mut groups: std::collections::HashMap<Vec<EntityId>, BTreeSet<EntityId>> =
        std::collections::HashMap::new();
    for row in &rel.rows {
        let mut key = row.clone();
        let value = key.remove(vi);
        groups.entry(key).or_default().insert(value);
    }
    let rows: BTreeSet<Vec<EntityId>> = groups
        .into_iter()
        .filter(|(_, values)| domain.iter().all(|d| values.contains(d)))
        .map(|(key, _)| key)
        .collect();
    Rel { cols, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use loosedb_engine::Database;

    /// Evaluates a textual query against a database built by `build`.
    fn run(build: impl FnOnce(&mut Database), src: &str) -> (Answer, Database) {
        let mut db = Database::new();
        build(&mut db);
        let query = parse(src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        let answer = eval(&query, &view).expect("eval");
        drop(view);
        (answer, db)
    }

    fn names(db: &Database, answer: &Answer) -> Vec<Vec<String>> {
        answer.rows.iter().map(|row| row.iter().map(|&e| db.display(e)).collect()).collect()
    }

    #[test]
    fn single_template_single_free_var() {
        let (answer, db) = run(
            |db| {
                db.add("WAR-AND-PEACE", "isa", "BOOK");
                db.add("ULYSSES", "isa", "BOOK");
                db.add("JOHN", "isa", "PERSON");
            },
            "(?y, isa, BOOK)",
        );
        let got: std::collections::BTreeSet<Vec<String>> =
            names(&db, &answer).into_iter().collect();
        let expected: std::collections::BTreeSet<Vec<String>> =
            [vec!["WAR-AND-PEACE".to_string()], vec!["ULYSSES".to_string()]].into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn paper_self_citing_authors() {
        // §2.7: all authors who cite themselves.
        let (answer, db) = run(
            |db| {
                db.add("BOOK-A", "isa", "BOOK");
                db.add("BOOK-B", "isa", "BOOK");
                db.add("JOHN", "isa", "PERSON");
                db.add("MARY", "isa", "PERSON");
                db.add("BOOK-A", "CITES", "BOOK-A"); // self-citation
                db.add("BOOK-A", "AUTHOR", "JOHN");
                db.add("BOOK-B", "CITES", "BOOK-A");
                db.add("BOOK-B", "AUTHOR", "MARY");
            },
            "Q(?y) := exists ?x . (?x, isa, BOOK) & (?y, isa, PERSON) \
             & (?x, CITES, ?x) & (?x, AUTHOR, ?y)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["JOHN".to_string()]]);
    }

    #[test]
    fn paper_salary_query() {
        // §3.6: employees earning over 20000.
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "isa", "EMPLOYEE");
                db.add("JOHN", "EARNS", 25000i64);
                db.add("MARY", "isa", "EMPLOYEE");
                db.add("MARY", "EARNS", 18000i64);
            },
            "Q(?z) := exists ?y . (?z, isa, EMPLOYEE) & (?z, EARNS, ?y) & (?y, >, 20000)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["JOHN".to_string()]]);
    }

    #[test]
    fn proposition_queries() {
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
                db.add("FELIX", "LIKES", "JOHN");
            },
            "(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)",
        );
        assert!(answer.is_true());

        let (answer, _) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
            },
            "(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)",
        );
        assert!(!answer.is_true());
    }

    #[test]
    fn negation_free_complement() {
        // §2.7: "all books whose author is not John" via ≠.
        let (answer, db) = run(
            |db| {
                db.add("BOOK-A", "isa", "BOOK");
                db.add("BOOK-B", "isa", "BOOK");
                db.add("BOOK-A", "AUTHOR", "JOHN");
                db.add("BOOK-B", "AUTHOR", "MARY");
            },
            "Q(?x) := exists ?y . (?x, isa, BOOK) & (?x, AUTHOR, ?y) & (?y, !=, JOHN)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["BOOK-B".to_string()]]);
    }

    #[test]
    fn disjunction_same_columns() {
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "LIKES", "OPERA");
                db.add("MARY", "LOVES", "OPERA");
            },
            "(?x, LIKES, OPERA) | (?x, LOVES, OPERA)",
        );
        let got = names(&db, &answer);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn forall_universal() {
        // Things loved by ALL students.
        let (answer, db) = run(
            |db| {
                db.add("TOM", "isa", "STUDENT-SET");
                db.add("SUE", "isa", "STUDENT-SET");
                db.add("TOM", "LOVES", "MUSIC");
                db.add("SUE", "LOVES", "MUSIC");
                db.add("TOM", "LOVES", "PIZZA");
            },
            // ∀x: if x is relevant at all... active-domain ∀ is strong:
            // every closure entity must love ?z. Build it explicitly:
            "Q(?z) := forall ?x . ((?x, LOVES, ?z) | (?x, NOT-LOVER, NOT-LOVER))",
        );
        // No entity set has everyone loving something here (the domain
        // includes STUDENT-SET, LOVES, ...), so the answer is empty —
        // demonstrating active-domain semantics.
        assert!(answer.is_empty());
        drop(db);
    }

    #[test]
    fn exists_projects() {
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "EARNS", 25000i64);
                db.add("MARY", "EARNS", 25000i64);
            },
            "exists ?x . (?x, EARNS, 25000)",
        );
        assert!(answer.is_true());
    }

    #[test]
    fn inference_visible_to_queries() {
        // Queries run against the closure, not the base facts.
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "isa", "EMPLOYEE");
                db.add("EMPLOYEE", "EARNS", "SALARY");
            },
            "(?x, EARNS, SALARY)",
        );
        let got = names(&db, &answer);
        assert!(got.contains(&vec!["JOHN".to_string()]));
        assert!(got.contains(&vec!["EMPLOYEE".to_string()]));
    }

    #[test]
    fn greedy_and_syntactic_agree() {
        let mut db = Database::new();
        for i in 0..20 {
            db.add(format!("P{i}"), "isa", "PERSON");
            db.add(format!("P{i}"), "EARNS", 1000 * i);
        }
        db.add("P5", "isa", "MANAGER-SET");
        let query = parse(
            "Q(?x) := exists ?y . (?x, isa, MANAGER-SET) & (?x, EARNS, ?y) & (?y, >=, 5000)",
            db.store_interner_mut(),
        )
        .unwrap();
        let view = db.view().unwrap();
        let greedy = eval_with(
            &query,
            &view,
            EvalOptions { ordering: AtomOrdering::Greedy, max_rows: 1_000_000 },
        )
        .unwrap();
        let syntactic = eval_with(
            &query,
            &view,
            EvalOptions { ordering: AtomOrdering::Syntactic, max_rows: 1_000_000 },
        )
        .unwrap();
        assert_eq!(greedy.rows, syntactic.rows);
        assert_eq!(greedy.len(), 1);
    }

    #[test]
    fn unenumerable_inequality_reported() {
        let mut db = Database::new();
        db.add("A", "R", "B");
        let query = parse("(?x, !=, ?y)", db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let err = eval(&query, &view).unwrap_err();
        assert!(matches!(err, EvalError::Math(_)));
    }

    #[test]
    fn max_rows_guard() {
        let mut db = Database::new();
        for i in 0..50 {
            db.add(format!("A{i}"), "R", format!("B{i}"));
        }
        let query = parse("(?x, ?r, ?y)", db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let err =
            eval_with(&query, &view, EvalOptions { ordering: AtomOrdering::Greedy, max_rows: 10 })
                .unwrap_err();
        assert_eq!(err, EvalError::ResultTooLarge { limit: 10 });
    }

    #[test]
    fn empty_database_fails_queries() {
        let (answer, _) = run(|_| {}, "(?x, isa, ANYTHING)");
        assert!(answer.is_empty());
    }

    #[test]
    fn repeated_variable_in_template() {
        // (x, CITES, x): self-citations only (§2.7).
        let (answer, db) = run(
            |db| {
                db.add("A", "CITES", "A");
                db.add("A", "CITES", "B");
                db.add("B", "CITES", "A");
            },
            "(?x, CITES, ?x)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["A".to_string()]]);
    }

    #[test]
    fn disjunction_heterogeneous_columns_pads_with_domain() {
        // (JOHN, LIKES, ?x) | (?y, HATES, BROCCOLI): a tuple (x, y)
        // satisfies the disjunction if either half does, with the other
        // variable free to be anything in the active domain.
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
                db.add("MARY", "HATES", "BROCCOLI");
            },
            "Q(?x, ?y) := (JOHN, LIKES, ?x) | (?y, HATES, BROCCOLI)",
        );
        let names = names(&db, &answer);
        // Domain: JOHN LIKES FELIX MARY HATES BROCCOLI = 6 entities.
        // x=FELIX with any y (6) ∪ y=MARY with any x (6), overlap 1.
        assert_eq!(names.len(), 11, "{names:?}");
        assert!(names.contains(&vec!["FELIX".into(), "JOHN".into()]));
        assert!(names.contains(&vec!["BROCCOLI".into(), "MARY".into()]));
    }

    #[test]
    fn nested_quantifiers() {
        // ∃x ∀y . (x, KNOWS, y) — somebody knows every domain entity.
        let (answer, _) = run(
            |db| {
                // OMNI knows every entity that appears anywhere.
                db.add("OMNI", "KNOWS", "OMNI");
                db.add("OMNI", "KNOWS", "KNOWS");
                db.add("OMNI", "KNOWS", "A");
                db.add("OMNI", "KNOWS", "B");
                db.add("A", "KNOWS", "B");
            },
            "exists ?x . forall ?y . (?x, KNOWS, ?y)",
        );
        assert!(answer.is_true());

        let (answer, _) = run(
            |db| {
                db.add("A", "KNOWS", "B");
                db.add("B", "KNOWS", "A");
            },
            "exists ?x . forall ?y . (?x, KNOWS, ?y)",
        );
        // Nobody knows KNOWS itself (it is in the domain).
        assert!(!answer.is_true());
    }

    #[test]
    fn proposition_with_disjunction() {
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "LIKES", "FELIX");
            },
            "(JOHN, LIKES, FELIX) | (JOHN, HATES, FELIX)",
        );
        assert!(answer.is_true());
        let (answer, _) = run(
            |db| {
                db.add("JOHN", "ADMIRES", "FELIX");
            },
            "(JOHN, LIKES, FELIX) | (JOHN, HATES, FELIX)",
        );
        assert!(!answer.is_true());
    }

    #[test]
    fn delta_relationship_template_in_query() {
        // §5.2's (z, Δ, FREE) as a standalone query.
        let (answer, db) = run(
            |db| {
                db.add("SONG", "COSTS", "FREE");
                db.add("AIR", "IS", "FREE");
                db.add("FREE", "gen", "CHEAP"); // gen facts do not project
            },
            "(?z, TOP, FREE)",
        );
        let got = names(&db, &answer);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn exists_over_disjunction() {
        let (answer, db) = run(
            |db| {
                db.add("A", "R", "B");
                db.add("C", "S", "B");
            },
            "Q(?t) := exists ?x . (?x, R, ?t) | (?x, S, ?t)",
        );
        assert_eq!(names(&db, &answer), vec![vec!["B".to_string()]]);
    }

    #[test]
    fn explain_plan_shows_greedy_order() {
        let mut db = Database::new();
        for i in 0..30 {
            db.add(format!("P{i}"), "isa", "PERSON");
            db.add(format!("P{i}"), "EARNS", 1000 * i);
        }
        db.add("P3", "isa", "RARE-SET");
        let query = parse(
            "Q(?x) := exists ?y . (?x, isa, PERSON) & (?x, EARNS, ?y) & (?x, isa, RARE-SET)",
            db.store_interner_mut(),
        )
        .unwrap();
        let view = db.view().unwrap();
        let plan = explain_plan(&query, &view);
        // The most selective atom (RARE-SET) comes first.
        let rare_pos = plan.find("RARE-SET").unwrap();
        let person_pos = plan.find("PERSON").unwrap();
        assert!(rare_pos < person_pos, "{plan}");
        assert!(plan.contains("join (3 conjuncts"));
        assert!(plan.contains("project out ?y"));
    }

    #[test]
    fn explain_plan_handles_union_and_forall() {
        let mut db = Database::new();
        db.add("A", "R", "B");
        let query =
            parse("Q(?z) := forall ?x . (?x, R, ?z) | (?z, S, ?x)", db.store_interner_mut())
                .unwrap();
        let view = db.view().unwrap();
        let plan = explain_plan(&query, &view);
        assert!(plan.contains("divide by active domain over ?x"));
        assert!(plan.contains("union:"));
    }

    #[test]
    fn answer_render() {
        let (answer, db) = run(
            |db| {
                db.add("JOHN", "EARNS", 25000i64);
            },
            "Q(?who, ?amount) := (?who, EARNS, ?amount)",
        );
        let table = answer.render(db.store().interner());
        assert!(table.contains("who | amount"));
        assert!(table.contains("JOHN | 25000"));
    }
}
