//! Scatter-gather query execution over sharded views.
//!
//! The engine's `ShardedDatabase` hash-partitions facts by source entity
//! across N shards whose interners the router keeps aligned, with every
//! fact any §3 rule consumes off its owner shard broadcast to all shards
//! (the *broadcast invariant*). This module is the query side of that
//! bargain:
//!
//! * [`UnionView`] — a [`FactView`] over N per-shard views whose
//!   `matches` fans each scan out across the shards (through the shared
//!   worker pool when it has width) and gathers the deduplicated union.
//!   Any query the planner can run on one view runs unchanged on the
//!   union; cross-shard conjunctions gather partial results per conjunct
//!   and join them with the ordinary (optionally partitioned) hash
//!   joins.
//! * [`is_collocated`] — detects queries whose ordinary atoms all share
//!   one source term. Under the broadcast invariant every closure fact
//!   sourced at an entity lives on that entity's shard, so such a query
//!   decomposes *by answer row*: each shard evaluates the whole query
//!   locally over its own facts and the answer is the disjoint-ish union
//!   of the per-shard answers — no per-conjunct data movement at all.
//!   This is the sharded analogue of a join on the partition key.
//! * [`eval_sharded`] / [`eval_sharded_planned`] — the dispatcher:
//!   collocated queries scatter whole, everything else runs over the
//!   union view. `max_rows` is enforced across shards through one shared
//!   committed-row counter (the same discipline the partitioned hash
//!   join applies across its partitions): each shard evaluates under the
//!   full budget — any single shard exceeding it is definitive, since
//!   the union is a superset of every shard's rows — and the gather
//!   aborts as soon as the *merged* row set crosses the limit.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use loosedb_engine::mathrel::MathMatchError;
use loosedb_engine::view::FactView;
use loosedb_engine::{pool, Term, Var};
use loosedb_obs::{Counter, Histogram, Metrics};
use loosedb_store::{special, EntityId, Fact, Interner, Pattern};

use crate::ast::{Formula, Query};
use crate::eval::{
    eval_planned_stats, plan_and_eval_stats, Answer, EvalError, EvalOptions, EvalStats,
};
use crate::plan::QueryPlan;

/// Scatter-layer metric handles, cloned out of an [`Metrics`] registry
/// (typically the sharded router's). All handles are `Arc`-shared
/// atomics: cloning is cheap and recording is wait-free.
#[derive(Clone)]
pub struct ScatterMetrics {
    /// Sharded query evaluations (`shard.scatter.queries`).
    pub queries: Counter,
    /// Evaluations that took the collocated whole-query path
    /// (`shard.scatter.collocated`).
    pub collocated: Counter,
    /// Per-shard scan/eval tasks fanned out (`shard.scatter.tasks`).
    pub tasks: Counter,
    /// Rows gathered from each shard (`shard.scatter.gather_rows`).
    pub gather_rows: Histogram,
}

impl ScatterMetrics {
    /// Binds the scatter handles of a metrics registry.
    pub fn from_metrics(m: &Metrics) -> Self {
        ScatterMetrics {
            queries: m.shard_scatter_queries.clone(),
            collocated: m.shard_scatter_collocated.clone(),
            tasks: m.shard_scatter_tasks.clone(),
            gather_rows: m.shard_gather_rows.clone(),
        }
    }
}

/// A [`FactView`] that unions N per-shard views.
///
/// All views must resolve entities through the same (aligned) interner —
/// the sharded router's invariant — so gathered facts need no id
/// translation and deduplicate structurally. Scans fan out across the
/// shared worker pool when it has more than one thread and run inline
/// otherwise; either way the result is the sorted, deduplicated union.
pub struct UnionView<'a, V: FactView> {
    views: &'a [V],
    interner: &'a Interner,
    domain: OnceLock<Vec<EntityId>>,
    metrics: Option<ScatterMetrics>,
}

impl<'a, V: FactView> UnionView<'a, V> {
    /// Builds a union view over per-shard views sharing `interner`.
    pub fn new(views: &'a [V], interner: &'a Interner) -> Self {
        UnionView { views, interner, domain: OnceLock::new(), metrics: None }
    }

    /// Attaches scatter metric handles (`shard.scatter.tasks` counts the
    /// per-shard scans this view fans out).
    pub fn with_metrics(mut self, metrics: ScatterMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The per-shard views.
    pub fn views(&self) -> &'a [V] {
        self.views
    }
}

impl<V: FactView> FactView for UnionView<'_, V> {
    fn interner(&self) -> &Interner {
        self.interner
    }

    fn matches(&self, pattern: Pattern) -> Result<Vec<Fact>, MathMatchError> {
        if let Some(m) = &self.metrics {
            m.tasks.add(self.views.len() as u64);
        }
        if let [only] = self.views {
            return only.matches(pattern);
        }
        let mut results: Vec<Option<Result<Vec<Fact>, MathMatchError>>> = Vec::new();
        results.resize_with(self.views.len(), || None);
        if pool::workers() > 1 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
                .iter_mut()
                .zip(self.views)
                .map(|(slot, view)| {
                    Box::new(move || {
                        *slot = Some(view.matches(pattern));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool::run_scoped(tasks);
        } else {
            for (slot, view) in results.iter_mut().zip(self.views) {
                *slot = Some(view.matches(pattern));
            }
        }
        let mut union: BTreeSet<Fact> = BTreeSet::new();
        for slot in results {
            union.extend(slot.expect("scan task completed")?);
        }
        Ok(union.into_iter().collect())
    }

    fn holds(&self, fact: &Fact) -> bool {
        self.views.iter().any(|v| v.holds(fact))
    }

    fn count_estimate(&self, pattern: Pattern, cap: usize) -> usize {
        // Broadcast facts are counted once per holding shard, so the sum
        // over-estimates duplicated extents — acceptable for a planner
        // input (estimates are capped and ordinal, not exact).
        let mut total = 0usize;
        for v in self.views {
            total = total.saturating_add(v.count_estimate(pattern, cap.saturating_sub(total)));
            if total >= cap {
                return cap;
            }
        }
        total
    }

    fn domain(&self) -> &[EntityId] {
        self.domain.get_or_init(|| {
            let mut merged: BTreeSet<EntityId> = BTreeSet::new();
            for v in self.views {
                merged.extend(v.domain().iter().copied());
            }
            merged.into_iter().collect()
        })
    }

    fn count_probes(&self) -> u64 {
        self.views.iter().map(|v| v.count_probes()).sum()
    }

    fn domain_size(&self) -> usize {
        match self.domain.get() {
            Some(d) => d.len(),
            // Upper bound (broadcast entities occur on several shards);
            // only the planner's cost model consumes this.
            None => self.views.iter().map(|v| v.domain_size()).sum(),
        }
    }
}

/// True if `term` is the [`Formula::TRUE`] sentinel's anonymous
/// variable.
fn is_sentinel(term: Term) -> bool {
    matches!(term, Term::Var(Var(u32::MAX)))
}

/// Detects whether a query can scatter whole to every shard (the
/// collocated fast path): the formula is purely conjunctive (no `Or`, no
/// `ForAll` — both need cross-shard context), every atom's relationship
/// is a constant, and every *ordinary* atom — not math-virtual, not the
/// TRUE sentinel — shares one source term. Under the broadcast invariant
/// each shard then holds every fact any of its answer rows touches, so
/// the global answer is exactly the union of per-shard answers.
pub fn is_collocated(query: &Query) -> bool {
    fn scan(f: &Formula, source: &mut Option<Term>) -> bool {
        match f {
            Formula::Atom(tpl) => {
                if is_sentinel(tpl.s) {
                    return true;
                }
                let Term::Const(rel) = tpl.r else { return false };
                if special::is_math(rel) {
                    // Math relationships are virtual over the (aligned)
                    // interner — identical on every shard.
                    return true;
                }
                match source {
                    None => {
                        *source = Some(tpl.s);
                        true
                    }
                    Some(shared) => *shared == tpl.s,
                }
            }
            Formula::And(a, b) => scan(a, source) && scan(b, source),
            Formula::Exists(_, a) => scan(a, source),
            Formula::Or(_, _) | Formula::ForAll(_, _) => false,
        }
    }
    let mut source = None;
    scan(&query.formula, &mut source)
}

/// The result of a sharded evaluation.
#[derive(Clone, Debug)]
pub struct ShardedAnswer {
    /// The merged answer.
    pub answer: Answer,
    /// The plan used (representative shard-0 plan on the collocated
    /// path; the union-view plan otherwise).
    pub plan: QueryPlan,
    /// Execution statistics, summed across shards.
    pub stats: EvalStats,
    /// Whether the collocated whole-query path ran.
    pub collocated: bool,
}

/// Plans and evaluates a query across per-shard views (see the module
/// docs for the dispatch). `interner` must be the aligned interner the
/// views resolve through — `ShardedSnapshot::interner()`.
pub fn eval_sharded<V: FactView>(
    query: &Query,
    views: &[V],
    interner: &Interner,
    opts: EvalOptions,
    metrics: Option<&ScatterMetrics>,
) -> Result<ShardedAnswer, EvalError> {
    if let Some(m) = metrics {
        m.queries.inc();
    }
    if views.len() > 1 && is_collocated(query) {
        if let Some(m) = metrics {
            m.collocated.inc();
            m.tasks.add(views.len() as u64);
        }
        let (answer, plan, stats) = scatter_whole(query, views, opts, None, metrics)?;
        return Ok(ShardedAnswer {
            answer,
            plan: plan.expect("collocated scatter plans shard 0"),
            stats,
            collocated: true,
        });
    }
    let union = match metrics {
        Some(m) => UnionView::new(views, interner).with_metrics(m.clone()),
        None => UnionView::new(views, interner),
    };
    let (answer, plan, stats) = plan_and_eval_stats(query, &union, opts)?;
    if let Some(m) = metrics {
        m.gather_rows.record(answer.rows.len() as u64);
    }
    Ok(ShardedAnswer { answer, plan, stats, collocated: false })
}

/// Evaluates a query across per-shard views under a previously built
/// (cached) plan, issuing no planning probes. The sharded session keys
/// its plan cache on the merged per-shard delta rings and replays plans
/// through this entry point.
pub fn eval_sharded_planned<V: FactView>(
    query: &Query,
    views: &[V],
    interner: &Interner,
    opts: EvalOptions,
    plan: &QueryPlan,
    metrics: Option<&ScatterMetrics>,
) -> Result<(Answer, EvalStats, bool), EvalError> {
    if let Some(m) = metrics {
        m.queries.inc();
    }
    if views.len() > 1 && is_collocated(query) {
        if let Some(m) = metrics {
            m.collocated.inc();
            m.tasks.add(views.len() as u64);
        }
        let (answer, _, stats) = scatter_whole(query, views, opts, Some(plan), metrics)?;
        return Ok((answer, stats, true));
    }
    let union = match metrics {
        Some(m) => UnionView::new(views, interner).with_metrics(m.clone()),
        None => UnionView::new(views, interner),
    };
    let (answer, stats) = eval_planned_stats(query, &union, opts, plan)?;
    if let Some(m) = metrics {
        m.gather_rows.record(answer.rows.len() as u64);
    }
    Ok((answer, stats, false))
}

/// The collocated path: every shard evaluates the whole query over its
/// local view (in parallel when the pool has width); rows merge into one
/// shared set guarded by `opts.max_rows` via a shared committed-row
/// counter, exactly as the partitioned hash join budgets its partitions.
#[allow(clippy::type_complexity)]
fn scatter_whole<V: FactView>(
    query: &Query,
    views: &[V],
    opts: EvalOptions,
    plan: Option<&QueryPlan>,
    metrics: Option<&ScatterMetrics>,
) -> Result<(Answer, Option<QueryPlan>, EvalStats), EvalError> {
    let merged: Mutex<BTreeSet<Vec<EntityId>>> = Mutex::new(BTreeSet::new());
    // Rows in `merged`, readable without the lock: the cross-shard
    // overflow budget. Monotone under inserts, so a stale read can only
    // delay an abort, never cause a false one.
    let committed = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<(Answer, Option<QueryPlan>, EvalStats), EvalError>>> =
        Vec::new();
    results.resize_with(views.len(), || None);

    let run_shard = |i: usize,
                     view: &V|
     -> Result<(Answer, Option<QueryPlan>, EvalStats), EvalError> {
        if committed.load(Ordering::Relaxed) > opts.max_rows {
            // Another shard already blew the merged budget; don't spend
            // work on rows that would be discarded.
            return Err(EvalError::ResultTooLarge {
                limit: opts.max_rows,
                produced: committed.load(Ordering::Relaxed),
            });
        }
        let (answer, plan_out, stats) = match plan {
            Some(p) => {
                let (a, s) = eval_planned_stats(query, view, opts, p)?;
                (a, None, s)
            }
            None => {
                let (a, p, s) = plan_and_eval_stats(query, view, opts)?;
                (a, Some(p), s)
            }
        };
        if let Some(m) = metrics {
            m.gather_rows.record(answer.rows.len() as u64);
        }
        let mut set = merged.lock().expect("gather lock");
        set.extend(answer.rows.iter().cloned());
        committed.store(set.len(), Ordering::Relaxed);
        if set.len() > opts.max_rows {
            return Err(EvalError::ResultTooLarge { limit: opts.max_rows, produced: set.len() });
        }
        let _ = i;
        Ok((answer, plan_out, stats))
    };

    if pool::workers() > 1 {
        let run_shard = &run_shard;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
            .iter_mut()
            .zip(views)
            .enumerate()
            .map(|(i, (slot, view))| {
                Box::new(move || {
                    *slot = Some(run_shard(i, view));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::run_scoped(tasks);
    } else {
        for (i, (slot, view)) in results.iter_mut().zip(views).enumerate() {
            let out = run_shard(i, view);
            let failed = out.is_err();
            *slot = Some(out);
            if failed {
                break;
            }
        }
    }

    let mut plan_out: Option<QueryPlan> = None;
    let mut stats = EvalStats::default();
    let mut columns: Option<(Vec<Var>, Vec<String>)> = None;
    for slot in results.into_iter().flatten() {
        let (answer, p, s) = slot?;
        if plan_out.is_none() {
            plan_out = p;
        }
        stats.strategy_hash += s.strategy_hash;
        stats.strategy_nested += s.strategy_nested;
        stats.partitions += s.partitions;
        if columns.is_none() {
            columns = Some((answer.columns, answer.names));
        }
    }
    let (columns, names) = columns.unwrap_or_else(|| {
        let names = query.free.iter().map(|v| query.var_name(*v).to_string()).collect();
        (query.free.clone(), names)
    });
    let rows = merged.into_inner().expect("gather lock");
    Ok((Answer { columns, names, rows }, plan_out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use loosedb_engine::ShardedDatabase;

    fn world(n: usize) -> ShardedDatabase {
        let db = ShardedDatabase::new(n).unwrap();
        db.insert("EMPLOYEE", "gen", "PERSON").unwrap();
        db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
        db.insert("MARY", "isa", "EMPLOYEE").unwrap();
        db.insert("SUE", "isa", "EMPLOYEE").unwrap();
        db.insert("EMPLOYEE", "EARNS", "SALARY").unwrap();
        db.insert("JOHN", "LIKES", "FELIX").unwrap();
        db.insert("MARY", "LIKES", "REX").unwrap();
        db.insert("SUE", "OWNS", "CAR").unwrap();
        db
    }

    fn single_answer(queries: &str) -> Answer {
        let mut db = loosedb_engine::Database::new();
        db.add("EMPLOYEE", "gen", "PERSON");
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("MARY", "isa", "EMPLOYEE");
        db.add("SUE", "isa", "EMPLOYEE");
        db.add("EMPLOYEE", "EARNS", "SALARY");
        db.add("JOHN", "LIKES", "FELIX");
        db.add("MARY", "LIKES", "REX");
        db.add("SUE", "OWNS", "CAR");
        let q = parse(queries, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        crate::eval::eval(&q, &view).unwrap()
    }

    fn rendered(a: &Answer, interner: &Interner) -> String {
        a.render(interner)
    }

    #[test]
    fn collocated_detection() {
        let mut interner = Interner::new();
        let collocated = [
            "Q(?x) := (?x, isa, EMPLOYEE)",
            "Q(?x) := exists ?y . (?x, isa, EMPLOYEE) & (?x, LIKES, ?y)",
            "Q(?x, ?y) := (?x, EARNS, ?y) & (?y, >, 0)",
        ];
        for q in collocated {
            let parsed = parse(q, &mut interner).unwrap();
            assert!(is_collocated(&parsed), "{q}");
        }
        let scattered = [
            // Two distinct ordinary sources: a genuine cross-shard join.
            "Q(?x, ?y) := (?x, LIKES, ?y) & (?y, isa, EMPLOYEE)",
            // Disjunction needs the union.
            "Q(?x) := (?x, isa, EMPLOYEE) | (?x, OWNS, CAR)",
        ];
        for q in scattered {
            let parsed = parse(q, &mut interner).unwrap();
            assert!(!is_collocated(&parsed), "{q}");
        }
    }

    #[test]
    fn collocated_scatter_matches_single_store() {
        for n in [1, 2, 4] {
            let db = world(n);
            let snap = db.snapshot();
            let expected = single_answer("Q(?x) := (?x, EARNS, SALARY)");
            let mut ext = snap.interner().clone();
            let q = parse("Q(?x) := (?x, EARNS, SALARY)", &mut ext).unwrap();
            let views = snap.views_with_interner(&ext);
            let out = eval_sharded(&q, &views, &ext, EvalOptions::default(), None).unwrap();
            assert_eq!(out.collocated, n > 1);
            assert_eq!(
                rendered(&out.answer, &ext),
                rendered(&expected, &expected_interner(&expected, "Q(?x) := (?x, EARNS, SALARY)")),
                "n={n}"
            );
        }
    }

    // Renders the single-store expected answer with its own interner so
    // the comparison is by display name, not raw id.
    fn expected_interner(_a: &Answer, query: &str) -> Interner {
        let mut db = loosedb_engine::Database::new();
        db.add("EMPLOYEE", "gen", "PERSON");
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("MARY", "isa", "EMPLOYEE");
        db.add("SUE", "isa", "EMPLOYEE");
        db.add("EMPLOYEE", "EARNS", "SALARY");
        db.add("JOHN", "LIKES", "FELIX");
        db.add("MARY", "LIKES", "REX");
        db.add("SUE", "OWNS", "CAR");
        let _ = parse(query, db.store_interner_mut()).unwrap();
        let mut out = Interner::new();
        for (_, v) in db.store().interner().iter() {
            out.intern(v.clone());
        }
        out
    }

    #[test]
    fn cross_shard_join_gathers_through_union_view() {
        for n in [1, 2, 4] {
            let db = world(n);
            let snap = db.snapshot();
            let query = "Q(?x, ?y) := (?x, LIKES, ?y) & (?x, isa, EMPLOYEE)";
            let expected = single_answer(query);
            let mut ext = snap.interner().clone();
            let q = parse(query, &mut ext).unwrap();
            let views = snap.views_with_interner(&ext);
            let out = eval_sharded(&q, &views, &ext, EvalOptions::default(), None).unwrap();
            assert_eq!(out.answer.len(), expected.len(), "n={n}");
        }
    }

    #[test]
    fn union_view_count_probes_and_domain_merge() {
        let db = world(3);
        let snap = db.snapshot();
        let views = snap.views();
        let union = UnionView::new(&views, snap.interner());
        let john = snap.lookup_symbol("JOHN").unwrap();
        assert!(union.domain().contains(&john));
        assert!(union.domain_size() >= union.domain().len());
        let _ = union.count_estimate(Pattern::from_source(john), 10);
        assert!(union.count_probes() >= 1);
    }

    #[test]
    fn shared_budget_aborts_collocated_gather() {
        let db = world(4);
        let snap = db.snapshot();
        let mut ext = snap.interner().clone();
        let q = parse("Q(?x) := (?x, isa, EMPLOYEE)", &mut ext).unwrap();
        let views = snap.views_with_interner(&ext);
        let opts = EvalOptions { max_rows: 1, ..EvalOptions::default() };
        let err = eval_sharded(&q, &views, &ext, opts, None).unwrap_err();
        assert!(matches!(err, EvalError::ResultTooLarge { limit: 1, .. }));
    }

    #[test]
    fn planned_replay_matches_fresh_eval() {
        let db = world(4);
        let snap = db.snapshot();
        let mut ext = snap.interner().clone();
        let query = "Q(?x) := exists ?y . (?x, EARNS, ?y)";
        let q = parse(query, &mut ext).unwrap();
        let views = snap.views_with_interner(&ext);
        let fresh = eval_sharded(&q, &views, &ext, EvalOptions::default(), None).unwrap();
        let (replayed, _, collocated) =
            eval_sharded_planned(&q, &views, &ext, EvalOptions::default(), &fresh.plan, None)
                .unwrap();
        assert!(collocated);
        assert_eq!(replayed.rows, fresh.answer.rows);
    }
}
