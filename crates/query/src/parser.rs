//! Textual syntax for the query language.
//!
//! ```text
//! query   := [ "Q" "(" varlist ")" ":=" ] formula
//! formula := conj ( "|" conj )*
//! conj    := unary ( "&" unary )*
//! unary   := "exists" var+ "." unary
//!          | "forall" var+ "." unary
//!          | "(" formula ")"          -- grouping
//!          | template
//! template:= "(" term "," term "," term ")"
//! term    := "?" IDENT                -- named variable
//!          | "*"                      -- anonymous variable (§4.1)
//!          | IDENT | QUOTED | NUMBER  -- entity constants
//!          | "<" | ">" | "=" | "!=" | "<=" | ">="
//! ```
//!
//! Examples, straight from the paper:
//!
//! * navigation templates (§4.1): `(JOHN, *, *)`, `(LEOPOLD, *, MOZART)`
//! * the self-citing authors query (§2.7):
//!   `Q(?y) := exists ?x . (?x, isa, BOOK) & (?y, isa, PERSON) & (?x, CITES, ?x) & (?x, AUTHOR, ?y)`
//! * the salary query (§3.6):
//!   `Q(?z) := exists ?y . (?z, isa, EMPLOYEE) & (?z, EARNS, ?y) & (?y, >, 20000)`
//!
//! Identifiers may contain `-`, `#`, `'` and `$` (`PC#9-WAM`, `5#5-LVB`);
//! arbitrary entity names can be quoted (`"weird name"`). The ASCII names
//! `gen isa syn inv contra TOP BOT` denote the special entities.

use std::collections::HashMap;
use std::fmt;

use loosedb_engine::{Term, Var};
use loosedb_store::{EntityId, EntityValue, Interner};

use crate::ast::{Formula, Query};

/// A parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Why a frozen-interner parse ([`parse_frozen`]) failed.
///
/// `UnknownConstant` is not a syntax error: the query is well-formed but
/// mentions an entity the read-only interner has never seen. Callers
/// serving reads over an immutable snapshot use this signal to retry with
/// a private, extendable interner clone (see `SharedSession` in
/// `loosedb-browse`).
#[derive(Clone, Debug, PartialEq)]
pub enum FrozenParseError {
    /// The input is syntactically invalid.
    Parse(ParseError),
    /// The input is valid but names a constant absent from the interner.
    UnknownConstant {
        /// Byte offset of the constant in the input.
        position: usize,
        /// The constant that could not be resolved.
        value: EntityValue,
    },
}

impl fmt::Display for FrozenParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrozenParseError::Parse(e) => e.fmt(f),
            FrozenParseError::UnknownConstant { position, value } => {
                write!(f, "unknown constant {value} at byte {position}")
            }
        }
    }
}

impl std::error::Error for FrozenParseError {}

impl From<ParseError> for FrozenParseError {
    fn from(e: ParseError) -> Self {
        FrozenParseError::Parse(e)
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    LParen,
    RParen,
    Comma,
    Amp,
    Pipe,
    Dot,
    Star,
    Assign, // :=
    Exists,
    ForAll,
    QMark, // leading ? of a variable
    Ident(String),
    Quoted(String),
    Int(i64),
    Float(f64),
    Cmp(&'static str),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { position: self.pos, message: message.into() }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut out = Vec::new();
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = self.src[self.pos..].chars().next().unwrap();
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                }
                '(' => {
                    out.push((start, Token::LParen));
                    self.pos += 1;
                }
                ')' => {
                    out.push((start, Token::RParen));
                    self.pos += 1;
                }
                ',' => {
                    out.push((start, Token::Comma));
                    self.pos += 1;
                }
                '&' => {
                    out.push((start, Token::Amp));
                    self.pos += 1;
                }
                '|' => {
                    out.push((start, Token::Pipe));
                    self.pos += 1;
                }
                '.' => {
                    out.push((start, Token::Dot));
                    self.pos += 1;
                }
                '*' => {
                    out.push((start, Token::Star));
                    self.pos += 1;
                }
                '?' => {
                    out.push((start, Token::QMark));
                    self.pos += 1;
                }
                ':' => {
                    if self.src[self.pos..].starts_with(":=") {
                        out.push((start, Token::Assign));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected ':='"));
                    }
                }
                '<' => {
                    if self.src[self.pos..].starts_with("<=") {
                        out.push((start, Token::Cmp("<=")));
                        self.pos += 2;
                    } else {
                        out.push((start, Token::Cmp("<")));
                        self.pos += 1;
                    }
                }
                '>' => {
                    if self.src[self.pos..].starts_with(">=") {
                        out.push((start, Token::Cmp(">=")));
                        self.pos += 2;
                    } else {
                        out.push((start, Token::Cmp(">")));
                        self.pos += 1;
                    }
                }
                '=' => {
                    out.push((start, Token::Cmp("=")));
                    self.pos += 1;
                }
                '!' => {
                    if self.src[self.pos..].starts_with("!=") {
                        out.push((start, Token::Cmp("!=")));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected '!='"));
                    }
                }
                '"' => {
                    let rest = &self.src[self.pos + 1..];
                    match rest.find('"') {
                        Some(end) => {
                            out.push((start, Token::Quoted(rest[..end].to_string())));
                            self.pos += end + 2;
                        }
                        None => return Err(self.error("unterminated string")),
                    }
                }
                '-' | '0'..='9' => {
                    let tok = self.lex_number()?;
                    out.push((start, tok));
                }
                c if is_ident_start(c) => {
                    let tok = self.lex_ident();
                    out.push((start, tok));
                }
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            }
        }
        Ok(out)
    }

    fn lex_number(&mut self) -> Result<Token, ParseError> {
        let rest = &self.src[self.pos..];
        let mut len = 0;
        let bytes = rest.as_bytes();
        if bytes[0] == b'-' {
            len += 1;
            if len >= bytes.len() || !bytes[len].is_ascii_digit() {
                return Err(self.error("expected digits after '-'"));
            }
        }
        while len < bytes.len() && bytes[len].is_ascii_digit() {
            len += 1;
        }
        let mut is_float = false;
        if len + 1 < bytes.len() && bytes[len] == b'.' && bytes[len + 1].is_ascii_digit() {
            is_float = true;
            len += 1;
            while len < bytes.len() && bytes[len].is_ascii_digit() {
                len += 1;
            }
        }
        let text = &rest[..len];
        self.pos += len;
        if is_float {
            text.parse::<f64>().map(Token::Float).map_err(|e| self.error(format!("bad float: {e}")))
        } else {
            text.parse::<i64>().map(Token::Int).map_err(|e| self.error(format!("bad integer: {e}")))
        }
    }

    fn lex_ident(&mut self) -> Token {
        let rest = &self.src[self.pos..];
        let len = rest
            .char_indices()
            .find(|&(_, c)| !is_ident_continue(c))
            .map_or(rest.len(), |(i, _)| i);
        let text = &rest[..len];
        self.pos += len;
        match text {
            "exists" => Token::Exists,
            "forall" => Token::ForAll,
            _ => Token::Ident(text.to_string()),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == '$' || c == '#'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '$' | '#' | '-' | '\'')
}

/// Parses a query, interning entity constants into `interner`.
pub fn parse(src: &str, interner: &mut Interner) -> Result<Query, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        interner: Access::Mut(interner),
        var_names: Vec::new(),
        var_ids: HashMap::new(),
        declared_free: None,
        quantified: Vec::new(),
    };
    let query = parser.parse_query()?;
    Ok(query)
}

/// Parses a query against a read-only interner: constants are looked up,
/// never interned, so a frozen snapshot (a published closure generation)
/// can serve query parsing without mutation. A constant the interner has
/// never seen yields [`FrozenParseError::UnknownConstant`] rather than a
/// syntax error.
pub fn parse_frozen(src: &str, interner: &Interner) -> Result<Query, FrozenParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        interner: Access::Frozen { interner, miss: None },
        var_names: Vec::new(),
        var_ids: HashMap::new(),
        declared_free: None,
        quantified: Vec::new(),
    };
    match parser.parse_query() {
        Ok(query) => Ok(query),
        Err(parse_err) => match parser.interner {
            // An unknown constant surfaces as a ParseError internally so
            // the recursive-descent plumbing stays uniform; the recorded
            // miss distinguishes it from a genuine syntax error.
            Access::Frozen { miss: Some((position, value)), .. } => {
                Err(FrozenParseError::UnknownConstant { position, value })
            }
            _ => Err(parse_err.into()),
        },
    }
}

/// How the parser resolves entity constants: by interning into a mutable
/// interner (classic [`parse`]) or by lookup against a frozen one
/// ([`parse_frozen`]).
enum Access<'a> {
    Mut(&'a mut Interner),
    Frozen { interner: &'a Interner, miss: Option<(usize, EntityValue)> },
}

impl Access<'_> {
    fn resolve(&mut self, value: EntityValue, position: usize) -> Result<EntityId, ParseError> {
        match self {
            Access::Mut(interner) => Ok(interner.intern(value)),
            Access::Frozen { interner, miss } => match interner.lookup(&value) {
                Some(id) => Ok(id),
                None => {
                    let message = format!("unknown constant {value}");
                    if miss.is_none() {
                        *miss = Some((position, value));
                    }
                    Err(ParseError { position, message })
                }
            },
        }
    }

    fn lookup_symbol(&self, name: &str) -> Option<EntityId> {
        match self {
            Access::Mut(interner) => interner.lookup_symbol(name),
            Access::Frozen { interner, .. } => interner.lookup_symbol(name),
        }
    }
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    interner: Access<'a>,
    var_names: Vec<String>,
    var_ids: HashMap<String, Var>,
    declared_free: Option<Vec<Var>>,
    quantified: Vec<Var>,
}

impl Parser<'_> {
    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let position = self.tokens.get(self.pos).map_or(usize::MAX, |(p, _)| *p);
        ParseError { position, message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error_at(format!("expected {what}"))),
        }
    }

    fn fresh_var(&mut self, name: &str) -> Var {
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        if name != "_" {
            self.var_ids.insert(name.to_string(), v);
        }
        v
    }

    fn named_var(&mut self, name: &str) -> Var {
        match self.var_ids.get(name) {
            Some(&v) => v,
            None => self.fresh_var(name),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        // Optional header: Q(?x, ?y) :=
        if matches!(self.peek(), Some(Token::Ident(name)) if name == "Q")
            && self.peek2() == Some(&Token::LParen)
        {
            self.next(); // Q
            self.next(); // (
            let mut declared = Vec::new();
            loop {
                self.expect(&Token::QMark, "'?' before variable name")?;
                match self.next() {
                    Some(Token::Ident(name)) => declared.push(self.named_var(&name)),
                    _ => return Err(self.error_at("expected variable name")),
                }
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    _ => return Err(self.error_at("expected ',' or ')'")),
                }
            }
            self.expect(&Token::Assign, "':='")?;
            self.declared_free = Some(declared);
        }

        let formula = self.parse_formula()?;
        if self.pos < self.tokens.len() {
            return Err(self.error_at("trailing input after formula"));
        }

        let inferred: Vec<Var> = formula.free_vars().into_iter().collect();
        let free = match self.declared_free.take() {
            Some(declared) => {
                for v in &declared {
                    if !inferred.contains(v) {
                        return Err(ParseError {
                            position: 0,
                            message: format!(
                                "declared variable ?{} is not free in the formula",
                                self.var_names[v.index()]
                            ),
                        });
                    }
                }
                for v in &inferred {
                    if self.var_names[v.index()] != "_" && !declared.contains(v) {
                        return Err(ParseError {
                            position: 0,
                            message: format!(
                                "free variable ?{} is not declared in the query header",
                                self.var_names[v.index()]
                            ),
                        });
                    }
                }
                declared
            }
            None => inferred,
        };
        Ok(Query { var_names: std::mem::take(&mut self.var_names), free, formula })
    }

    fn parse_formula(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.parse_conjunction()?;
        while self.peek() == Some(&Token::Pipe) {
            self.next();
            let right = self.parse_conjunction()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(&Token::Amp) {
            self.next();
            let right = self.parse_unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Exists) | Some(Token::ForAll) => {
                let universal = self.peek() == Some(&Token::ForAll);
                self.next();
                let mut vars = Vec::new();
                loop {
                    self.expect(&Token::QMark, "'?' before quantified variable")?;
                    match self.next() {
                        Some(Token::Ident(name)) => {
                            if self.var_ids.contains_key(&name) {
                                return Err(self.error_at(format!(
                                    "variable ?{name} is already in scope (shadowing is not allowed)"
                                )));
                            }
                            let v = self.fresh_var(&name);
                            self.quantified.push(v);
                            vars.push((v, name));
                        }
                        _ => return Err(self.error_at("expected variable name")),
                    }
                    if self.peek() == Some(&Token::QMark) {
                        continue;
                    }
                    break;
                }
                self.expect(&Token::Dot, "'.' after quantified variables")?;
                // The quantifier's scope extends as far right as possible
                // (to the end of the formula or the enclosing ')').
                let body = self.parse_formula()?;
                // Close the scopes (innermost first) and drop the names so
                // they cannot leak past the quantifier.
                let mut formula = body;
                for (v, name) in vars.into_iter().rev() {
                    self.var_ids.remove(&name);
                    self.quantified.pop();
                    formula = if universal {
                        Formula::ForAll(v, Box::new(formula))
                    } else {
                        Formula::Exists(v, Box::new(formula))
                    };
                }
                Ok(formula)
            }
            Some(Token::LParen) => {
                // Template or grouped formula: a template has a term
                // followed by a comma.
                if self.looks_like_template() {
                    self.parse_template()
                } else {
                    self.next(); // (
                    let inner = self.parse_formula()?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(inner)
                }
            }
            _ => Err(self.error_at("expected a template, quantifier or '('")),
        }
    }

    /// Lookahead: after '(', a term token then ','.
    fn looks_like_template(&self) -> bool {
        let mut i = self.pos + 1;
        // Skip one term: either '?' IDENT, or a single term token.
        match self.tokens.get(i).map(|(_, t)| t) {
            Some(Token::QMark) => i += 2,
            Some(
                Token::Star
                | Token::Ident(_)
                | Token::Quoted(_)
                | Token::Int(_)
                | Token::Float(_)
                | Token::Cmp(_),
            ) => i += 1,
            _ => return false,
        }
        matches!(self.tokens.get(i).map(|(_, t)| t), Some(Token::Comma))
    }

    fn parse_template(&mut self) -> Result<Formula, ParseError> {
        self.expect(&Token::LParen, "'('")?;
        let s = self.parse_term()?;
        self.expect(&Token::Comma, "','")?;
        let r = self.parse_term()?;
        self.expect(&Token::Comma, "','")?;
        let t = self.parse_term()?;
        self.expect(&Token::RParen, "')'")?;
        Ok(Formula::Atom(loosedb_engine::Template::new(s, r, t)))
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        let position = self.tokens.get(self.pos).map_or(usize::MAX, |(p, _)| *p);
        match self.next() {
            Some(Token::QMark) => match self.next() {
                Some(Token::Ident(name)) => Ok(Term::Var(self.named_var(&name))),
                _ => Err(self.error_at("expected variable name after '?'")),
            },
            Some(Token::Star) => Ok(Term::Var(self.fresh_var("_"))),
            Some(Token::Ident(name)) => {
                Ok(Term::Const(self.interner.resolve(EntityValue::symbol(name), position)?))
            }
            Some(Token::Quoted(text)) => {
                Ok(Term::Const(self.interner.resolve(EntityValue::symbol(text), position)?))
            }
            Some(Token::Int(i)) => {
                Ok(Term::Const(self.interner.resolve(EntityValue::Int(i), position)?))
            }
            Some(Token::Float(f)) => {
                Ok(Term::Const(self.interner.resolve(EntityValue::float(f), position)?))
            }
            Some(Token::Cmp(op)) => Ok(Term::Const(
                self.interner.lookup_symbol(op).expect("comparators are pre-interned"),
            )),
            _ => Err(self.error_at("expected a term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::special;

    fn parse_ok(src: &str) -> (Query, Interner) {
        let mut interner = Interner::new();
        let q = parse(src, &mut interner).expect(src);
        (q, interner)
    }

    #[test]
    fn navigation_template() {
        let (q, interner) = parse_ok("(JOHN, *, *)");
        assert_eq!(q.formula.atoms().len(), 1);
        assert_eq!(q.free.len(), 2); // the two anonymous variables
        let john = interner.lookup_symbol("JOHN").unwrap();
        assert_eq!(q.formula.atoms()[0].s, Term::Const(john));
    }

    #[test]
    fn paper_self_citing_authors() {
        let (q, _) = parse_ok(
            "Q(?y) := exists ?x . (?x, isa, BOOK) & (?y, isa, PERSON) \
             & (?x, CITES, ?x) & (?x, AUTHOR, ?y)",
        );
        assert_eq!(q.free.len(), 1);
        assert_eq!(q.var_name(q.free[0]), "y");
        assert_eq!(q.formula.atoms().len(), 4);
    }

    #[test]
    fn paper_salary_query_with_comparator() {
        let (q, _) =
            parse_ok("Q(?z) := exists ?y . (?z, isa, EMPLOYEE) & (?z, EARNS, ?y) & (?y, >, 20000)");
        let atoms = q.formula.atoms();
        assert_eq!(atoms[2].r, Term::Const(special::GT));
    }

    #[test]
    fn proposition_query() {
        let (q, _) = parse_ok("(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)");
        assert!(q.is_proposition());
    }

    #[test]
    fn special_entity_names() {
        let (q, _) = parse_ok(
            "(?x, gen, TOP) & (?x, isa, BOT) & (?x, syn, ?x) & (?x, inv, ?x) & (?x, contra, ?x)",
        );
        let atoms = q.formula.atoms();
        assert_eq!(atoms[0].r, Term::Const(special::GEN));
        assert_eq!(atoms[0].t, Term::Const(special::TOP));
        assert_eq!(atoms[1].r, Term::Const(special::ISA));
        assert_eq!(atoms[1].t, Term::Const(special::BOT));
        assert_eq!(atoms[2].r, Term::Const(special::SYN));
        assert_eq!(atoms[3].r, Term::Const(special::INV));
        assert_eq!(atoms[4].r, Term::Const(special::CONTRA));
    }

    #[test]
    fn identifiers_with_punctuation() {
        let (q, interner) = parse_ok("(PC#9-WAM, COMPOSED-BY, MOZART)");
        let pc9 = interner.lookup_symbol("PC#9-WAM").unwrap();
        assert_eq!(q.formula.atoms()[0].s, Term::Const(pc9));
    }

    #[test]
    fn numbers_and_quoted_symbols() {
        let (q, interner) = parse_ok("(?x, EARNS, 25000) | (?x, GPA, 2.5) | (?x, R, \"odd name\")");
        assert!(interner.lookup(&EntityValue::Int(25000)).is_some());
        assert!(interner.lookup(&EntityValue::float(2.5)).is_some());
        assert!(interner.lookup_symbol("odd name").is_some());
        assert_eq!(q.formula.atoms().len(), 3);
    }

    #[test]
    fn negative_numbers() {
        let (_, interner) = parse_ok("(?x, >, -5)");
        assert!(interner.lookup(&EntityValue::Int(-5)).is_some());
    }

    #[test]
    fn grouping_and_precedence() {
        // & binds tighter than |
        let (q, _) = parse_ok("(A, R, B) & (C, R, D) | (E, R, F)");
        match &q.formula {
            Formula::Or(left, _) => assert!(matches!(**left, Formula::And(..))),
            other => panic!("expected Or at top, got {other:?}"),
        }
        let (q2, _) = parse_ok("(A, R, B) & ((C, R, D) | (E, R, F))");
        assert!(matches!(&q2.formula, Formula::And(..)));
    }

    #[test]
    fn forall_parses() {
        let (q, _) = parse_ok("Q(?z) := forall ?x . (?x, LOVES, ?z)");
        assert!(matches!(&q.formula, Formula::ForAll(..)));
        assert_eq!(q.free.len(), 1);
    }

    #[test]
    fn multi_var_quantifier() {
        let (q, _) = parse_ok("exists ?x ?y . (?x, R, ?y)");
        assert!(q.is_proposition());
        match &q.formula {
            Formula::Exists(_, inner) => assert!(matches!(**inner, Formula::Exists(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shadowing_rejected() {
        let mut interner = Interner::new();
        let err = parse("(?x, R, ?y) & exists ?x . (?x, S, ?y)", &mut interner).unwrap_err();
        assert!(err.message.contains("shadowing"));
    }

    #[test]
    fn undeclared_free_variable_rejected() {
        let mut interner = Interner::new();
        let err = parse("Q(?x) := (?x, R, ?y)", &mut interner).unwrap_err();
        assert!(err.message.contains("not declared"));
    }

    #[test]
    fn declared_but_unused_rejected() {
        let mut interner = Interner::new();
        let err = parse("Q(?x, ?z) := (?x, R, B)", &mut interner).unwrap_err();
        assert!(err.message.contains("not free"));
    }

    #[test]
    fn header_fixes_column_order() {
        let (q, _) = parse_ok("Q(?y, ?x) := (?x, R, ?y)");
        assert_eq!(q.var_name(q.free[0]), "y");
        assert_eq!(q.var_name(q.free[1]), "x");
    }

    #[test]
    fn syntax_errors_have_positions() {
        let mut interner = Interner::new();
        for bad in ["(A, B)", "(A, R, B) &", "exists x . (A, R, B)", "(A, R, B) extra", "", "(A,"] {
            let err = parse(bad, &mut interner).unwrap_err();
            assert!(!err.message.is_empty(), "{bad}");
        }
    }

    #[test]
    fn quantifier_scope_is_closed() {
        // After the quantifier, ?x refers to a NEW variable (no leak).
        let (q, _) = parse_ok("(exists ?x . (?x, R, B)) & (?x, S, C)");
        // The second ?x is free; the first is bound.
        assert_eq!(q.free.len(), 1);
    }

    #[test]
    fn frozen_parse_resolves_known_constants() {
        let mut interner = Interner::new();
        parse("(JOHN, LIKES, 42)", &mut interner).unwrap();
        let frozen = parse_frozen("(JOHN, LIKES, 42)", &interner).unwrap();
        let john = interner.lookup_symbol("JOHN").unwrap();
        assert_eq!(frozen.formula.atoms()[0].s, Term::Const(john));
        // No mutation: the interner is untouched by construction (shared ref).
        assert!(interner.lookup_symbol("MARY").is_none());
    }

    #[test]
    fn frozen_parse_reports_unknown_constant() {
        let mut interner = Interner::new();
        parse("(JOHN, LIKES, FELIX)", &mut interner).unwrap();
        let err = parse_frozen("(JOHN, LIKES, MARY)", &interner).unwrap_err();
        match err {
            FrozenParseError::UnknownConstant { value, .. } => {
                assert_eq!(value, EntityValue::symbol("MARY"));
            }
            other => panic!("expected UnknownConstant, got {other:?}"),
        }
    }

    #[test]
    fn frozen_parse_distinguishes_syntax_errors() {
        let interner = Interner::new();
        let err = parse_frozen("(?x, ?y", &interner).unwrap_err();
        assert!(matches!(err, FrozenParseError::Parse(_)));
    }

    #[test]
    fn frozen_parse_handles_comparators_and_variables() {
        let interner = Interner::new();
        // Comparators are pre-interned; variables never touch the interner.
        let q = parse_frozen("(?x, >, ?y)", &interner).unwrap();
        assert_eq!(q.formula.atoms()[0].r, Term::Const(special::GT));
    }

    #[test]
    fn roundtrip_render() {
        let (q, interner) = parse_ok("Q(?z) := exists ?y . (?z, EARNS, ?y) & (?y, >, 20000)");
        let rendered = q.render(&interner);
        assert!(rendered.contains("Q(?z)"));
        assert!(rendered.contains("exists ?y"));
        assert!(rendered.contains("(?y, >, 20000)"));
    }
}
