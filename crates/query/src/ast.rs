//! The query language AST (§2.7).
//!
//! Formulas are built from template atoms with conjunction, disjunction
//! and the two quantifiers — deliberately *without* negation: the paper
//! argues complements are relationships (`≠`, or a complementary
//! relationship like `DISLIKES`), not connectives.
//!
//! A [`Query`] is a formula together with its free variables, which are
//! its answer columns: the value of `Q(x₁ … xₙ)` is the set of tuples
//! satisfying the formula over the database closure.

use std::collections::BTreeSet;
use std::fmt;

use loosedb_engine::{Template, Term, Var};
use loosedb_store::{EntityId, Interner};

/// A well-formed formula (§2.7).
///
/// `Hash` is derived so a formula can serve as a *query shape* key: the
/// plan cache (`crate::plan`) memoizes join orders keyed on the
/// structural hash of the frozen-parse formula.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// A template atom: satisfied by every matching closure fact.
    Atom(Template),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Var, Box<Formula>),
    /// Universal quantification (active-domain semantics).
    ForAll(Var, Box<Formula>),
}

impl Formula {
    /// Conjunction helper.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// The free variables of the formula, in ascending id order.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out, &mut Vec::new());
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>, bound: &mut Vec<Var>) {
        match self {
            Formula::Atom(tpl) => {
                for v in tpl.vars() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_free(out, bound);
                b.collect_free(out, bound);
            }
            Formula::Exists(v, a) | Formula::ForAll(v, a) => {
                bound.push(*v);
                a.collect_free(out, bound);
                bound.pop();
            }
        }
    }

    /// All template atoms, in syntactic order.
    pub fn atoms(&self) -> Vec<&Template> {
        let mut out = Vec::new();
        self.walk_atoms(&mut out);
        out
    }

    fn walk_atoms<'a>(&'a self, out: &mut Vec<&'a Template>) {
        match self {
            Formula::Atom(t) => out.push(t),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.walk_atoms(out);
                b.walk_atoms(out);
            }
            Formula::Exists(_, a) | Formula::ForAll(_, a) => a.walk_atoms(out),
        }
    }

    /// All constant entities mentioned by the formula's atoms, in
    /// ascending id order — the candidates probing may generalize (§5.1).
    pub fn constants(&self) -> BTreeSet<EntityId> {
        self.atoms().into_iter().flat_map(|t| t.terms()).filter_map(Term::as_const).collect()
    }

    /// Replaces the atom at `index` (in [`Formula::atoms`] order) using
    /// `replace`; returns the rewritten formula. Used by probing to build
    /// broader queries (§5.1) and to delete degenerate templates (§5.2,
    /// where `replace` returns `None`).
    pub fn rewrite_atom(
        &self,
        index: usize,
        replace: &impl Fn(&Template) -> Option<Template>,
    ) -> Formula {
        let mut counter = 0usize;
        self.rewrite_rec(index, replace, &mut counter).unwrap_or(Formula::TRUE)
    }

    /// The trivially true formula, represented as the empty conjunction of
    /// a deleted degenerate template. Encoded as an atom over three fresh
    /// anonymous variables is *not* equivalent (it requires a non-empty
    /// database), so deletion is handled structurally: `rewrite_rec`
    /// returning `None` means "this subformula disappeared".
    pub const TRUE: Formula = Formula::Atom(Template {
        s: Term::Var(Var(u32::MAX)),
        r: Term::Var(Var(u32::MAX)),
        t: Term::Var(Var(u32::MAX)),
    });

    /// True if this is the sentinel [`Formula::TRUE`].
    pub fn is_true_sentinel(&self) -> bool {
        matches!(self, Formula::Atom(t) if t.s == Term::Var(Var(u32::MAX)))
    }

    fn rewrite_rec(
        &self,
        index: usize,
        replace: &impl Fn(&Template) -> Option<Template>,
        counter: &mut usize,
    ) -> Option<Formula> {
        match self {
            Formula::Atom(t) => {
                let here = *counter;
                *counter += 1;
                if here == index {
                    replace(t).map(Formula::Atom)
                } else {
                    Some(Formula::Atom(*t))
                }
            }
            Formula::And(a, b) => {
                let left = a.rewrite_rec(index, replace, counter);
                let right = b.rewrite_rec(index, replace, counter);
                match (left, right) {
                    (Some(l), Some(r)) => Some(l.and(r)),
                    (Some(l), None) => Some(l),
                    (None, Some(r)) => Some(r),
                    (None, None) => None,
                }
            }
            Formula::Or(a, b) => {
                let left = a.rewrite_rec(index, replace, counter);
                let right = b.rewrite_rec(index, replace, counter);
                match (left, right) {
                    (Some(l), Some(r)) => Some(l.or(r)),
                    // A deleted disjunct was trivially true, making the
                    // disjunction trivially true.
                    _ => None,
                }
            }
            Formula::Exists(v, a) => {
                a.rewrite_rec(index, replace, counter).map(|f| Formula::Exists(*v, Box::new(f)))
            }
            Formula::ForAll(v, a) => {
                a.rewrite_rec(index, replace, counter).map(|f| Formula::ForAll(*v, Box::new(f)))
            }
        }
    }
}

/// A query: a formula plus its answer columns and variable names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// Display names of all variables; `Var(i)` indexes this table.
    pub var_names: Vec<String>,
    /// The answer columns, in declaration (or first-occurrence) order.
    pub free: Vec<Var>,
    /// The formula.
    pub formula: Formula,
}

impl Query {
    /// Builds a query from a formula, with answer columns in ascending
    /// variable order.
    pub fn from_formula(formula: Formula, var_names: Vec<String>) -> Self {
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        Query { var_names, free, formula }
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        self.var_names.get(v.index()).map(String::as_str).unwrap_or("_")
    }

    /// True if this query is a proposition (closed formula, §2.7).
    pub fn is_proposition(&self) -> bool {
        self.free.is_empty()
    }

    /// Renders the query with names and entity values.
    pub fn render(&self, interner: &Interner) -> String {
        let mut out = String::new();
        // Anonymous (`*`) variables cannot be named in a header; list the
        // named free variables only, and omit the header when there are
        // none (a bare template query).
        let named: Vec<Var> =
            self.free.iter().copied().filter(|v| self.var_name(*v) != "_").collect();
        if !named.is_empty() {
            out.push_str("Q(");
            for (i, v) in named.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('?');
                out.push_str(self.var_name(*v));
            }
            out.push_str(") := ");
        }
        out.push_str(&self.render_formula(&self.formula, interner));
        out
    }

    fn render_formula(&self, f: &Formula, interner: &Interner) -> String {
        match f {
            Formula::Atom(t) => {
                let term = |x: Term| match x {
                    Term::Const(e) => interner.display(e),
                    Term::Var(v) if v.0 == u32::MAX || self.var_name(v) == "_" => "*".to_string(),
                    Term::Var(v) => format!("?{}", self.var_name(v)),
                };
                format!("({}, {}, {})", term(t.s), term(t.r), term(t.t))
            }
            Formula::And(a, b) => format!(
                "{} & {}",
                self.render_formula(a, interner),
                self.render_formula(b, interner)
            ),
            Formula::Or(a, b) => format!(
                "({} | {})",
                self.render_formula(a, interner),
                self.render_formula(b, interner)
            ),
            Formula::Exists(v, a) => {
                format!("exists ?{} . {}", self.var_name(*v), self.render_formula(a, interner))
            }
            Formula::ForAll(v, a) => {
                format!("forall ?{} . {}", self.var_name(*v), self.render_formula(a, interner))
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query with {} free variable(s)", self.free.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> Term {
        Term::Const(EntityId(i))
    }

    fn atom(s: Term, r: Term, t: Term) -> Formula {
        Formula::Atom(Template::new(s, r, t))
    }

    #[test]
    fn free_vars_respect_quantifiers() {
        // Q(y) = ∃x ((x, 1, y) ∧ (x, 2, 3))
        let f = Formula::Exists(
            Var(0),
            Box::new(atom(Term::Var(Var(0)), e(1), Term::Var(Var(1))).and(atom(
                Term::Var(Var(0)),
                e(2),
                e(3),
            ))),
        );
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![Var(1)]);
    }

    #[test]
    fn closed_formula_is_proposition() {
        let f = atom(e(1), e(2), e(3)).and(atom(e(3), e(2), e(1)));
        let q = Query::from_formula(f, vec![]);
        assert!(q.is_proposition());
    }

    #[test]
    fn atoms_in_syntactic_order() {
        let f = atom(e(1), e(2), e(3)).and(atom(e(4), e(5), e(6)).or(atom(e(7), e(8), e(9))));
        let atoms = f.atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0].s, e(1));
        assert_eq!(atoms[2].s, e(7));
    }

    #[test]
    fn constants_collected() {
        let f = atom(Term::Var(Var(0)), e(2), e(3)).and(atom(e(3), e(5), Term::Var(Var(1))));
        let consts: Vec<u32> = f.constants().into_iter().map(|c| c.0).collect();
        assert_eq!(consts, vec![2, 3, 5]);
    }

    #[test]
    fn rewrite_single_atom() {
        let f = atom(e(1), e(2), e(3)).and(atom(e(4), e(5), e(6)));
        let g = f.rewrite_atom(1, &|t| Some(Template::new(e(9), t.r, t.t)));
        let atoms = g.atoms();
        assert_eq!(atoms[0].s, e(1));
        assert_eq!(atoms[1].s, e(9));
        // Original untouched.
        assert_eq!(f.atoms()[1].s, e(4));
    }

    #[test]
    fn rewrite_delete_conjunct() {
        let f = atom(e(1), e(2), e(3)).and(atom(e(4), e(5), e(6)));
        let g = f.rewrite_atom(0, &|_| None);
        assert_eq!(g.atoms().len(), 1);
        assert_eq!(g.atoms()[0].s, e(4));
    }

    #[test]
    fn rewrite_delete_only_atom_leaves_true_sentinel() {
        let f = atom(e(1), e(2), e(3));
        let g = f.rewrite_atom(0, &|_| None);
        assert!(g.is_true_sentinel());
    }

    #[test]
    fn rewrite_delete_disjunct_makes_disjunction_true() {
        let f = atom(e(1), e(2), e(3)).or(atom(e(4), e(5), e(6)));
        let g = f.rewrite_atom(0, &|_| None);
        assert!(g.is_true_sentinel());
    }

    #[test]
    fn rewrite_under_quantifier() {
        let f = Formula::Exists(Var(0), Box::new(atom(Term::Var(Var(0)), e(2), e(3))));
        let g = f.rewrite_atom(0, &|t| Some(Template::new(t.s, t.r, e(9))));
        match g {
            Formula::Exists(_, inner) => {
                assert_eq!(inner.atoms()[0].t, e(9));
            }
            other => panic!("expected Exists, got {other:?}"),
        }
    }
}
